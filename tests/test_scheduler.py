"""Tests for the server pull-scheduling policies (E-ABL-SCHED substrate)."""

import pytest

from repro.core.params import Parameters
from repro.core.system import CollectionSystem


def params(policy, **overrides):
    defaults = dict(
        n_peers=60,
        arrival_rate=10.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=4.0,
        segment_size=8,
        n_servers=2,
        pull_policy=policy,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            params("psychic")

    def test_scheduler_tries_validated(self):
        with pytest.raises(ValueError):
            params("random", scheduler_tries=0)

    def test_pool_round_robin_needs_accessor(self):
        import random

        from repro.core.segments import SegmentRegistry
        from repro.core.server import ServerPool
        from repro.sim.metrics import MetricsCollector

        metrics = MetricsCollector(
            n_peers=2, arrival_rate=1.0, segment_size=1, normalized_capacity=1.0
        )
        registry = SegmentRegistry(metrics, use_decoders=False)
        with pytest.raises(ValueError):
            ServerPool(
                n_servers=1,
                registry=registry,
                metrics=metrics,
                rng=random.Random(0),
                coding_rng=None,
                sample_nonempty_peer=lambda: None,
                rlnc_mode=False,
                pull_policy="round-robin",
            )


class TestPolicyBehavior:
    def run_policy(self, policy, seed=9):
        system = CollectionSystem(params(policy), seed=seed)
        report = system.run(8.0, 12.0)
        system.consistency_check()
        return report

    def test_all_policies_run_and_collect(self):
        for policy in (
            "random",
            "round-robin",
            "avoid-redundant",
            "greedy-completion",
        ):
            report = self.run_policy(policy)
            assert report.useful_pulls > 0, policy

    def test_avoid_redundant_improves_efficiency(self):
        random_eff = self.run_policy("random").efficiency
        avoid_eff = self.run_policy("avoid-redundant").efficiency
        assert avoid_eff >= random_eff - 0.01
        assert avoid_eff > 0.98

    def test_greedy_completion_boosts_goodput(self):
        random_good = self.run_policy("random").normalized_goodput
        greedy_good = self.run_policy("greedy-completion").normalized_goodput
        assert greedy_good > 1.5 * random_good

    def test_round_robin_balances_peer_service(self):
        """Round-robin visits non-empty peers in slot order, so per-source
        collected counts spread more evenly than under random sampling."""
        system = CollectionSystem(params("round-robin"), seed=10)
        system.run(6.0, 10.0)
        collected = system.collected_by_source
        assert collected, "round-robin collected nothing"
        # every slot that generated data got at least some service
        slots_served = {slot for slot, _ in collected}
        slots_generating = {slot for slot, _ in system.injected_by_source}
        assert len(slots_served) > 0.8 * len(slots_generating)

    def test_policies_are_deterministic(self):
        a = self.run_policy("greedy-completion", seed=3)
        b = self.run_policy("greedy-completion", seed=3)
        assert a == b
