"""Tests for the server pull-scheduling policies (E-ABL-SCHED substrate)."""

import random

import pytest

from repro.coding.block import make_abstract_blocks
from repro.core.params import Parameters
from repro.core.peer import Peer
from repro.core.segments import SegmentRegistry
from repro.core.server import ServerPool
from repro.core.system import CollectionSystem
from repro.sim.metrics import MetricsCollector


def params(policy, **overrides):
    defaults = dict(
        n_peers=60,
        arrival_rate=10.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=4.0,
        segment_size=8,
        n_servers=2,
        pull_policy=policy,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            params("psychic")

    def test_scheduler_tries_validated(self):
        with pytest.raises(ValueError):
            params("random", scheduler_tries=0)

    def test_pool_round_robin_needs_accessor(self):
        import random

        from repro.core.segments import SegmentRegistry
        from repro.core.server import ServerPool
        from repro.sim.metrics import MetricsCollector

        metrics = MetricsCollector(
            n_peers=2, arrival_rate=1.0, segment_size=1, normalized_capacity=1.0
        )
        registry = SegmentRegistry(metrics, use_decoders=False)
        with pytest.raises(ValueError):
            ServerPool(
                n_servers=1,
                registry=registry,
                metrics=metrics,
                rng=random.Random(0),
                coding_rng=None,
                sample_nonempty_peer=lambda: None,
                rlnc_mode=False,
                pull_policy="round-robin",
            )


class TestPolicyBehavior:
    def run_policy(self, policy, seed=9):
        system = CollectionSystem(params(policy), seed=seed)
        report = system.run(8.0, 12.0)
        system.consistency_check()
        return report

    def test_all_policies_run_and_collect(self):
        for policy in (
            "random",
            "round-robin",
            "avoid-redundant",
            "greedy-completion",
        ):
            report = self.run_policy(policy)
            assert report.useful_pulls > 0, policy

    def test_avoid_redundant_improves_efficiency(self):
        random_eff = self.run_policy("random").efficiency
        avoid_eff = self.run_policy("avoid-redundant").efficiency
        assert avoid_eff >= random_eff - 0.01
        assert avoid_eff > 0.98

    def test_greedy_completion_boosts_goodput(self):
        random_good = self.run_policy("random").normalized_goodput
        greedy_good = self.run_policy("greedy-completion").normalized_goodput
        assert greedy_good > 1.5 * random_good

    def test_round_robin_balances_peer_service(self):
        """Round-robin visits non-empty peers in slot order, so per-source
        collected counts spread more evenly than under random sampling."""
        system = CollectionSystem(params("round-robin"), seed=10)
        system.run(6.0, 10.0)
        collected = system.collected_by_source
        assert collected, "round-robin collected nothing"
        # every slot that generated data got at least some service
        slots_served = {slot for slot, _ in collected}
        slots_generating = {slot for slot, _ in system.injected_by_source}
        assert len(slots_served) > 0.8 * len(slots_generating)

    def test_policies_are_deterministic(self):
        a = self.run_policy("greedy-completion", seed=3)
        b = self.run_policy("greedy-completion", seed=3)
        assert a == b


def make_pool(policy, sample_nonempty_peer, scheduler_tries=8, seed=0):
    """Standalone ServerPool against injected collaborators (no system)."""
    metrics = MetricsCollector(
        n_peers=4, arrival_rate=1.0, segment_size=3, normalized_capacity=1.0
    )
    registry = SegmentRegistry(metrics, use_decoders=False)
    pool = ServerPool(
        n_servers=1,
        registry=registry,
        metrics=metrics,
        rng=random.Random(seed),
        coding_rng=None,
        sample_nonempty_peer=sample_nonempty_peer,
        rlnc_mode=False,
        pull_policy=policy,
        scheduler_tries=scheduler_tries,
    )
    return pool, registry, metrics


def add_segment(registry, peer, size=3, blocks=1, collected=0, now=0.0):
    """Register a segment, buffer *blocks* of it at *peer*, pre-collect."""
    state = registry.create(source_peer=peer.slot, size=size, now=now)
    for block in make_abstract_blocks(state.descriptor, blocks, now):
        peer.add_block(block)
        registry.on_block_added(state, now)
    for _ in range(collected):
        registry.on_server_block(state, now)
    return state


class TestSchedulerCornerCases:
    """Retry-budget behavior of the lookahead policies at the edges."""

    @pytest.mark.parametrize("policy", ["avoid-redundant", "greedy-completion"])
    def test_empty_network_is_idle_pull(self, policy):
        pool, _, metrics = make_pool(policy, lambda: None)
        pool.pull(0, 1.0)
        server = pool.servers[0]
        assert server.pulls == 1
        assert server.idle_pulls == 1
        assert server.useful_pulls == server.redundant_pulls == 0
        assert metrics.idle_pulls.total == 1

    @pytest.mark.parametrize("policy", ["avoid-redundant", "greedy-completion"])
    def test_every_candidate_complete_is_redundant_pull(self, policy):
        """When all draws hit completed segments the budget is exhausted and
        the trial is charged as one redundant pull — never an infinite loop,
        never a crash."""
        peer = Peer(slot=0, capacity=8)
        sampled = []
        pool, registry, metrics = make_pool(
            policy, lambda: (sampled.append(1), peer)[1], scheduler_tries=4
        )
        state = add_segment(registry, peer, size=1, blocks=1, collected=1)
        assert state.is_complete
        pool.pull(0, 1.0)
        server = pool.servers[0]
        assert server.pulls == 1
        assert server.redundant_pulls == 1
        assert server.useful_pulls == server.idle_pulls == 0
        assert metrics.redundant_pulls.total == 1
        # the retry budget was actually spent (avoid-redundant retries all 4;
        # greedy always draws its full candidate budget)
        assert len(sampled) == 4

    def test_avoid_redundant_buffer_drains_mid_retry(self):
        """If the network empties between retries the trial ends idle."""
        peer = Peer(slot=0, capacity=8)
        draws = [peer, None]
        pool, registry, metrics = make_pool(
            "avoid-redundant", lambda: draws.pop(0), scheduler_tries=4
        )
        add_segment(registry, peer, size=1, blocks=1, collected=1)
        pool.pull(0, 1.0)
        server = pool.servers[0]
        assert server.idle_pulls == 1
        assert server.redundant_pulls == 0
        assert not draws  # both draws were consumed

    def test_avoid_redundant_finds_incomplete_candidate(self):
        peer = Peer(slot=0, capacity=16)
        pool, registry, metrics = make_pool(
            "avoid-redundant", lambda: peer, scheduler_tries=32
        )
        add_segment(registry, peer, size=1, blocks=4, collected=1)  # complete
        fresh = add_segment(registry, peer, size=3, blocks=4)  # incomplete
        pool.pull(0, 1.0)
        assert pool.servers[0].useful_pulls == 1
        assert fresh.collected == 1

    def test_greedy_completion_picks_closest_to_completion(self):
        peer = Peer(slot=0, capacity=16)
        pool, registry, _ = make_pool(
            "greedy-completion", lambda: peer, scheduler_tries=32
        )
        behind = add_segment(registry, peer, size=3, blocks=4, collected=0)
        ahead = add_segment(registry, peer, size=3, blocks=4, collected=2)
        pool.pull(0, 1.0)
        assert ahead.collected == 3  # the near-complete segment got the pull
        assert ahead.is_complete
        assert behind.collected == 0
