"""Bitwise-compatibility tests: fast masks vs the scalar injectors.

The fast engine promises that *who misbehaves* is decided identically to
the event engine: polluter/role slot sets and burst sizing consume the
same ``random.Random`` substream draws through the same formulas, so a
same-seed fast run and event run agree on the misbehaving slots bit for
bit.  Per-event decisions (loss, capture) are property-tested instead:
the vectorized mask applies the scalar predicate ``u < p`` elementwise
over one uniform vector.

Zero-knob neutrality is asserted at the RNG-state level: a null channel
returns ``None``/``()`` without consuming a single draw from either the
python or the numpy substream.
"""

import random

import numpy as np
import pytest

from repro.adversary import AdversaryInjector, AdversaryPlan
from repro.core.params import ENGINE_FAST, Parameters
from repro.core.system import CollectionSystem
from repro.fastsim import FastAdversaryMasks, FastFaultMasks
from repro.fastsim.system import FastCollectionSystem
from repro.faults import FaultInjector, FaultPlan
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector

N_SLOTS = 60


def make_fault_pair(plan, seed=5, n_slots=N_SLOTS):
    """Same-seeded (FastFaultMasks, FaultInjector) pair."""
    masks = FastFaultMasks(
        plan, random.Random(seed), np.random.default_rng(seed), n_slots
    )
    injector = FaultInjector(
        plan=plan,
        sim=Simulator(),
        rng=random.Random(seed),
        n_slots=n_slots,
        metrics=MetricsCollector(
            n_peers=n_slots,
            arrival_rate=1.0,
            segment_size=1,
            normalized_capacity=1.0,
        ),
    )
    return masks, injector


def make_adversary_pair(plan, seed=5, n_slots=N_SLOTS):
    """Same-seeded (FastAdversaryMasks, AdversaryInjector) pair."""
    masks = FastAdversaryMasks(
        plan, random.Random(seed), np.random.default_rng(seed), n_slots
    )
    injector = AdversaryInjector(
        plan=plan,
        sim=Simulator(),
        rng=random.Random(seed),
        n_slots=n_slots,
        metrics=MetricsCollector(
            n_peers=n_slots,
            arrival_rate=1.0,
            segment_size=1,
            normalized_capacity=1.0,
        ),
    )
    return masks, injector


def np_state(rng):
    return repr(rng.bit_generator.state)


class TestFaultMaskBitwiseAgreement:
    def test_polluter_set_matches_injector(self):
        plan = FaultPlan(pollution_fraction=0.15)
        for seed in range(6):
            masks, injector = make_fault_pair(plan, seed=seed)
            assert masks.polluters == injector.polluters

    def test_polluter_mask_reflects_set(self):
        plan = FaultPlan(pollution_fraction=0.2)
        masks, _ = make_fault_pair(plan)
        mask = masks.polluter_mask()
        assert set(np.flatnonzero(mask)) == set(masks.polluters)

    def test_burst_sizing_and_slots_match_injector(self):
        plan = FaultPlan(burst_rate=1.0, burst_fraction=0.1)
        masks, injector = make_fault_pair(plan, seed=13)
        assert masks.burst_size() == injector.burst_size()
        # both rngs advanced identically through construction, so the
        # next burst draw (the injector's _fire_burst sample) matches
        expected = injector._rng.sample(
            range(N_SLOTS), injector.burst_size()
        )
        assert masks.burst_slots() == expected

    def test_deterministic_outage_windows_clip_to_horizon(self):
        plan = FaultPlan(outage_windows=((1.0, 2.0), (5.0, 9.0), (20.0, 25.0)))
        masks, _ = make_fault_pair(plan)
        assert masks.outage_timeline(8.0) == ((1.0, 2.0), (5.0, 8.0))

    def test_renewal_outage_windows_are_ordered_and_bounded(self):
        plan = FaultPlan(outage_rate=0.8, outage_duration=0.5)
        masks, _ = make_fault_pair(plan, seed=3)
        windows = masks.outage_timeline(40.0)
        assert windows
        previous_end = 0.0
        for start, end in windows:
            assert previous_end <= start < end <= 40.0
            assert end - start <= 0.5 + 1e-12
            previous_end = end


class TestAdversaryMaskBitwiseAgreement:
    PLAN = AdversaryPlan(
        liar_fraction=0.1, freerider_fraction=0.1, polluter_fraction=0.1
    )

    def test_role_sets_match_injector(self):
        for seed in range(6):
            masks, injector = make_adversary_pair(self.PLAN, seed=seed)
            assert masks.liars == injector.liars
            assert masks.freeriders == injector.freeriders
            assert masks.polluters == injector.polluters

    def test_role_sets_are_disjoint(self):
        masks, _ = make_adversary_pair(self.PLAN)
        assert not masks.liars & masks.freeriders
        assert not masks.liars & masks.polluters
        assert not masks.freeriders & masks.polluters

    def test_sybil_sizing_and_slots_match_injector(self):
        plan = AdversaryPlan(sybil_rate=1.0, sybil_fraction=0.08)
        masks, injector = make_adversary_pair(plan, seed=21)
        assert masks.sybil_burst_size() == injector.sybil_burst_size()
        expected = injector._rng.sample(
            range(N_SLOTS), injector.sybil_burst_size()
        )
        assert masks.sybil_slots() == expected

    def test_capture_probability_formula(self):
        plan = AdversaryPlan(liar_fraction=0.1, liar_inflation=8.0)
        masks, _ = make_adversary_pair(plan)
        k = len(masks.liars)
        expected = 8.0 * k / (8.0 * k + (N_SLOTS - k))
        assert masks.capture_probability(k) == pytest.approx(expected)
        assert masks.capture_probability(0) == 0.0

    def test_capture_attractors_drawn_from_attractor_set(self):
        plan = AdversaryPlan(liar_fraction=0.1)
        masks, _ = make_adversary_pair(plan)
        attractors = np.fromiter(sorted(masks.liars), dtype=np.int64)
        picks = masks.capture_attractors(200, attractors)
        assert set(picks.tolist()) <= set(attractors.tolist())


class TestVectorizedPredicates:
    """The mask IS the scalar predicate, applied elementwise."""

    @pytest.mark.parametrize("p", [0.05, 0.5, 0.95])
    def test_gossip_loss_mask_is_elementwise_u_less_than_p(self, p):
        plan = FaultPlan(gossip_loss_rate=p)
        seed = 17
        masks, _ = make_fault_pair(plan, seed=seed)
        replay = np.random.default_rng(seed)
        uniforms = replay.random(500)
        mask = masks.gossip_loss_mask(500)
        assert mask is not None
        assert np.array_equal(mask, uniforms < p)
        assert np.array_equal(mask, [u < p for u in uniforms])

    def test_pull_loss_mask_is_elementwise_u_less_than_p(self):
        plan = FaultPlan(pull_loss_rate=0.3)
        masks, _ = make_fault_pair(plan, seed=23)
        uniforms = np.random.default_rng(23).random(300)
        mask = masks.pull_loss_mask(300)
        assert mask is not None
        assert np.array_equal(mask, uniforms < 0.3)

    def test_capture_mask_is_elementwise_u_less_than_p(self):
        plan = AdversaryPlan(liar_fraction=0.1, liar_inflation=8.0)
        masks, _ = make_adversary_pair(plan, seed=29)
        k = len(masks.liars)
        p = masks.capture_probability(k)
        uniforms = np.random.default_rng(29).random(400)
        mask = masks.capture_mask(400, k)
        assert mask is not None
        assert np.array_equal(mask, uniforms < p)


class TestZeroKnobNeutrality:
    """Null channels consume no randomness (the R7 contract, at runtime)."""

    def test_null_fault_queries_leave_rngs_untouched(self):
        py_rng = random.Random(5)
        np_rng = np.random.default_rng(5)
        masks = FastFaultMasks(FaultPlan(), py_rng, np_rng, N_SLOTS)
        py_before, np_before = py_rng.getstate(), np_state(np_rng)
        assert masks.polluters == frozenset()
        assert masks.gossip_loss_mask(100) is None
        assert masks.pull_loss_mask(100) is None
        assert masks.outage_timeline(50.0) == ()
        assert py_rng.getstate() == py_before
        assert np_state(np_rng) == np_before

    def test_null_adversary_queries_leave_rngs_untouched(self):
        py_rng = random.Random(5)
        np_rng = np.random.default_rng(5)
        masks = FastAdversaryMasks(AdversaryPlan(), py_rng, np_rng, N_SLOTS)
        py_before, np_before = py_rng.getstate(), np_state(np_rng)
        assert masks.liars == frozenset()
        assert masks.freeriders == frozenset()
        assert masks.polluters == frozenset()
        assert masks.capture_mask(100, 0) is None
        assert not masks.targets_low_degree
        assert py_rng.getstate() == py_before
        assert np_state(np_rng) == np_before


class TestSystemLevelAgreement:
    """Same seed, both engines: the misbehaving slots are the same peers."""

    def shared(self, engine_overrides):
        return dict(
            n_peers=80,
            arrival_rate=6.0,
            gossip_rate=8.0,
            deletion_rate=1.0,
            normalized_capacity=3.0,
            segment_size=4,
            n_servers=2,
            faults=FaultPlan(pollution_fraction=0.1),
            adversary=AdversaryPlan(
                liar_fraction=0.1,
                freerider_fraction=0.05,
                polluter_fraction=0.05,
            ),
            **engine_overrides,
        )

    def test_same_seed_systems_pick_same_misbehaving_slots(self):
        seed = 42
        event = CollectionSystem(Parameters(**self.shared({})), seed=seed)
        fast = FastCollectionSystem(
            Parameters(**self.shared(dict(engine=ENGINE_FAST, tau=0.05))),
            seed=seed,
        )
        assert event.faults is not None and fast.fault_masks is not None
        assert event.adversary is not None
        assert fast.adversary_masks is not None
        assert fast.fault_masks.polluters == event.faults.polluters
        assert fast.adversary_masks.liars == event.adversary.liars
        assert fast.adversary_masks.freeriders == event.adversary.freeriders
        assert fast.adversary_masks.polluters == event.adversary.polluters
