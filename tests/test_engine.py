"""Tests for the discrete-event engine and Poisson processes."""

import math
import random

import pytest

from repro.sim.engine import PoissonProcess, Simulator, ThinnedPoissonProcess
from repro.sim.rng import SeedSequenceRegistry, exponential


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run_until(10.0)
        assert order == ["a", "b", "c"]
        assert sim.now == 10.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run_until(2.0)
        assert order == [1, 2]

    def test_clock_at_event_time_during_handler(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run_until(5.0)
        assert seen == [1.5]

    def test_events_beyond_horizon_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        assert sim.run_until(4.0) == 0
        assert not fired
        assert sim.run_until(6.0) == 1
        assert fired

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(True))
        handle.cancel()
        sim.run_until(2.0)
        assert not fired

    def test_handler_can_schedule_more(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append(sim.now)))
        sim.run_until(3.0)
        assert fired == [2.0]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_invalid_delay_raises(self):
        sim = Simulator()
        for bad in (-1.0, math.nan, math.inf):
            with pytest.raises(ValueError):
                sim.schedule(bad, lambda: None)

    def test_run_until_backwards_raises(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.run_until(4.0)

    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until(10.0)
        assert fired == [1]
        assert sim.now == 1.0

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError):
            sim.run_until(1.0, max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.events_processed == 5

    def test_zero_delay_fires_in_insertion_order(self):
        """delay=0.0 events run at the current time, FIFO among themselves."""
        sim = Simulator()
        sim.run_until(3.0)  # now > 0, so delay-0 means "at t=3.0"
        order = []
        sim.schedule(0.0, lambda: order.append("a"))
        sim.schedule(0.0, lambda: order.append("b"))
        sim.schedule(0.0, lambda: order.append("c"))
        sim.run_until(3.0)
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_schedule_at_now_fires_in_insertion_order(self):
        """schedule_at(now) is legal (not 'the past') and stays FIFO, also
        when interleaved with zero-delay scheduling and pre-existing ties."""
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("early"))
        sim.run_until(1.0)
        sim.schedule_at(2.0, lambda: order.append("x"))
        sim.schedule_at(1.0, lambda: order.append("at-now"))
        sim.schedule(0.0, lambda: order.append("zero-delay"))
        sim.run_until(5.0)
        assert order == ["at-now", "zero-delay", "early", "x"]

    def test_zero_delay_from_handler_runs_same_timestamp(self):
        """A handler scheduling at delay 0 runs within the same run_until
        call at the same clock reading — the outage begin/end chain relies
        on this."""
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
        sim.run_until(1.0)
        assert times == [1.0]

    def test_cancelled_handle_releases_action(self):
        """cancel() must drop the action reference immediately (the lazy-
        cancellation heap entry must not keep closures alive)."""
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.action is not None
        handle.cancel()
        assert handle.cancelled
        assert handle.action is None
        # cancelling twice is harmless
        handle.cancel()
        assert handle.action is None

    def test_executed_handle_releases_action(self):
        """After firing, the engine clears the handle's action too, so kept
        handles (e.g. in a fault injector's bookkeeping) never leak state."""
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert handle.action is None

    def test_cancelled_events_drain_from_heap(self):
        """Lazily-cancelled entries are popped and skipped, not executed,
        and the heap empties out.  `pending` reports *live* events only;
        the cancelled-but-uncollected backlog is reported separately."""
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(1.0, lambda i=i: fired.append(i)) for i in range(10)
        ]
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending == 5
        assert sim.pending_cancelled == 5
        assert sim.events_cancelled == 5
        executed = sim.run_until(2.0)
        assert executed == 5
        assert fired == [1, 3, 5, 7, 9]
        assert sim.pending == 0
        assert sim.pending_cancelled == 0


class TestFastPathScheduling:
    def test_schedule_call_runs_in_order_with_handles(self):
        """Handle-free and handle-carrying events share one deterministic
        (time, insertion-sequence) order."""
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("h1"))
        sim.schedule_call(1.0, lambda: order.append("c1"))
        sim.schedule(1.0, lambda: order.append("h2"))
        sim.schedule_call(0.5, lambda: order.append("c0"))
        sim.run_until(2.0)
        assert order == ["c0", "h1", "c1", "h2"]

    def test_schedule_call_validation(self):
        sim = Simulator()
        for bad in (-1.0, math.nan, math.inf):
            with pytest.raises(ValueError):
                sim.schedule_call(bad, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.schedule_call_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_call_at(math.inf, lambda: None)

    def test_batch_drain_matches_classic_order(self, monkeypatch):
        """The sorted-batch drain must execute the exact event order of a
        pure pop loop, including ties and events scheduled mid-run."""

        def run(force_classic):
            import repro.sim.engine as engine_mod

            if force_classic:
                monkeypatch.setattr(engine_mod, "_BATCH_MIN", 10**9)
            else:
                monkeypatch.setattr(engine_mod, "_BATCH_MIN", 8)
            sim = Simulator()
            order = []
            rng = random.Random(99)
            for index in range(300):
                t = rng.choice([0.5, 1.0, 1.5, 2.0, 2.5])

                def make(idx=index, at=t):
                    def act():
                        order.append((sim.now, idx))
                        # handlers keep scheduling into the current batch
                        if idx % 7 == 0:
                            sim.schedule_call(
                                0.0, lambda: order.append((sim.now, -idx))
                            )
                    return act

                if index % 3 == 0:
                    sim.schedule(t, make())
                else:
                    sim.schedule_call(t, make())
            sim.run_until(3.0)
            return order

        assert run(force_classic=False) == run(force_classic=True)

    def test_stop_mid_batch_preserves_remaining_events(self):
        sim = Simulator()
        fired = []
        for index in range(200):
            if index == 99:
                sim.schedule_call(
                    float(index), lambda: (fired.append(99), sim.stop())
                )
            else:
                sim.schedule_call(float(index), lambda i=index: fired.append(i))
        executed = sim.run_until(1000.0)
        assert executed == 100
        assert sim.now == 99.0
        assert sim.pending == 100
        sim.run_until(1000.0)
        assert fired == list(range(200))
        assert sim.pending == 0

    def test_exception_mid_batch_preserves_remaining_events(self):
        sim = Simulator()
        fired = []

        def boom():
            raise RuntimeError("boom")

        for index in range(200):
            if index == 50:
                sim.schedule_call(float(index), boom)
            else:
                sim.schedule_call(float(index), lambda i=index: fired.append(i))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run_until(1000.0)
        assert sim.pending == 149
        sim.run_until(1000.0)
        assert fired == [i for i in range(200) if i != 50]

    def test_run_until_is_not_reentrant(self):
        sim = Simulator()
        sim.schedule_call(1.0, lambda: sim.run_until(5.0))
        with pytest.raises(RuntimeError, match="re-entrant"):
            sim.run_until(2.0)


class TestCancellationAccounting:
    def test_max_events_counts_cancelled_pops(self):
        """The runaway valve must see lazily-cancelled entries being
        discarded, so cancellation churn cannot starve it."""
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        with pytest.raises(RuntimeError, match="runaway"):
            sim.run_until(2.0, max_events=100)

    def test_set_rate_churn_keeps_heap_bounded(self):
        """Heavy set_rate churn used to grow the heap without bound; the
        compactor must keep the cancelled backlog capped."""
        sim = Simulator()
        process = PoissonProcess(
            sim, random.Random(8), rate=1.0, action=lambda: None
        )
        for index in range(5000):
            process.set_rate(1.0 + (index % 7))
        assert sim.events_cancelled >= 5000
        assert sim.heap_compactions > 0
        # bounded backlog: far below the 5000 cancellations issued
        assert sim.pending_cancelled <= 600
        assert sim.pending == 1  # exactly the one live armed fire

    def test_perf_snapshot(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        sim.schedule_call(2.0, lambda: None)
        sim.run_until(3.0)
        perf = sim.perf()
        assert perf.events_fired == 1
        assert perf.events_cancelled == 1
        assert perf.pending_live == 0
        assert perf.pending_cancelled == 0
        assert perf.run_until_calls == 1
        assert perf.wall_time >= 0.0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        sim.run_until(2.0)
        handle.cancel()
        assert fired == [1]
        assert not handle.cancelled
        assert sim.events_cancelled == 0
        assert sim.pending_cancelled == 0


class TestNonCancellableClock:
    def test_fires_at_requested_rate(self):
        sim = Simulator()
        fires = []
        PoissonProcess(
            sim,
            random.Random(21),
            rate=50.0,
            action=lambda: fires.append(sim.now),
            cancellable=False,
        )
        sim.run_until(20.0)
        assert abs(len(fires) / 20.0 - 50.0) / 50.0 < 0.1
        assert sim.pending_cancelled == 0  # no handles, nothing to cancel

    def test_stop_leaves_stale_fire_that_drains_as_noop(self):
        sim = Simulator()
        fires = []
        process = PoissonProcess(
            sim,
            random.Random(2),
            rate=1.0,
            action=lambda: fires.append(sim.now),
            cancellable=False,
        )
        process.stop()
        with pytest.raises(RuntimeError, match="stale fire"):
            process.start()
        sim.run_until(100.0)  # drain the stale entry (fires nothing)
        assert not fires
        process.start()
        sim.run_until(200.0)
        assert fires  # restart works once the stale fire drained

    def test_set_rate_on_armed_clock_raises(self):
        sim = Simulator()
        process = PoissonProcess(
            sim,
            random.Random(2),
            rate=1.0,
            action=lambda: None,
            cancellable=False,
        )
        with pytest.raises(RuntimeError, match="non-cancellable"):
            process.set_rate(2.0)

    def test_set_rate_on_parked_clock_recovers(self):
        sim = Simulator()
        fires = []
        process = PoissonProcess(
            sim,
            random.Random(2),
            rate=0.0,
            action=lambda: fires.append(1),
            cancellable=False,
        )
        process.set_rate(100.0)  # parked, not armed: retiming is legal
        sim.run_until(1.0)
        assert fires

    def test_gap_batch_preserves_fire_times_on_exclusive_stream(self):
        def fire_times(gap_batch):
            sim = Simulator()
            fires = []
            PoissonProcess(
                sim,
                random.Random(77),  # exclusive stream
                rate=10.0,
                action=lambda: fires.append(sim.now),
                gap_batch=gap_batch,
            )
            sim.run_until(50.0)
            return fires

        assert fire_times(1) == fire_times(16)

    def test_gap_batch_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PoissonProcess(
                sim, random.Random(0), rate=1.0, action=lambda: None, gap_batch=0
            )

    def test_per_clock_counters(self):
        sim = Simulator()
        process = PoissonProcess(
            sim, random.Random(4), rate=100.0, action=lambda: None
        )
        sim.run_until(1.0)
        assert process.events_fired > 0
        process.set_rate(50.0)
        assert process.events_cancelled == 1


class TestPoissonProcess:
    def test_rate_is_respected(self):
        sim = Simulator()
        rng = random.Random(42)
        fires = []
        PoissonProcess(sim, rng, rate=50.0, action=lambda: fires.append(sim.now))
        sim.run_until(20.0)
        observed_rate = len(fires) / 20.0
        assert abs(observed_rate - 50.0) / 50.0 < 0.1

    def test_interarrivals_look_exponential(self):
        sim = Simulator()
        rng = random.Random(7)
        fires = []
        PoissonProcess(sim, rng, rate=10.0, action=lambda: fires.append(sim.now))
        sim.run_until(100.0)
        gaps = [b - a for a, b in zip(fires, fires[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert abs(mean_gap - 0.1) < 0.01
        # memorylessness proxy: CV of exponential is 1
        var = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(var) / mean_gap
        assert abs(cv - 1.0) < 0.1

    def test_zero_rate_parks(self):
        sim = Simulator()
        fires = []
        process = PoissonProcess(
            sim, random.Random(0), rate=0.0, action=lambda: fires.append(1)
        )
        sim.run_until(10.0)
        assert not fires
        process.set_rate(100.0)
        sim.run_until(11.0)
        assert fires

    def test_stop_disarms(self):
        sim = Simulator()
        fires = []
        process = PoissonProcess(
            sim, random.Random(0), rate=10.0, action=lambda: fires.append(1)
        )
        sim.run_until(1.0)
        count = len(fires)
        process.stop()
        sim.run_until(5.0)
        assert len(fires) == count
        assert not process.is_running

    def test_set_rate_midflight(self):
        sim = Simulator()
        fires = []
        process = PoissonProcess(
            sim, random.Random(1), rate=1.0, action=lambda: fires.append(sim.now)
        )
        sim.run_until(10.0)
        slow = len(fires)
        process.set_rate(100.0)
        sim.run_until(20.0)
        fast = len(fires) - slow
        assert fast > slow * 10

    def test_negative_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PoissonProcess(sim, random.Random(0), rate=-1.0, action=lambda: None)
        process = PoissonProcess(
            sim, random.Random(0), rate=1.0, action=lambda: None
        )
        with pytest.raises(ValueError):
            process.set_rate(math.inf)

    def test_subnormal_rate_parks_instead_of_infinite_delay(self):
        """A denormal-but-positive rate overflows expovariate to infinity;
        the process must park rather than schedule an unreachable event."""
        sim = Simulator()
        fires = []
        process = PoissonProcess(
            sim,
            random.Random(0),
            rate=5e-324,  # smallest positive float
            action=lambda: fires.append(1),
        )
        sim.run_until(10.0)
        assert not fires
        process.set_rate(100.0)  # recoverable via set_rate
        sim.run_until(11.0)
        assert fires

    def test_start_idempotent(self):
        sim = Simulator()
        fires = []
        process = PoissonProcess(
            sim, random.Random(3), rate=100.0, action=lambda: fires.append(1),
            start=False,
        )
        sim.run_until(1.0)
        assert not fires
        process.start()
        process.start()
        sim.run_until(2.0)
        # double start must not double the rate
        assert 50 < len(fires) < 160


class TestThinnedPoissonProcess:
    def test_halved_rate(self):
        sim = Simulator()
        rng = random.Random(5)
        fires = []
        ThinnedPoissonProcess(
            sim,
            rng,
            max_rate=100.0,
            rate_fn=lambda t: 50.0,
            action=lambda: fires.append(sim.now),
        )
        sim.run_until(20.0)
        assert abs(len(fires) / 20.0 - 50.0) / 50.0 < 0.15

    def test_time_varying_profile(self):
        sim = Simulator()
        rng = random.Random(6)
        fires = []
        ThinnedPoissonProcess(
            sim,
            rng,
            max_rate=100.0,
            rate_fn=lambda t: 100.0 if t >= 10.0 else 10.0,
            action=lambda: fires.append(sim.now),
        )
        sim.run_until(20.0)
        early = sum(1 for t in fires if t < 10.0)
        late = sum(1 for t in fires if t >= 10.0)
        assert late > 5 * early

    def test_rate_fn_above_max_raises(self):
        sim = Simulator()
        ThinnedPoissonProcess(
            sim,
            random.Random(0),
            max_rate=1.0,
            rate_fn=lambda t: 2.0,
            action=lambda: None,
        )
        with pytest.raises(ValueError):
            sim.run_until(50.0)

    def test_negative_rate_fn_raises(self):
        sim = Simulator()
        ThinnedPoissonProcess(
            sim,
            random.Random(0),
            max_rate=10.0,
            rate_fn=lambda t: -1.0,
            action=lambda: None,
        )
        with pytest.raises(ValueError):
            sim.run_until(50.0)


class TestRng:
    def test_exponential_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            exponential(random.Random(0), 0.0)

    def test_registry_reproducible(self):
        a = SeedSequenceRegistry(1).python("x").random()
        b = SeedSequenceRegistry(1).python("x").random()
        assert a == b

    def test_registry_streams_differ_by_name(self):
        seeds = SeedSequenceRegistry(1)
        assert seeds.python("a").random() != seeds.python("b").random()

    def test_registry_same_name_same_object(self):
        seeds = SeedSequenceRegistry(1)
        assert seeds.python("a") is seeds.python("a")
        assert seeds.numpy("a") is seeds.numpy("a")

    def test_numpy_streams(self):
        seeds = SeedSequenceRegistry(2)
        x = seeds.numpy("n").integers(0, 1000)
        y = SeedSequenceRegistry(2).numpy("n").integers(0, 1000)
        assert x == y

    def test_spawn_children_differ(self):
        seeds = SeedSequenceRegistry(3)
        a = seeds.spawn("child1").python("x").random()
        b = seeds.spawn("child2").python("x").random()
        assert a != b

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceRegistry("seed")
        with pytest.raises(ValueError):
            SeedSequenceRegistry(True)
