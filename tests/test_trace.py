"""Tests for event tracing and the instrumented collection system."""

import pytest

from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.sim.trace import (
    ADVERSARY_KINDS,
    ALL_KINDS,
    FAULT_KINDS,
    KIND_COMPLETE,
    KIND_GOSSIP,
    KIND_INJECT,
    PROTOCOL_KINDS,
    TraceEvent,
    Tracer,
)


def traced_run(tracer, seed=1, duration=6.0, **overrides):
    defaults = dict(
        n_peers=30,
        arrival_rate=4.0,
        gossip_rate=6.0,
        deletion_rate=1.0,
        normalized_capacity=2.0,
        segment_size=3,
        n_servers=2,
    )
    defaults.update(overrides)
    system = CollectionSystem(Parameters(**defaults), seed=seed, tracer=tracer)
    system.run_until(duration)
    return system


class TestTracer:
    def test_record_and_read(self):
        tracer = Tracer()
        tracer.record(1.0, KIND_INJECT, peer=3, segment=7, size=4.0)
        assert len(tracer) == 1
        event = tracer.events[0]
        assert event.time == 1.0 and event.peer == 3 and event.segment == 7
        assert event.detail == {"size": 4.0}

    def test_kind_filter(self):
        tracer = Tracer(kinds=[KIND_INJECT])
        tracer.record(0.0, KIND_INJECT, peer=1)
        tracer.record(0.1, KIND_GOSSIP, peer=1)
        assert len(tracer) == 1
        assert tracer.counts == {KIND_INJECT: 1}
        assert not tracer.wants(KIND_GOSSIP)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Tracer(kinds=["injct"])

    def test_ring_buffer_keeps_latest(self):
        tracer = Tracer(max_events=3)
        for index in range(10):
            tracer.record(float(index), KIND_INJECT, peer=index)
        assert len(tracer) == 3
        assert [e.peer for e in tracer.events] == [7, 8, 9]
        assert tracer.dropped == 7
        assert tracer.counts[KIND_INJECT] == 10  # counters see everything

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_selectors(self):
        tracer = Tracer()
        tracer.record(0.0, KIND_INJECT, peer=1, segment=5)
        tracer.record(1.0, KIND_GOSSIP, peer=2, segment=5)
        tracer.record(2.0, KIND_INJECT, peer=2, segment=6)
        assert len(tracer.of_kind(KIND_INJECT)) == 2
        assert len(tracer.for_segment(5)) == 2
        assert len(tracer.for_peer(2)) == 2

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.record(0.5, KIND_INJECT, peer=1, segment=2, size=3.0)
        tracer.record(1.5, KIND_COMPLETE, peer=1, segment=2, delay=1.0)
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(path) == 2
        restored = Tracer.read_jsonl(path)
        assert restored == tracer.events

    def test_summary_format(self):
        tracer = Tracer(max_events=1)
        tracer.record(0.0, KIND_INJECT)
        tracer.record(1.0, KIND_INJECT)
        text = tracer.summary()
        assert "inject=2" in text and "dropped 1" in text


class TestInstrumentedSystem:
    def test_untraced_system_records_nothing(self):
        system = traced_run(None)
        assert system.tracer is None

    def test_all_protocol_kind_coverage_under_churn(self):
        tracer = Tracer()
        traced_run(tracer, mean_lifetime=3.0, duration=10.0)
        # A fault-free run exercises every protocol kind and no fault kind.
        assert set(tracer.counts) == set(PROTOCOL_KINDS)

    def test_kind_sets_partition(self):
        assert PROTOCOL_KINDS | FAULT_KINDS | ADVERSARY_KINDS == ALL_KINDS
        assert not PROTOCOL_KINDS & FAULT_KINDS
        assert not PROTOCOL_KINDS & ADVERSARY_KINDS
        assert not FAULT_KINDS & ADVERSARY_KINDS

    def test_inject_counts_match_metrics(self):
        tracer = Tracer()
        system = traced_run(tracer)
        assert tracer.counts[KIND_INJECT] == system.metrics.injected_segments.total

    def test_gossip_counts_match_metrics(self):
        tracer = Tracer()
        system = traced_run(tracer)
        assert tracer.counts[KIND_GOSSIP] == system.metrics.gossip_transfers.total

    def test_segment_life_is_ordered(self):
        tracer = Tracer()
        traced_run(tracer, duration=8.0)
        completes = tracer.of_kind(KIND_COMPLETE)
        assert completes, "no segment completed in the traced run"
        segment_id = completes[0].segment
        life = tracer.for_segment(segment_id)
        assert life[0].kind == KIND_INJECT
        times = [event.time for event in life]
        assert times == sorted(times)
        # the completion event carries the delivery delay
        complete = next(e for e in life if e.kind == KIND_COMPLETE)
        assert complete.detail["delay"] == pytest.approx(
            complete.time - life[0].time
        )

    def test_event_dataclass_as_dict(self):
        event = TraceEvent(time=1.0, kind=KIND_INJECT, peer=None, segment=3)
        payload = event.as_dict()
        assert payload == {"time": 1.0, "kind": KIND_INJECT, "segment": 3}
