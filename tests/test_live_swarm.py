"""Live-runtime integration tests: ports, wire, netem, crossval, swarms.

Everything here binds port 0 and propagates the kernel-assigned port via
the shared :mod:`repro.live.ports` helpers — no test hard-codes a port,
so parallel runs on a busy CI host cannot collide.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.coding.block import SegmentDescriptor, make_source_blocks
from repro.core.params import Parameters
from repro.faults.plan import FaultPlan
from repro.live import ports, wire
from repro.live.crossval import (
    DEFAULT_TOLERANCES,
    compare_metric,
    compare_reports,
)
from repro.live.framing import FrameGarbage
from repro.live.harness import run_swarm, validate_live_params
from repro.live.transport import (
    NetemShim,
    POLLUTER_STREAM,
    detects_pollution,
)
from repro.sim.rng import SeedSequenceRegistry


def _params(**overrides):
    defaults = dict(
        n_peers=8,
        arrival_rate=0.25,
        gossip_rate=1.0,
        deletion_rate=0.25,
        normalized_capacity=1.0,
        segment_size=2,
        n_servers=2,
        mode="rlnc",
        payload_bytes=32,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


class TestPorts:
    """Port-collision-safe fixtures: bind 0, propagate, bounded retry."""

    def test_port_zero_binds_and_propagates_ephemeral_port(self):
        async def scenario():
            async def handler(reader, writer):
                await ports.close_writer(writer)

            server, port = await ports.start_server(handler)
            assert port > 0  # the kernel's pick, not our request
            assert ports.server_port(server) == port
            reader, writer = await ports.connect("127.0.0.1", port)
            await ports.close_writer(writer)
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_two_listeners_never_collide(self):
        async def scenario():
            async def handler(reader, writer):
                await ports.close_writer(writer)

            first, port_a = await ports.start_server(handler)
            second, port_b = await ports.start_server(handler)
            assert port_a != port_b
            for server in (first, second):
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_connect_retry_is_bounded(self):
        async def scenario():
            # Grab an ephemeral port, then free it: nothing listens there.
            async def handler(reader, writer):
                await ports.close_writer(writer)

            server, port = await ports.start_server(handler)
            server.close()
            await server.wait_closed()
            with pytest.raises(OSError):
                await ports.connect(
                    "127.0.0.1", port, attempts=2, backoff=0.01
                )

        asyncio.run(scenario())

    def test_connect_retries_until_listener_appears(self):
        async def scenario():
            async def handler(reader, writer):
                await ports.close_writer(writer)

            # Reserve a port the late listener will reuse.
            probe, port = await ports.start_server(handler)
            probe.close()
            await probe.wait_closed()

            async def late_listener():
                await asyncio.sleep(0.1)
                return await ports.start_server(handler, port=port)

            listener_task = asyncio.create_task(late_listener())
            reader, writer = await ports.connect(
                "127.0.0.1", port, attempts=8, backoff=0.05
            )
            await ports.close_writer(writer)
            server, _ = await listener_task
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_attempt_budgets_are_validated(self):
        async def scenario():
            async def handler(reader, writer):
                await ports.close_writer(writer)

            with pytest.raises(ValueError):
                await ports.start_server(handler, attempts=0)
            with pytest.raises(ValueError):
                await ports.connect("127.0.0.1", 1, attempts=0)

        asyncio.run(scenario())


class TestWire:
    def _block(self, s=3, payload_bytes=16):
        descriptor = SegmentDescriptor(
            segment_id=(5 << 32) | 7,
            source_peer=5,
            size=s,
            injected_at=1.25,
            generation=2,
        )
        rows = np.arange(s * payload_bytes, dtype=np.uint8).reshape(
            s, payload_bytes
        )
        return make_source_blocks(descriptor, rows, created_at=1.5)[0]

    def test_block_round_trip(self):
        block = self._block()
        header, payload = wire.block_to_wire(
            wire.MSG_BLOCK, block, "abcd1234", slot=5
        )
        assert header["slot"] == 5
        back = wire.block_from_wire(header, payload)
        assert back.segment == block.segment
        assert np.array_equal(back.coefficients, block.coefficients)
        assert np.array_equal(back.payload, block.payload)
        assert back.created_at == block.created_at
        assert back.polluted == block.polluted
        assert wire.block_digest_of(header) == "abcd1234"

    def test_short_payload_is_garbage_not_a_crash(self):
        block = self._block(s=3)
        header, payload = wire.block_to_wire(wire.MSG_BLOCK, block, "")
        with pytest.raises(FrameGarbage):
            wire.block_from_wire(header, payload[:3])  # only coefficients

    def test_malformed_segment_header_is_garbage(self):
        block = self._block()
        header, payload = wire.block_to_wire(wire.MSG_BLOCK, block, "")
        header = dict(header)
        header["segment"] = {"segment_id": "not-an-int-at-all"}
        with pytest.raises(FrameGarbage):
            wire.block_from_wire(header, payload)

    def test_params_round_trip_with_fault_plan(self):
        params = _params(
            faults=FaultPlan(
                gossip_loss_rate=0.1,
                pull_loss_rate=0.05,
                pollution_fraction=0.2,
                outage_windows=((1.0, 2.0), (5.0, 6.5)),
            ),
        )
        back = wire.params_from_wire(wire.params_to_wire(params))
        assert back == params
        assert isinstance(back.faults, FaultPlan)
        assert back.faults.outage_windows == ((1.0, 2.0), (5.0, 6.5))

    def test_params_refuse_adversary_plans(self):
        from repro.adversary.plan import AdversaryPlan

        params = _params(adversary=AdversaryPlan(liar_fraction=0.1))
        with pytest.raises(ValueError):
            wire.params_to_wire(params)

    def test_payload_digest_is_stable_and_short(self):
        digest = wire.payload_digest(b"hello world")
        assert digest == wire.payload_digest(b"hello world")
        assert len(digest) == 16
        assert digest != wire.payload_digest(b"hello worlds")


class TestNetemShim:
    def _shim(self, plan, n=50, root_seed=7):
        seeds = SeedSequenceRegistry(root_seed)
        return NetemShim(
            plan, n, seeds.python(POLLUTER_STREAM),
            seeds.python("test:netem"),
        )

    def test_polluter_count_matches_the_simulator_formula(self):
        for n, fraction in [(50, 0.1), (50, 0.001), (7, 0.5), (3, 1.0)]:
            shim = self._shim(FaultPlan(pollution_fraction=fraction), n=n)
            expected = min(n, max(1, round(fraction * n)))
            assert len(shim.polluters) == expected

    def test_polluter_set_is_identical_across_processes(self):
        # Same root seed + the shared POLLUTER_STREAM substream -> every
        # process of a swarm derives the same polluter set independently.
        plan = FaultPlan(pollution_fraction=0.2)
        first = self._shim(plan)
        second = self._shim(plan)
        assert first.polluters == second.polluters
        assert first.polluters  # non-empty at this fraction

    def test_polluter_sampling_matches_injector_sample_call(self):
        # Byte-for-byte parity with FaultInjector._sample_polluters: the
        # same count formula and the same rng.sample call.
        plan = FaultPlan(pollution_fraction=0.2)
        n = 50
        shim = self._shim(plan, n=n)
        twin = SeedSequenceRegistry(7).python(POLLUTER_STREAM)
        count = min(n, max(1, round(plan.pollution_fraction * n)))
        assert shim.polluters == frozenset(twin.sample(range(n), count))

    def test_zero_knob_queries_never_touch_the_event_rng(self):
        shim = self._shim(FaultPlan())
        state = shim._event_rng.getstate()
        assert not shim.drop_gossip()
        assert not shim.drop_pull()
        assert shim._event_rng.getstate() == state

    def test_polluted_emission_is_detectable_on_the_wire(self):
        shim = self._shim(FaultPlan(pollution_fraction=0.2))
        polluter = next(iter(shim.polluters))
        clean = sorted(set(range(50)) - set(shim.polluters))[0]
        descriptor = SegmentDescriptor(
            segment_id=1, source_peer=polluter, size=2, injected_at=0.0
        )
        rows = np.ones((2, 8), dtype=np.uint8)
        blocks = make_source_blocks(descriptor, rows, created_at=0.0)

        from repro.core.peer import SegmentHolding

        holding = SegmentHolding(descriptor)
        holding.add(blocks[0])
        # A polluter slot corrupts its fresh emission detectably.
        emission = blocks[1]
        assert shim.maybe_pollute(polluter, holding, emission)
        assert detects_pollution(emission)
        # Once a receiver stores that junk, every re-encode over the
        # holding is junk too — even from a clean slot (pollution spreads).
        holding.add(emission)
        assert holding.polluted_count > 0
        assert shim.pollutes(clean, holding)
        # A clean holding at a clean slot stays clean.
        clean_holding = SegmentHolding(descriptor)
        clean_holding.add(blocks[0])
        assert not shim.pollutes(clean, clean_holding)

    def test_loss_rates_drop_at_the_configured_frequency(self):
        shim = self._shim(FaultPlan(gossip_loss_rate=0.3), n=10)
        drops = sum(shim.drop_gossip() for _ in range(4000))
        assert 0.25 < drops / 4000 < 0.35


class TestCrossval:
    def test_metric_within_band_agrees(self):
        c = compare_metric("normalized_throughput", 0.50, 0.55, 0.15)
        assert c.within and c.deviation == pytest.approx(0.1)

    def test_metric_outside_band_disagrees(self):
        c = compare_metric("normalized_throughput", 0.50, 0.60, 0.15)
        assert not c.within

    def test_one_sided_none_disagrees_both_none_trivially_agrees(self):
        assert not compare_metric("m", 0.5, None, 0.1).within
        assert not compare_metric("m", None, 0.5, 0.1).within
        assert compare_metric("m", None, None, 0.1).within

    def test_report_verdict_and_worst(self):
        sim = {m: 1.0 for m in DEFAULT_TOLERANCES}
        live = dict(sim)
        report = compare_reports(sim, live)
        assert report.agrees
        live["efficiency"] = 10.0
        report = compare_reports(sim, live)
        assert not report.agrees
        assert report.worst.metric == "efficiency"
        payload = report.to_payload()
        assert payload["agrees"] is False

    def test_near_zero_baselines_use_the_absolute_floor(self):
        # deviation is relative to max(|sim|, floor): a tiny sim value must
        # not turn numeric dust into an infinite relative error.
        c = compare_metric("m", 0.0, 1e-4, 0.15)
        assert c.within


class TestValidateLiveParams:
    def test_accepts_the_default_live_shape(self):
        validate_live_params(_params())

    def test_rejects_abstract_mode_latency_and_policy(self):
        with pytest.raises(ValueError):
            validate_live_params(_params(payload_bytes=0))
        with pytest.raises(ValueError):
            validate_live_params(_params(mode="abstract", payload_bytes=0))
        with pytest.raises(ValueError):
            validate_live_params(_params(gossip_latency=0.5))
        with pytest.raises(ValueError):
            validate_live_params(_params(pull_policy="rarest-first"))


class TestSwarm:
    """End-to-end loopback swarms (small; the 1k run is E-LIVE's job)."""

    def test_eight_peer_swarm_collects_and_verifies(self):
        params = _params()
        report = asyncio.run(
            run_swarm(params, seed=3, warmup=3.0, duration=8.0,
                      time_scale=4.0)
        )
        assert report["engine"] == "live"
        assert report["segments_completed"] > 0
        assert report["hash_verified"] > 0
        assert report["hash_failures"] == 0
        assert report["normalized_throughput"] > 0
        assert report["mean_block_delay"] is None or (
            report["mean_block_delay"] >= 0
        )

    def test_faulty_swarm_stays_clean_end_to_end(self):
        params = _params(
            faults=FaultPlan(
                gossip_loss_rate=0.2,
                pull_loss_rate=0.1,
                pollution_fraction=0.2,
            ),
        )
        report = asyncio.run(
            run_swarm(params, seed=5, warmup=3.0, duration=8.0,
                      time_scale=4.0)
        )
        # Losses and polluters are active, yet nothing corrupt decodes.
        assert report["hash_failures"] == 0
        assert (
            report["transfers_dropped"] > 0
            or report["blocks_rejected_polluted"] > 0
        )

    def test_swarm_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            asyncio.run(run_swarm(_params(), 1, warmup=-1.0, duration=1.0))
        with pytest.raises(ValueError):
            asyncio.run(run_swarm(_params(), 1, warmup=0.0, duration=0.0))
