"""Stress and property tests: random configurations, pathological corners.

The simulator must stay internally consistent (no counter drift, no
invariant violations) under *any* legal configuration — including corners
that never appear in the paper's figures: starved servers, brutal churn,
buffers barely larger than a segment, gossip turned off entirely.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.params import Parameters
from repro.core.system import CollectionSystem

configs = st.fixed_dictionaries(
    {
        "n_peers": st.integers(5, 40),
        "arrival_rate": st.floats(0.5, 12.0),
        "gossip_rate": st.floats(0.0, 12.0),
        "deletion_rate": st.floats(0.3, 4.0),
        "normalized_capacity": st.floats(0.2, 8.0),
        "segment_size": st.integers(1, 6),
        "n_servers": st.integers(1, 3),
        "segment_selection": st.sampled_from(["proportional", "uniform"]),
        "mean_lifetime": st.one_of(st.none(), st.floats(0.5, 10.0)),
    }
)


class TestRandomConfigurations:
    @given(configs, st.integers(0, 2**16))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_invariants_hold_for_any_legal_config(self, config, seed):
        params = Parameters(**config)
        system = CollectionSystem(params, seed=seed)
        system.run_until(4.0)
        system.consistency_check()
        # hard physical invariants
        capacity = params.effective_buffer_capacity
        assert all(peer.block_count <= capacity for peer in system.peers)
        report = system.metrics.report(system.now)
        assert report.useful_pulls + report.redundant_pulls + report.idle_pulls == report.pulls
        assert 0.0 <= report.efficiency <= 1.0
        assert report.mean_buffer_occupancy <= capacity

    @given(configs, st.integers(0, 2**16))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_determinism_for_any_legal_config(self, config, seed):
        params = Parameters(**config)
        a = CollectionSystem(params, seed=seed).run(1.0, 2.0)
        b = CollectionSystem(params, seed=seed).run(1.0, 2.0)
        assert a == b


class TestPathologicalCorners:
    def test_buffer_exactly_one_segment(self):
        """B == s: a peer can hold exactly one segment and nothing else."""
        params = Parameters(
            n_peers=10,
            arrival_rate=4.0,
            gossip_rate=4.0,
            deletion_rate=1.0,
            normalized_capacity=1.0,
            segment_size=4,
            n_servers=1,
            buffer_capacity=4,
        )
        system = CollectionSystem(params, seed=1)
        report = system.run(2.0, 4.0)
        system.consistency_check()
        assert report.blocked_injections > 0  # the cap binds hard

    def test_brutal_churn(self):
        """Mean lifetime far below every other timescale."""
        params = Parameters(
            n_peers=20,
            arrival_rate=4.0,
            gossip_rate=6.0,
            deletion_rate=1.0,
            normalized_capacity=2.0,
            segment_size=3,
            n_servers=2,
            mean_lifetime=0.2,
        )
        system = CollectionSystem(params, seed=2)
        report = system.run(2.0, 4.0)
        system.consistency_check()
        assert report.departures > 200
        assert report.blocks_lost_to_churn > 0

    def test_starved_servers(self):
        """Tiny capacity: almost everything is eventually lost, cleanly."""
        params = Parameters(
            n_peers=20,
            arrival_rate=8.0,
            gossip_rate=4.0,
            deletion_rate=2.0,
            normalized_capacity=0.05,
            segment_size=2,
            n_servers=1,
        )
        system = CollectionSystem(params, seed=3)
        report = system.run(2.0, 6.0)
        system.consistency_check()
        assert report.segments_lost > report.segments_completed

    def test_gossip_disabled_no_coding_degenerates_to_local_buffering(self):
        params = Parameters(
            n_peers=15,
            arrival_rate=3.0,
            gossip_rate=0.0,
            deletion_rate=1.0,
            normalized_capacity=1.0,
            segment_size=1,
            n_servers=1,
        )
        system = CollectionSystem(params, seed=4)
        report = system.run(3.0, 5.0)
        assert report.gossip_transfers == 0
        # every block lives only at its source: degree == source multiplicity
        for state in system.registry.live_states():
            holders = sum(
                1 for peer in system.peers if peer.holds_segment(state.segment_id)
            )
            assert holders <= 1

    def test_single_peer_session(self):
        """One peer, one server: gossip has no targets, pulls still work."""
        params = Parameters(
            n_peers=1,
            arrival_rate=3.0,
            gossip_rate=5.0,
            deletion_rate=1.0,
            normalized_capacity=2.0,
            segment_size=2,
            n_servers=1,
        )
        system = CollectionSystem(params, seed=5)
        report = system.run(2.0, 5.0)
        system.consistency_check()
        assert report.gossip_transfers == 0
        assert report.useful_pulls > 0

    def test_rlnc_under_churn_stays_consistent(self):
        params = Parameters(
            n_peers=15,
            arrival_rate=2.0,
            gossip_rate=5.0,
            deletion_rate=1.0,
            normalized_capacity=1.5,
            segment_size=3,
            n_servers=1,
            mean_lifetime=1.0,
            mode="rlnc",
        )
        system = CollectionSystem(params, seed=6)
        system.run_until(6.0)
        system.consistency_check()

    def test_extreme_ttl_rates(self):
        """Blocks die almost immediately: the network barely holds data."""
        params = Parameters(
            n_peers=15,
            arrival_rate=4.0,
            gossip_rate=4.0,
            deletion_rate=20.0,
            normalized_capacity=2.0,
            segment_size=2,
            n_servers=1,
        )
        system = CollectionSystem(params, seed=7)
        report = system.run(2.0, 4.0)
        system.consistency_check()
        # occupancy ~ (lambda + mu') / gamma: well under one block per peer
        assert report.mean_buffer_occupancy < 1.5
