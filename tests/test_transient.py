"""Tests for the fluid-limit transient model (time-varying demand)."""

import numpy as np
import pytest

from repro.analysis.ode import CollectionODE
from repro.analysis.transient import Trajectory, TransientCollectionODE
from repro.stats.workload import ConstantWorkload, FlashCrowdWorkload, ShutoffWorkload


def make_model(workload, s=4, mu=8.0, gamma=1.0, c=3.0, **config_kwargs):
    from repro.analysis.ode import ODEConfig

    config = ODEConfig(**config_kwargs) if config_kwargs else None
    return TransientCollectionODE(
        workload=workload,
        gossip_rate=mu,
        deletion_rate=gamma,
        segment_size=s,
        normalized_capacity=c,
        config=config,
    )


class TestConstruction:
    def test_truncation_sized_for_peak(self):
        flash = FlashCrowdWorkload(2.0, 5.0, 8.0, 10.0)  # peak 20
        constant = ConstantWorkload(2.0)
        assert make_model(flash).B > make_model(constant).B

    def test_simulate_validates_arguments(self):
        model = make_model(ConstantWorkload(2.0))
        with pytest.raises(ValueError):
            model.simulate(-1.0)
        with pytest.raises(ValueError):
            model.simulate(5.0, n_points=1)


class TestConstantDemandConsistency:
    def test_converges_to_steady_state(self):
        """Under constant demand the transient must settle onto the
        steady state of the time-invariant model."""
        lam, mu, gamma, s, c = 6.0, 6.0, 1.0, 2, 2.0
        transient = make_model(ConstantWorkload(lam), s=s, mu=mu, gamma=gamma, c=c)
        trajectory = transient.simulate(60.0, n_points=60)
        steady = CollectionODE(lam, mu, gamma, s, c).steady_state()
        assert trajectory.occupancy[-1] == pytest.approx(steady.e, rel=0.02)
        assert trajectory.empty_fraction[-1] == pytest.approx(
            steady.z0, abs=5e-3
        )

    def test_occupancy_monotone_rampup_from_empty(self):
        trajectory = make_model(ConstantWorkload(4.0)).simulate(20.0, n_points=40)
        assert trajectory.occupancy[0] == pytest.approx(0.0, abs=1e-6)
        diffs = np.diff(trajectory.occupancy)
        assert (diffs > -1e-6).all()


class TestFlashCrowd:
    def make_trajectory(self):
        workload = FlashCrowdWorkload(
            base_rate=4.0, burst_start=10.0, burst_end=15.0, multiplier=5.0
        )
        model = make_model(workload, s=4, mu=8.0, gamma=0.5, c=5.0)
        return model.simulate(40.0, n_points=120)

    def test_buffer_swells_through_burst_and_drains(self):
        trajectory = self.make_trajectory()
        times = trajectory.times
        pre = trajectory.occupancy[(times > 8.0) & (times < 10.0)].mean()
        peak = trajectory.peak_occupancy()
        post = trajectory.occupancy[times > 35.0].mean()
        assert peak > 1.5 * pre  # the buffering zone absorbs the burst
        assert post < 1.2 * pre  # and drains back down afterwards

    def test_collection_rate_smoother_than_demand(self):
        """The smoothing factor: server intake varies far less than the
        offered load does."""
        trajectory = self.make_trajectory()
        demand_swing = trajectory.demand.max() / trajectory.demand.min()
        window = trajectory.collection_rate[trajectory.times > 5.0]
        intake_swing = window.max() / window.min()
        assert demand_swing == pytest.approx(5.0)
        assert intake_swing < demand_swing / 2.0

    def test_collection_capped_by_capacity(self):
        trajectory = self.make_trajectory()
        assert (trajectory.collection_rate <= 5.0 + 1e-9).all()

    def test_collected_fraction_below_one(self):
        trajectory = self.make_trajectory()
        assert 0.0 < trajectory.collected_fraction() < 1.0


class TestShutoff:
    def test_saved_reserve_serves_after_demand_ends(self):
        """Theorem 4's scenario at the fluid level: demand stops, the
        buffered reserve keeps the servers collecting."""
        model = make_model(ShutoffWorkload(6.0, cutoff=10.0), s=4, c=2.0)
        trajectory = model.simulate(30.0, n_points=90)
        after = trajectory.times > 11.0
        assert trajectory.demand[after].max() == 0.0
        # collection continues from the reserve for a while after cutoff
        just_after = trajectory.collection_rate[(trajectory.times > 11.0) & (trajectory.times < 15.0)]
        assert just_after.min() > 0.2
        # and the reserve itself decays toward zero
        assert trajectory.saved_blocks[-1] < trajectory.saved_blocks[after][0]


class TestTrajectoryDataclass:
    def test_fields_aligned(self):
        trajectory = make_model(ConstantWorkload(2.0)).simulate(5.0, n_points=10)
        assert isinstance(trajectory, Trajectory)
        n = trajectory.times.shape[0]
        for name in (
            "demand",
            "occupancy",
            "empty_fraction",
            "collection_rate",
            "saved_blocks",
        ):
            assert getattr(trajectory, name).shape == (n,)
