"""Tests for the chaos layer: sampler, monitors, mutants, shrinker, CLI."""

import json

import pytest

from repro.chaos import (
    CHAOS_CAMPAIGN,
    InvariantViolation,
    MonitorSuite,
    MUTANTS,
    PlanSpace,
    TrialConfig,
    TrialOutcome,
    apply_mutant,
    run_trial,
    runtime_monitors,
    sample_trial,
    shrink_trial,
    write_repro,
)
from repro.chaos.campaign import build_chaos_plan, campaign_options
from repro.chaos.cli import chaos_main
from repro.chaos.shrink import load_repro
from repro.core.params import Parameters
from repro.core.peer import Peer
from repro.core.system import CollectionSystem
from repro.experiments.base import QUALITY_FAST, budget_for
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


def small_params(**overrides):
    defaults = dict(
        n_peers=20,
        arrival_rate=3.0,
        gossip_rate=5.0,
        deletion_rate=1.0,
        normalized_capacity=1.0,
        segment_size=3,
        n_servers=2,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


# -- engine probe hook --------------------------------------------------------


class TestEngineProbe:
    def test_probe_fires_every_k_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.set_probe(lambda: fired.append(sim.now), every=3)
        sim.run_until(20.0)
        # 10 events -> probes after events 3, 6, 9
        assert len(fired) == 3

    def test_probe_countdown_survives_run_until_boundaries(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.set_probe(lambda: fired.append(sim.now), every=4)
        for end in (2.5, 5.5, 20.0):  # events split 2 + 3 + 5 across calls
            sim.run_until(end)
        assert len(fired) == 2  # after global events 4 and 8

    def test_probe_interval_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.set_probe(lambda: None, every=0)

    def test_clear_probe(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: None)
        sim.set_probe(lambda: fired.append(1), every=1)
        sim.clear_probe()
        sim.run_until(2.0)
        assert fired == []

    def test_probe_consumes_no_sequence_numbers(self):
        """An installed probe cannot perturb event ordering or times."""

        def drive(with_probe):
            sim = Simulator()
            log = []
            for i in range(20):
                sim.schedule(
                    float(i % 5) + 0.25, lambda i=i: log.append((sim.now, i))
                )
            if with_probe:
                sim.set_probe(lambda: None, every=2)
            sim.run_until(10.0)
            return log

        assert drive(False) == drive(True)


# -- plan-space sampler -------------------------------------------------------


class TestSampler:
    def test_same_inputs_same_trial(self):
        a = sample_trial(42, 7)
        b = sample_trial(42, 7)
        assert a.to_json() == b.to_json()

    def test_different_trials_differ(self):
        assert sample_trial(42, 0).to_json() != sample_trial(42, 1).to_json()

    def test_trials_are_independent_of_each_other(self):
        """Trial i never depends on trials 0..i-1 (own substream)."""
        assert sample_trial(42, 5).to_json() == sample_trial(42, 5).to_json()

    def test_sampled_configs_are_valid(self):
        for trial_id in range(60):
            config = sample_trial(3, trial_id)
            params = config.build_params()  # re-validates everything
            assert params.n_peers >= 1
            assert config.duration > 0

    def test_space_reaches_extreme_corners(self):
        """Over many draws the space exercises its declared corners."""
        space = PlanSpace()
        saw_total_loss = saw_tight_buffer = saw_total_burst = False
        saw_window_at_zero = saw_rlnc = False
        for trial_id in range(120):
            config = sample_trial(5, trial_id, space=space)
            plan = config.plan
            if plan.get("gossip_loss_rate") == 1.0 or plan.get("pull_loss_rate") == 1.0:
                saw_total_loss = True
            if plan.get("burst_fraction") == 1.0:
                saw_total_burst = True
            if any(w[0] == 0.0 for w in plan.get("outage_windows", [])):
                saw_window_at_zero = True
            if config.params.get("buffer_capacity") == config.params["segment_size"]:
                saw_tight_buffer = True
            if config.params.get("mode") == "rlnc":
                saw_rlnc = True
        assert saw_total_loss and saw_tight_buffer and saw_total_burst
        assert saw_window_at_zero and saw_rlnc

    def test_config_json_round_trip(self):
        config = sample_trial(9, 3, mutant="buffer-cap-off-by-one")
        clone = TrialConfig.from_json(
            json.loads(json.dumps(config.to_json()))
        )
        assert clone == config

    def test_negative_trial_id_rejected(self):
        with pytest.raises(ValueError):
            sample_trial(1, -1)


# -- invariant monitors -------------------------------------------------------


class TestMonitors:
    def test_clean_run_passes_all_monitors(self):
        system = CollectionSystem(small_params(), seed=4)
        suite = MonitorSuite(system, every=32)
        with suite:
            system.run(1.0, 3.0)
            suite.check_now()
        assert suite.checks_run > 1

    def test_violation_is_assertion_error(self):
        violation = InvariantViolation("buffer-cap", "boom")
        assert isinstance(violation, AssertionError)
        assert violation.monitor == "buffer-cap"
        assert "buffer-cap" in str(violation)

    def test_monitor_detects_metric_drift(self):
        """Corrupting the tracked block metric trips block-conservation."""
        system = CollectionSystem(small_params(), seed=4)
        system.run(1.0, 2.0)
        system.metrics.total_blocks.add(system.now, 5)
        with pytest.raises(InvariantViolation) as exc:
            system.consistency_check()
        assert exc.value.monitor == "block-conservation"

    def test_monitor_detects_buffer_overflow(self):
        system = CollectionSystem(small_params(), seed=4)
        system.run(1.0, 2.0)
        peer = system.peers[0]
        peer.capacity = 0  # simulate a cap the buffer already exceeds
        suite = MonitorSuite(system, every=1)
        if peer.block_count == 0:
            pytest.skip("peer 0 drained in this run")
        with pytest.raises(InvariantViolation) as exc:
            suite.check_now()
        assert exc.value.monitor == "buffer-cap"

    def test_cadence_validated(self):
        system = CollectionSystem(small_params(), seed=4)
        with pytest.raises(ValueError):
            MonitorSuite(system, every=0)

    def test_monitored_run_is_bitwise_neutral(self):
        """Installing the full suite never changes a single event."""

        def trace(monitored):
            tracer = Tracer()
            system = CollectionSystem(
                small_params(mode="rlnc", payload_bytes=8, mean_lifetime=6.0),
                seed=11,
                tracer=tracer,
            )
            originals = system.record_payloads()
            if monitored:
                suite = MonitorSuite(
                    system,
                    every=5,
                    monitors=runtime_monitors(system, originals),
                )
                with suite:
                    system.run(1.0, 4.0)
                    suite.check_now()
            else:
                system.run(1.0, 4.0)
            return [event.as_dict() for event in tracer.events]

        baseline = trace(False)
        assert trace(True) == baseline
        assert len(baseline) > 100

    def test_record_payloads_requires_payload_mode(self):
        system = CollectionSystem(small_params(), seed=1)
        with pytest.raises(ValueError):
            system.record_payloads()

    def test_record_payloads_archives_originals(self):
        system = CollectionSystem(
            small_params(mode="rlnc", payload_bytes=4), seed=2
        )
        originals = system.record_payloads()
        system.run(0.5, 1.5)
        assert originals  # injections happened and were recorded
        for rows in originals.values():
            assert rows.shape[1] == 4


# -- seeded mutants -----------------------------------------------------------


class TestMutants:
    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_mutant_caught_by_expected_monitor(self, name):
        caught = None
        for trial_id in range(25):
            outcome = run_trial(sample_trial(7, trial_id, mutant=name))
            if not outcome.ok:
                caught = outcome
                break
        assert caught is not None, f"mutant {name} survived 25 trials"
        assert caught.monitor == MUTANTS[name].caught_by

    def test_mutant_patch_is_undone(self):
        original = Peer.__dict__["is_full"]
        with apply_mutant("buffer-cap-off-by-one"):
            assert Peer.__dict__["is_full"] is not original
        assert Peer.__dict__["is_full"] is original

    def test_clean_trial_after_mutant_trial_passes(self):
        run_trial(sample_trial(7, 0, mutant="churn-leaks-registry-degree"))
        assert run_trial(sample_trial(7, 0)).ok

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError):
            with apply_mutant("nonexistent-mutant"):
                pass

    def test_none_is_noop(self):
        with apply_mutant(None):
            pass


# -- trial harness ------------------------------------------------------------


class TestHarness:
    def test_clean_trial_outcome(self):
        outcome = run_trial(sample_trial(7, 0))
        assert outcome.ok
        assert outcome.monitor is None
        assert outcome.events > 0
        assert outcome.checks_run > 0

    def test_outcome_json_round_trip(self):
        outcome = run_trial(sample_trial(7, 1))
        clone = TrialOutcome.from_json(
            json.loads(json.dumps(outcome.to_json()))
        )
        assert clone == outcome

    def test_trials_replay_deterministically(self):
        config = sample_trial(7, 2)
        assert run_trial(config).to_json() == run_trial(config).to_json()

    def test_crash_becomes_exception_outcome(self):
        """A trial that raises is a caught failure, not a worker fault."""
        config = sample_trial(7, 0)
        broken = TrialConfig.from_json(
            {**config.to_json(), "params": {**config.params, "n_peers": 1,
                                           "n_servers": 5}}
        )
        outcome = run_trial(broken)
        assert not outcome.ok
        assert outcome.monitor == "exception"


# -- shrinker and repro files -------------------------------------------------


class TestShrink:
    @pytest.fixture(scope="class")
    def failing(self):
        config = sample_trial(7, 0, mutant="buffer-cap-off-by-one")
        outcome = run_trial(config)
        assert not outcome.ok and outcome.monitor == "buffer-cap"
        return config, outcome

    def test_shrink_preserves_failure_and_reduces(self, failing):
        config, outcome = failing
        result = shrink_trial(config, outcome.monitor, max_probes=48)
        assert result.reductions > 0
        minimized = result.minimized_config()
        assert minimized.params["n_peers"] <= config.params["n_peers"]
        assert minimized.duration <= config.duration
        replayed = run_trial(minimized)
        assert not replayed.ok
        assert replayed.monitor == outcome.monitor

    def test_shrink_rejects_passing_baseline(self):
        with pytest.raises(ValueError):
            shrink_trial(sample_trial(7, 0), "buffer-cap", max_probes=8)

    def test_repro_round_trip_and_deterministic_replay(self, failing, tmp_path):
        config, outcome = failing
        result = shrink_trial(config, outcome.monitor, max_probes=32)
        path = write_repro(
            tmp_path / "repro.json", outcome, shrink=result, campaign_seed=7
        )
        loaded_config, monitor, payload = load_repro(path)
        assert monitor == outcome.monitor
        assert payload["format"] == "repro-chaos-v1"
        first = run_trial(loaded_config)
        second = run_trial(loaded_config)
        assert not first.ok and first.monitor == monitor
        assert first.to_json() == second.to_json()

    def test_repro_refuses_passing_trial(self, tmp_path):
        outcome = run_trial(sample_trial(7, 0))
        with pytest.raises(ValueError):
            write_repro(tmp_path / "repro.json", outcome)

    def test_load_repro_rejects_other_formats(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_repro(path)


# -- campaign plan and runner integration -------------------------------------


class TestCampaign:
    def test_plan_runs_serially_and_merges(self):
        plan = build_chaos_plan(
            CHAOS_CAMPAIGN,
            budget_for(QUALITY_FAST),
            campaign_options(budget=3, seed=7),
        )
        assert plan.task_ids() == ["trial=00000", "trial=00001", "trial=00002"]
        result = plan.run_serial()
        assert result.series["ok"] == [1.0, 1.0, 1.0]
        assert any("0/3 trials violated" in note for note in result.notes)

    def test_mutant_campaign_reports_violations(self):
        plan = build_chaos_plan(
            CHAOS_CAMPAIGN,
            budget_for(QUALITY_FAST),
            campaign_options(
                budget=2, seed=7, mutant="churn-leaks-registry-degree"
            ),
        )
        result = plan.run_serial()
        assert 0.0 in result.series["ok"]
        assert any("block-conservation" in note for note in result.notes)

    def test_bad_options_rejected(self):
        budget = budget_for(QUALITY_FAST)
        with pytest.raises(ValueError):
            build_chaos_plan(CHAOS_CAMPAIGN, budget, {"budget": 0})
        with pytest.raises(ValueError):
            build_chaos_plan(
                CHAOS_CAMPAIGN, budget, {"budget": 1, "mutant": "bogus"}
            )
        with pytest.raises(ValueError):
            build_chaos_plan("chaos-unknown", budget, {"budget": 1})

    def test_spec_routes_chaos_prefix(self):
        from repro.runner import RunSpec

        spec = RunSpec.create(
            CHAOS_CAMPAIGN,
            QUALITY_FAST,
            budget_for(QUALITY_FAST),
            campaign_options(budget=2, seed=7),
        )
        plan = spec.build_plan()
        assert plan.experiment == CHAOS_CAMPAIGN
        assert len(plan.tasks) == 2


# -- CLI ----------------------------------------------------------------------


class TestChaosCli:
    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        status = chaos_main(
            [
                "run", "--budget", "3", "--seed", "7",
                "--runs-dir", str(tmp_path), "--no-progress",
            ]
        )
        assert status == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_mutant_campaign_exits_one_and_writes_repros(
        self, tmp_path, capsys
    ):
        status = chaos_main(
            [
                "run", "--budget", "2", "--seed", "7",
                "--mutant", "churn-leaks-registry-degree",
                "--max-shrink", "1", "--shrink-probes", "16",
                "--runs-dir", str(tmp_path), "--no-progress",
            ]
        )
        assert status == 1
        repros = sorted(tmp_path.glob("*/repro-*.json"))
        assert repros
        capsys.readouterr()
        assert chaos_main(["replay", str(repros[0])]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_replay_of_fixed_code_fails_closed(self, tmp_path, capsys):
        """A repro whose bug is 'fixed' (mutant stripped) exits non-zero."""
        config = sample_trial(7, 0, mutant="buffer-cap-off-by-one")
        outcome = run_trial(config)
        path = write_repro(tmp_path / "repro.json", outcome)
        payload = json.loads(path.read_text())
        payload["config"]["mutant"] = None  # "fix" the bug
        path.write_text(json.dumps(payload))
        assert chaos_main(["replay", str(path)]) == 1
        assert "NOT reproduced" in capsys.readouterr().err

    def test_resume_round_trip(self, tmp_path, capsys):
        status = chaos_main(
            [
                "run", "--budget", "4", "--seed", "7", "--stop-after", "2",
                "--run-id", "camp", "--runs-dir", str(tmp_path),
                "--no-progress",
            ]
        )
        assert status == 3  # checkpointed
        capsys.readouterr()
        status = chaos_main(
            [
                "run", "--resume", "camp", "--runs-dir", str(tmp_path),
                "--no-progress",
            ]
        )
        assert status == 0
        assert "4 trials" in capsys.readouterr().out

    def test_campaign_parallel_matches_serial(self, tmp_path):
        """2-worker campaign journal merges to the serial result."""
        from repro.runner import RunSpec, execute_run

        spec = RunSpec.create(
            CHAOS_CAMPAIGN,
            QUALITY_FAST,
            budget_for(QUALITY_FAST),
            campaign_options(budget=4, seed=11),
        )
        outcome = execute_run(
            spec, workers=2, runs_dir=tmp_path, run_id="par"
        )
        assert outcome.complete
        serial = spec.build_plan().run_serial()
        assert outcome.result is not None
        assert outcome.result.to_json() == serial.to_json()
