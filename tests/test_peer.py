"""Tests for the peer buffer model."""

import random

import numpy as np
import pytest

from repro.coding.block import CodedBlock, SegmentDescriptor, make_source_blocks
from repro.core.peer import Peer, SegmentHolding


def descriptor(segment_id=0, size=4):
    return SegmentDescriptor(
        segment_id=segment_id, source_peer=0, size=size, injected_at=0.0
    )


def abstract_block(segment_id=0, size=4):
    return CodedBlock(segment=descriptor(segment_id, size))


class TestSegmentHolding:
    def test_abstract_independence_caps_at_size(self):
        holding = SegmentHolding(descriptor(size=3))
        for _ in range(5):
            holding.add(abstract_block(size=3))
        assert holding.block_count == 5
        assert holding.independent_count() == 3

    def test_rlnc_independence_is_true_rank(self):
        desc = descriptor(size=3)
        holding = SegmentHolding(desc)
        blocks = make_source_blocks(desc)
        holding.add(blocks[0])
        # a scaled copy of block 0 adds no rank
        copy = CodedBlock(segment=desc, coefficients=blocks[0].coefficients * 0 + blocks[0].coefficients)
        holding.add(copy)
        assert holding.block_count == 2
        assert holding.independent_count() == 1
        holding.add(blocks[1])
        assert holding.independent_count() == 2

    def test_rank_cache_invalidated_on_removal(self):
        desc = descriptor(size=2)
        holding = SegmentHolding(desc)
        blocks = make_source_blocks(desc)
        holding.add(blocks[0])
        holding.add(blocks[1])
        assert holding.independent_count() == 2
        holding.remove(blocks[1])
        assert holding.independent_count() == 1

    def test_wrong_segment_rejected(self):
        holding = SegmentHolding(descriptor(segment_id=0))
        with pytest.raises(ValueError):
            holding.add(abstract_block(segment_id=1))

    def test_remove_absent_returns_false(self):
        holding = SegmentHolding(descriptor())
        assert not holding.remove(abstract_block())

    def test_encode_from_empty_raises(self):
        with pytest.raises(ValueError):
            SegmentHolding(descriptor()).make_coded_block(
                np.random.default_rng(0), now=0.0
            )

    def test_abstract_encode_emits_bare_block(self):
        holding = SegmentHolding(descriptor())
        holding.add(abstract_block())
        out = holding.make_coded_block(np.random.default_rng(0), now=3.0)
        assert not out.is_coded
        assert out.created_at == 3.0

    def test_rlnc_encode_emits_span_block(self):
        desc = descriptor(size=3)
        holding = SegmentHolding(desc)
        for block in make_source_blocks(desc)[:2]:
            holding.add(block)
        out = holding.make_coded_block(np.random.default_rng(1), now=0.0)
        assert out.is_coded
        assert out.coefficients[2] == 0  # not in span of e0,e1


class TestPeer:
    def test_initial_state(self):
        peer = Peer(slot=3, capacity=10)
        assert peer.is_empty
        assert not peer.is_full
        assert peer.free_space == 10
        assert peer.block_count == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Peer(slot=0, capacity=0)

    def test_add_and_remove(self):
        peer = Peer(slot=0, capacity=4)
        block = abstract_block()
        peer.add_block(block)
        assert peer.block_count == 1
        assert peer.holds_segment(0)
        assert peer.remove_block(block)
        assert peer.is_empty
        assert not peer.holds_segment(0)
        assert not peer.remove_block(block)

    def test_full_buffer_rejects(self):
        peer = Peer(slot=0, capacity=2)
        peer.add_block(abstract_block(segment_id=0))
        peer.add_block(abstract_block(segment_id=1))
        assert peer.is_full
        with pytest.raises(ValueError):
            peer.add_block(abstract_block(segment_id=2))

    def test_can_inject(self):
        peer = Peer(slot=0, capacity=10)
        assert peer.can_inject(10)
        peer.add_block(abstract_block())
        assert not peer.can_inject(10)
        assert peer.can_inject(9)

    def test_needs_segment_until_s_blocks(self):
        peer = Peer(slot=0, capacity=20)
        for _ in range(3):
            assert peer.needs_segment(0, 4)
            peer.add_block(abstract_block(segment_id=0, size=4))
        peer.add_block(abstract_block(segment_id=0, size=4))
        assert not peer.needs_segment(0, 4)
        assert peer.needs_segment(1, 4)  # a different segment

    def test_needs_segment_false_when_full(self):
        peer = Peer(slot=0, capacity=1)
        peer.add_block(abstract_block(segment_id=0))
        assert not peer.needs_segment(1, 4)

    def test_sample_segment_uniform_over_distinct(self):
        peer = Peer(slot=0, capacity=100)
        # segment 0: 9 blocks; segment 1: 1 block
        for _ in range(9):
            peer.add_block(abstract_block(segment_id=0, size=10))
        peer.add_block(abstract_block(segment_id=1, size=10))
        rng = random.Random(0)
        draws = [peer.sample_segment(rng) for _ in range(2000)]
        share = draws.count(1) / len(draws)
        assert abs(share - 0.5) < 0.05  # uniform over {0, 1}

    def test_sample_segment_proportional_over_blocks(self):
        peer = Peer(slot=0, capacity=100)
        for _ in range(9):
            peer.add_block(abstract_block(segment_id=0, size=10))
        peer.add_block(abstract_block(segment_id=1, size=10))
        rng = random.Random(0)
        draws = [peer.sample_segment_proportional(rng) for _ in range(2000)]
        share = draws.count(1) / len(draws)
        assert abs(share - 0.1) < 0.03  # proportional to multiplicity

    def test_degree_of(self):
        peer = Peer(slot=0, capacity=10)
        peer.add_block(abstract_block(segment_id=0))
        peer.add_block(abstract_block(segment_id=0))
        assert peer.degree_of(0) == 2
        assert peer.degree_of(9) == 0

    def test_all_blocks(self):
        peer = Peer(slot=0, capacity=10)
        blocks = [abstract_block(segment_id=i) for i in range(3)]
        for block in blocks:
            peer.add_block(block)
        assert set(id(b) for b in peer.all_blocks()) == set(id(b) for b in blocks)

    def test_held_segments_tracks_distinct(self):
        peer = Peer(slot=0, capacity=10)
        a = abstract_block(segment_id=0)
        b = abstract_block(segment_id=0)
        peer.add_block(a)
        peer.add_block(b)
        assert len(peer.held_segments) == 1
        peer.remove_block(a)
        assert len(peer.held_segments) == 1
        peer.remove_block(b)
        assert len(peer.held_segments) == 0

    def test_repr(self):
        assert "slot=2" in repr(Peer(slot=2, capacity=5))
