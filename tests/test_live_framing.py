"""Frame codec fuzz/property tests (satellite of the live runtime).

The contract under test: any well-formed frame round-trips bytes-exactly
through encode -> (arbitrarily chunked) decode, and any malformed input —
truncated, oversized, or garbage — raises a clean :class:`FrameError`
subclass, never hangs a reader and never escapes as an IndexError /
UnicodeDecodeError / struct.error from the guts.
"""

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.live.framing import (
    Frame,
    FrameDecoder,
    FrameError,
    FrameGarbage,
    FrameTooLarge,
    FrameTruncated,
    MAGIC,
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    PREFIX_SIZE,
    encode_frame,
    read_frame,
    write_frame,
)

# JSON-representable header values (what the wire layer actually sends).
_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
_HEADERS = st.dictionaries(
    st.text(min_size=1, max_size=16),
    st.one_of(_SCALARS, st.lists(_SCALARS, max_size=4)),
    max_size=8,
).map(lambda d: {**d, "type": "fuzz"})

_PAYLOADS = st.binary(max_size=4096)


class TestRoundTrip:
    @given(header=_HEADERS, payload=_PAYLOADS)
    @settings(max_examples=120)
    def test_encode_decode_round_trip(self, header, payload):
        blob = encode_frame(header, payload)
        frames = FrameDecoder().feed(blob)
        assert len(frames) == 1
        assert frames[0].header == header
        assert frames[0].payload == payload
        assert frames[0].type == "fuzz"

    @given(
        items=st.lists(
            st.tuples(_HEADERS, _PAYLOADS), min_size=1, max_size=6
        ),
        chunk=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60)
    def test_chunked_feed_reassembles_every_frame(self, items, chunk):
        blob = b"".join(encode_frame(h, p) for h, p in items)
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(blob), chunk):
            out.extend(decoder.feed(blob[start : start + chunk]))
        decoder.finish()  # no partial frame may remain
        assert [(f.header, f.payload) for f in out] == items

    def test_empty_payload_and_empty_header_fields(self):
        blob = encode_frame({"type": "x"}, b"")
        (frame,) = FrameDecoder().feed(blob)
        assert frame.payload == b""
        assert frame.type == "x"


class TestMalformedInput:
    @given(prefix_len=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40)
    def test_truncated_frame_raises_on_finish_never_hangs(self, prefix_len):
        blob = encode_frame({"type": "t"}, b"x" * 128)
        decoder = FrameDecoder()
        assert decoder.feed(blob[: min(prefix_len, len(blob) - 1)]) == []
        with pytest.raises(FrameTruncated):
            decoder.finish()

    @given(junk=st.binary(min_size=1, max_size=64))
    @settings(max_examples=80)
    def test_garbage_bytes_raise_clean_errors(self, junk):
        decoder = FrameDecoder()
        try:
            decoder.feed(junk)
            decoder.finish()
        except FrameError:
            pass  # any FrameError subclass is a clean rejection

    def test_bad_magic_rejected_before_full_prefix_arrives(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameGarbage):
            decoder.feed(b"HTTP")

    def test_header_json_garbage(self):
        good = encode_frame({"type": "x"}, b"")
        corrupt = bytearray(good)
        corrupt[PREFIX_SIZE] = 0xFF  # first header byte -> invalid JSON
        with pytest.raises(FrameGarbage):
            FrameDecoder().feed(bytes(corrupt))

    def test_header_must_be_a_json_object(self):
        import json
        import struct

        body = json.dumps(["not", "a", "dict"]).encode()
        blob = MAGIC + struct.pack(">II", len(body), 0) + body
        with pytest.raises(FrameGarbage):
            FrameDecoder().feed(blob)

    def test_oversized_header_rejected(self):
        import struct

        blob = MAGIC + struct.pack(">II", MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(FrameTooLarge):
            FrameDecoder().feed(blob)

    def test_oversized_payload_rejected(self):
        import struct

        blob = MAGIC + struct.pack(">II", 2, MAX_PAYLOAD_BYTES + 1)
        with pytest.raises(FrameTooLarge):
            FrameDecoder().feed(blob)

    def test_zero_length_header_rejected(self):
        import struct

        blob = MAGIC + struct.pack(">II", 0, 0)
        with pytest.raises(FrameGarbage):
            FrameDecoder().feed(blob)

    def test_decoder_poisons_itself_after_an_error(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameGarbage):
            decoder.feed(b"XXXXXXXXXXXX")
        with pytest.raises(FrameError):
            decoder.feed(encode_frame({"type": "x"}, b""))


class TestStreamReader:
    """read_frame against an in-memory StreamReader (no sockets)."""

    @staticmethod
    def _reader(*blobs: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        for blob in blobs:
            reader.feed_data(blob)
        if eof:
            reader.feed_eof()
        return reader

    def test_reads_frames_then_clean_eof(self):
        async def scenario():
            blob = encode_frame({"type": "a"}, b"1") + encode_frame(
                {"type": "b"}, b"22"
            )
            reader = self._reader(blob)
            first = await read_frame(reader)
            second = await read_frame(reader)
            assert first is not None and first.type == "a"
            assert second is not None and second.payload == b"22"
            assert await read_frame(reader) is None  # clean EOF

        asyncio.run(scenario())

    @given(cut=st.integers(min_value=1, max_value=30))
    @settings(max_examples=30)
    def test_mid_frame_eof_raises_truncated(self, cut):
        async def scenario():
            blob = encode_frame({"type": "t"}, b"payload")
            reader = self._reader(blob[: min(cut, len(blob) - 1)])
            with pytest.raises(FrameTruncated):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_garbage_magic_raises_garbage(self):
        async def scenario():
            reader = self._reader(b"NOPE" + b"\0" * 64)
            with pytest.raises(FrameGarbage):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_write_then_read_over_a_socket_pair(self):
        async def scenario():
            server_conn = asyncio.get_running_loop().create_future()

            async def on_client(reader, writer):
                server_conn.set_result((reader, writer))

            from repro.live.ports import close_writer, start_server

            server, port = await start_server(on_client)
            creader, cwriter = await asyncio.open_connection(
                "127.0.0.1", port
            )
            sreader, swriter = await server_conn
            await write_frame(cwriter, {"type": "ping", "n": 7}, b"\x01\x02")
            frame = await read_frame(sreader)
            assert frame is not None
            assert frame.header == {"type": "ping", "n": 7}
            assert frame.payload == b"\x01\x02"
            await close_writer(cwriter)
            assert await read_frame(sreader) is None
            await close_writer(swriter)
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestFrameValue:
    def test_frame_type_of_untyped_header_is_empty(self):
        assert Frame(header={}, payload=b"").type == ""

    def test_pending_bytes_visible_mid_frame(self):
        decoder = FrameDecoder()
        blob = encode_frame({"type": "x"}, b"abc")
        decoder.feed(blob[:6])
        assert decoder.pending_bytes == 6
