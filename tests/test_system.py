"""Integration tests for the full indirect collection system."""

import math

import pytest

from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.sim.topology import CompleteTopology, random_regular_topology
from repro.stats.workload import ConstantWorkload, ShutoffWorkload


def params(**overrides):
    defaults = dict(
        n_peers=40,
        arrival_rate=6.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=3.0,
        segment_size=4,
        n_servers=2,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


class TestConstruction:
    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CollectionSystem(params(), topology=CompleteTopology(5))

    def test_payload_provider_requires_rlnc(self):
        with pytest.raises(ValueError):
            CollectionSystem(params(), payload_provider=lambda d: None)

    def test_initial_network_empty(self):
        system = CollectionSystem(params(), seed=1)
        assert system.total_blocks_in_network() == 0
        assert system.empty_peer_count() == 40
        assert system.now == 0.0


class TestInvariants:
    def test_consistency_through_time(self):
        system = CollectionSystem(params(), seed=2)
        for _ in range(5):
            system.run_until(system.now + 2.0)
            system.consistency_check()

    def test_consistency_under_churn(self):
        system = CollectionSystem(params(mean_lifetime=1.5), seed=3)
        for _ in range(5):
            system.run_until(system.now + 2.0)
            system.consistency_check()

    def test_consistency_in_rlnc_mode(self):
        system = CollectionSystem(
            params(n_peers=20, mode="rlnc", segment_size=3, arrival_rate=3.0),
            seed=4,
        )
        system.run_until(6.0)
        system.consistency_check()

    def test_buffer_cap_never_exceeded(self):
        system = CollectionSystem(params(buffer_capacity=12), seed=5)
        for _ in range(4):
            system.run_until(system.now + 2.0)
            assert all(
                peer.block_count <= 12 for peer in system.peers
            )

    def test_degree_histograms_sum_correctly(self):
        system = CollectionSystem(params(), seed=6)
        system.run_until(8.0)
        peer_hist = system.peer_degree_histogram()
        assert sum(peer_hist.values()) == 40
        edge_count_from_peers = sum(d * c for d, c in peer_hist.items())
        seg_hist = system.segment_degree_histogram()
        edge_count_from_segments = sum(d * c for d, c in seg_hist.items())
        assert edge_count_from_peers == edge_count_from_segments

    def test_rescaled_degrees_sum_to_one(self):
        system = CollectionSystem(params(), seed=7)
        system.run_until(5.0)
        z = system.rescaled_peer_degrees()
        assert sum(z) == pytest.approx(1.0)


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = CollectionSystem(params(), seed=11).run(4.0, 6.0)
        b = CollectionSystem(params(), seed=11).run(4.0, 6.0)
        assert a == b

    def test_different_seed_different_results(self):
        a = CollectionSystem(params(), seed=11).run(4.0, 6.0)
        b = CollectionSystem(params(), seed=12).run(4.0, 6.0)
        assert a != b

    def test_rlnc_mode_deterministic(self):
        config = params(n_peers=16, mode="rlnc", segment_size=3, arrival_rate=3.0)
        a = CollectionSystem(config, seed=13).run(3.0, 4.0)
        b = CollectionSystem(config, seed=13).run(3.0, 4.0)
        assert a == b


class TestSteadyStateAgainstTheory:
    def test_occupancy_matches_theorem1(self):
        # lambda=6, mu=8, gamma=1 -> rho ~ (1-z0)*8 + 6 ~ 14 (z0 ~ 0)
        system = CollectionSystem(params(n_peers=80), seed=21)
        report = system.run(10.0, 15.0)
        assert report.mean_buffer_occupancy == pytest.approx(14.0, rel=0.1)

    def test_throughput_below_capacity_and_demand(self):
        system = CollectionSystem(params(n_peers=80), seed=22)
        report = system.run(10.0, 15.0)
        assert 0.0 < report.normalized_throughput <= 3.0 / 6.0 + 0.05

    def test_gossip_disabled_means_no_transfers(self):
        system = CollectionSystem(params(gossip_rate=0.0), seed=23)
        report = system.run(4.0, 6.0)
        assert report.gossip_transfers == 0
        # occupancy reduces to lambda/gamma
        assert report.mean_buffer_occupancy == pytest.approx(6.0, rel=0.15)


class TestChurnEffects:
    def test_departures_counted(self):
        system = CollectionSystem(params(mean_lifetime=2.0), seed=31)
        report = system.run(2.0, 8.0)
        # expected departures in window: 40 * 8 / 2 = 160
        assert 100 < report.departures < 230
        assert report.blocks_lost_to_churn > 0

    def test_generations_advance(self):
        system = CollectionSystem(params(mean_lifetime=1.0), seed=32)
        system.run_until(6.0)
        assert any(peer.generation > 0 for peer in system.peers)

    def test_static_network_has_no_departures(self):
        system = CollectionSystem(params(), seed=33)
        report = system.run(2.0, 6.0)
        assert report.departures == 0
        assert report.blocks_lost_to_churn == 0


class TestWorkloads:
    def test_shutoff_leaves_delayed_delivery_reserve(self):
        """When demand stops, the buffered pool shrinks but keeps serving —
        the Theorem 4 "future delivery" behavior.  (The pool does NOT drain
        to zero quickly: gossip replication nearly balances TTL deletion, so
        a self-sustaining reserve persists for a long while.)"""
        system = CollectionSystem(
            params(), seed=41, workload=ShutoffWorkload(6.0, cutoff=5.0)
        )
        system.run_until(5.0)
        at_cutoff = system.total_blocks_in_network()
        assert at_cutoff > 0
        pulls_at_cutoff = system.metrics.useful_pulls.total
        system.run_until(25.0)
        # the pool decays below its driven level...
        assert system.total_blocks_in_network() < at_cutoff
        # ...while the servers keep collecting from it (delayed delivery)
        assert system.metrics.useful_pulls.total > pulls_at_cutoff

    def test_constant_workload_equals_default(self):
        """A ConstantWorkload(lam) drives the same average injection rate as
        the built-in Poisson injection."""
        base = CollectionSystem(params(n_peers=60), seed=42).run(5.0, 10.0)
        wrapped = CollectionSystem(
            params(n_peers=60), seed=43, workload=ConstantWorkload(6.0)
        ).run(5.0, 10.0)
        assert wrapped.injected_blocks == pytest.approx(
            base.injected_blocks, rel=0.15
        )


class TestRlncPayloads:
    def test_end_to_end_payload_recovery(self):
        config = params(
            n_peers=20,
            arrival_rate=2.0,
            segment_size=3,
            normalized_capacity=2.0,
            mode="rlnc",
            payload_bytes=16,
        )
        system = CollectionSystem(config, seed=51)
        system.run_until(10.0)
        assert system.collected_data, "no segments decoded"
        for descriptor, payloads in system.collected_data.values():
            assert payloads.shape == (3, 16)

    def test_custom_payload_provider_roundtrip(self):
        import numpy as np

        def provider(descriptor):
            base = descriptor.segment_id % 251
            return np.full((descriptor.size, 8), base, dtype=np.uint8)

        config = params(
            n_peers=20,
            arrival_rate=2.0,
            segment_size=2,
            normalized_capacity=2.0,
            mode="rlnc",
            payload_bytes=8,
        )
        system = CollectionSystem(config, seed=52, payload_provider=provider)
        system.run_until(10.0)
        assert system.collected_data
        for descriptor, payloads in system.collected_data.values():
            expected = descriptor.segment_id % 251
            assert (payloads == expected).all()


class TestPostmortem:
    def test_sums_match_global_counters(self):
        system = CollectionSystem(params(mean_lifetime=2.0), seed=61)
        system.run_until(8.0)
        report = system.postmortem()
        total_injected = report.departed.injected + report.live.injected
        assert total_injected == sum(system.injected_by_source.values())
        total_delivered = report.departed.delivered + report.live.delivered
        assert total_delivered == sum(system.delivered_by_source.values())

    def test_departed_bucket_empty_without_churn(self):
        system = CollectionSystem(params(), seed=62)
        system.run_until(5.0)
        report = system.postmortem()
        assert report.departed.injected == 0
        assert report.live.injected > 0

    def test_fractions_bounded(self):
        system = CollectionSystem(params(mean_lifetime=2.0), seed=63)
        system.run_until(8.0)
        report = system.postmortem()
        for bucket in (report.departed, report.live):
            assert 0.0 <= bucket.delivered_fraction <= 1.0
            assert bucket.delivered <= bucket.collected


class TestTopologies:
    def test_sparse_overlay_still_collects(self):
        import random as random_module

        topo = random_regular_topology(40, 6, random_module.Random(5))
        system = CollectionSystem(params(), seed=71, topology=topo)
        report = system.run(5.0, 10.0)
        assert report.useful_pulls > 0
        assert report.gossip_transfers > 0

    def test_sparse_overlay_close_to_meanfield(self):
        """A moderately dense random-regular overlay should be within ~15%
        of the complete graph on throughput (mean-field robustness)."""
        import random as random_module

        dense = CollectionSystem(params(n_peers=60), seed=72).run(8.0, 10.0)
        topo = random_regular_topology(60, 10, random_module.Random(6))
        sparse = CollectionSystem(params(n_peers=60), seed=72, topology=topo).run(
            8.0, 10.0
        )
        assert sparse.normalized_throughput == pytest.approx(
            dense.normalized_throughput, rel=0.2
        )


class TestGossipLatency:
    def test_zero_latency_identical_to_default(self):
        base = CollectionSystem(params(), seed=91).run(4.0, 6.0)
        explicit = CollectionSystem(params(gossip_latency=0.0), seed=91).run(4.0, 6.0)
        assert base == explicit

    def test_latency_keeps_invariants(self):
        system = CollectionSystem(
            params(gossip_latency=0.2, mean_lifetime=3.0), seed=92
        )
        for _ in range(4):
            system.run_until(system.now + 2.0)
            system.consistency_check()

    def test_large_latency_wastes_transmissions(self):
        report = CollectionSystem(params(gossip_latency=1.0), seed=93).run(
            4.0, 8.0
        )
        assert report.gossip_undeliverable > 0

    def test_small_latency_barely_changes_throughput(self):
        instant = CollectionSystem(params(n_peers=80), seed=94).run(8.0, 10.0)
        delayed = CollectionSystem(
            params(n_peers=80, gossip_latency=0.02), seed=94
        ).run(8.0, 10.0)
        assert delayed.normalized_throughput == pytest.approx(
            instant.normalized_throughput, rel=0.1
        )

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            params(gossip_latency=-0.1)


class TestRunApi:
    def test_invalid_run_arguments(self):
        system = CollectionSystem(params(), seed=81)
        with pytest.raises(ValueError):
            system.run(-1.0, 5.0)
        with pytest.raises(ValueError):
            system.run(1.0, 0.0)
        with pytest.raises(ValueError):
            system.run_phase(0.0)

    def test_phases_are_contiguous(self):
        system = CollectionSystem(params(), seed=82)
        first = system.run_phase(3.0)
        assert system.now == 3.0
        second = system.run_phase(2.0)
        assert system.now == 5.0
        assert first.window == pytest.approx(3.0)
        assert second.window == pytest.approx(2.0)
