"""Tests for the direct-pull and push baselines."""

import pytest

from repro.core.baseline import DirectCollectionSystem
from repro.core.params import Parameters
from repro.core.push import PushCollectionSystem
from repro.stats.workload import FlashCrowdWorkload


def params(**overrides):
    defaults = dict(
        n_peers=40,
        arrival_rate=4.0,
        gossip_rate=8.0,  # ignored by both baselines
        deletion_rate=0.5,
        normalized_capacity=3.0,
        segment_size=4,  # ignored by both baselines
        n_servers=2,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


class TestDirectPull:
    def test_every_delivery_is_useful(self):
        system = DirectCollectionSystem(params(), seed=1)
        report = system.run(3.0, 6.0)
        assert report.pulls == report.useful_pulls + report.idle_pulls
        assert report.redundant_pulls == 0
        assert report.efficiency > 0

    def test_deterministic(self):
        a = DirectCollectionSystem(params(), seed=2).run(2.0, 5.0)
        b = DirectCollectionSystem(params(), seed=2).run(2.0, 5.0)
        assert a == b

    def test_throughput_capped_by_capacity(self):
        # demand 4 > capacity 3: delivery rate ~ c = 3 per peer
        system = DirectCollectionSystem(params(n_peers=80), seed=3)
        report = system.run(6.0, 10.0)
        assert report.normalized_throughput == pytest.approx(3.0 / 4.0, rel=0.1)

    def test_capacity_exceeds_demand_delivers_everything(self):
        system = DirectCollectionSystem(
            params(normalized_capacity=12.0, deletion_rate=0.2), seed=4
        )
        report = system.run(6.0, 10.0)
        assert report.normalized_throughput == pytest.approx(1.0, rel=0.1)

    def test_ttl_loses_data_under_overload(self):
        system = DirectCollectionSystem(
            params(normalized_capacity=1.0, deletion_rate=1.0), seed=5
        )
        report = system.run(5.0, 10.0)
        assert report.blocks_expired > 0
        assert system.lost_to_ttl > 0

    def test_retain_forever_disables_ttl(self):
        system = DirectCollectionSystem(
            params(normalized_capacity=1.0), seed=6, retain_forever=True
        )
        report = system.run(5.0, 10.0)
        assert report.blocks_expired == 0
        assert system.backlog() > 0

    def test_churn_destroys_pending_data(self):
        system = DirectCollectionSystem(
            params(mean_lifetime=1.0, normalized_capacity=1.0), seed=7
        )
        report = system.run(3.0, 6.0)
        assert report.blocks_lost_to_churn > 0
        assert system.lost_to_churn > 0

    def test_blind_mode_wastes_probes_on_empty_peers(self):
        # tiny demand, short retention: most peers are empty most of the time
        config = params(
            arrival_rate=0.2, deletion_rate=4.0, normalized_capacity=2.0
        )
        oracle = DirectCollectionSystem(config, seed=8).run(3.0, 8.0)
        blind = DirectCollectionSystem(config, seed=8, blind=True).run(3.0, 8.0)
        assert blind.idle_pulls > oracle.idle_pulls
        assert blind.useful_pulls <= oracle.useful_pulls

    def test_delay_is_positive(self):
        system = DirectCollectionSystem(params(), seed=9)
        report = system.run(3.0, 8.0)
        assert report.mean_block_delay is not None
        assert report.mean_block_delay > 0

    def test_overflow_counted_when_buffer_tiny(self):
        system = DirectCollectionSystem(
            params(buffer_capacity=4, normalized_capacity=1.0,
                   deletion_rate=0.25),
            seed=10,
        )
        system.run(4.0, 8.0)
        assert system.lost_to_overflow > 0

    def test_postmortem_departed_never_recoverable(self):
        system = DirectCollectionSystem(
            params(mean_lifetime=1.5, normalized_capacity=1.0), seed=11
        )
        system.run_until(8.0)
        report = system.postmortem()
        assert report.departed.injected > 0
        assert report.departed.recoverable == 0
        assert report.departed.delivered <= report.departed.injected

    def test_run_argument_validation(self):
        system = DirectCollectionSystem(params(), seed=12)
        with pytest.raises(ValueError):
            system.run(-1.0, 1.0)
        with pytest.raises(ValueError):
            system.run_phase(0.0)


class TestPush:
    def test_underload_delivers_everything(self):
        system = PushCollectionSystem(
            params(normalized_capacity=12.0), seed=1
        )
        report = system.run(4.0, 10.0)
        assert report.normalized_throughput == pytest.approx(1.0, rel=0.08)
        assert system.loss_fraction() < 0.02

    def test_overload_drops_excess(self):
        # demand 4, capacity 2: about half the uploads must be dropped
        system = PushCollectionSystem(
            params(normalized_capacity=2.0), seed=2
        )
        report = system.run(4.0, 10.0)
        assert report.normalized_throughput == pytest.approx(0.5, rel=0.12)
        assert system.loss_fraction() == pytest.approx(0.5, abs=0.08)

    def test_flash_crowd_burst_is_lost_permanently(self):
        workload = FlashCrowdWorkload(
            base_rate=2.0, burst_start=5.0, burst_end=8.0, multiplier=10.0
        )
        system = PushCollectionSystem(
            params(arrival_rate=2.0, normalized_capacity=4.0),
            seed=3,
            workload=workload,
        )
        steady = system.run_phase(5.0)
        burst = system.run_phase(3.0)
        after = system.run_phase(5.0)
        assert steady.segments_lost == 0 or steady.segments_lost < 10
        assert burst.segments_lost > 100  # burst demand 20 vs capacity 4
        # nothing buffered: the post-burst rate returns to the base demand
        assert after.throughput <= 2.2 * 40

    def test_deterministic(self):
        a = PushCollectionSystem(params(), seed=5).run(2.0, 5.0)
        b = PushCollectionSystem(params(), seed=5).run(2.0, 5.0)
        assert a == b

    def test_delay_small_when_underloaded(self):
        system = PushCollectionSystem(
            params(normalized_capacity=12.0), seed=6
        )
        report = system.run(4.0, 8.0)
        # M/M/1-ish: sojourn ~ 1/(mu-lambda); with per-server rate 240 vs
        # arrivals 160/2 per server the delay is well under a tenth
        assert report.mean_block_delay is not None
        assert report.mean_block_delay < 0.1

    def test_queue_slots_validated(self):
        with pytest.raises(ValueError):
            PushCollectionSystem(params(), queue_slots=0)

    def test_backlog_bounded_by_queue(self):
        system = PushCollectionSystem(
            params(normalized_capacity=1.0), seed=7, queue_slots=8
        )
        system.run_until(10.0)
        assert system.backlog() <= (8 + 1) * 2  # per server: queue + in service

    def test_run_argument_validation(self):
        system = PushCollectionSystem(params(), seed=8)
        with pytest.raises(ValueError):
            system.run(1.0, -1.0)
        with pytest.raises(ValueError):
            system.run_phase(-2.0)
