"""Supervisor and process-fault-plane coverage (everything short of SIGKILL).

The real end-to-end kill test lives in ``test_live_checkpoint.py``; this
module pins the machinery around it: the unified ``Backoff`` policy, the
``RestartPolicy`` schedule, process-fault plan validation, the chaos
space/shrinker integration, CLI spec parsing, the supervisor's
partitioning and argument validation, and the peer's reconnect path
(exercised in-process by severing a control connection).
"""

import asyncio
import random

import pytest

from repro.chaos.shrink import _candidates
from repro.chaos.space import PlanSpace, TrialConfig
from repro.core.params import Parameters
from repro.faults.plan import FaultPlan, PROCESS_FAULT_KINDS
from repro.live.cli import parse_proc_fault
from repro.live.ports import Backoff
from repro.live.supervisor import LiveSupervisor, RestartPolicy
from repro.live.transport import sample_process_cohort
from repro.sim.rng import SeedSequenceRegistry


def _params(n_peers=8, **overrides):
    defaults = dict(
        n_peers=n_peers,
        arrival_rate=0.5,
        gossip_rate=2.0,
        deletion_rate=0.25,
        normalized_capacity=1.0,
        segment_size=2,
        n_servers=2,
        mode="rlnc",
        payload_bytes=32,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


class TestBackoff:
    def test_unjittered_delays_double_up_to_the_cap(self):
        delays = Backoff(initial=0.1, cap=0.5, attempts=6).delays()
        assert [round(next(delays), 6) for _ in range(5)] == [
            0.1, 0.2, 0.4, 0.5, 0.5,
        ]

    def test_attempts_budget_yields_one_fewer_sleep(self):
        assert len(list(Backoff(initial=0.1, attempts=4).delays())) == 3

    def test_jitter_stays_in_half_to_full_and_is_deterministic(self):
        def draws():
            rng = SeedSequenceRegistry(7).python("live:test:backoff")
            policy = Backoff(initial=0.2, cap=1.0, attempts=8, rng=rng)
            return [delay for _, delay in zip(range(7), policy.delays())]

        first, second = draws(), draws()
        assert first == second  # same named substream -> same schedule
        nominal = [delay for _, delay in zip(
            range(7), Backoff(initial=0.2, cap=1.0, attempts=8).delays()
        )]
        for jittered, base in zip(first, nominal):
            assert 0.5 * base <= jittered <= base

    def test_retry_gives_up_after_the_attempt_budget(self):
        calls = []

        async def failing():
            calls.append(1)
            raise ConnectionError("refused")

        async def scenario():
            policy = Backoff(initial=0.001, cap=0.002, attempts=3)
            with pytest.raises(ConnectionError):
                await policy.retry(failing, retry_on=(ConnectionError,))

        asyncio.run(scenario())
        assert len(calls) == 3

    def test_retry_respects_the_deadline(self):
        calls = []

        async def failing():
            calls.append(1)
            raise ConnectionError("refused")

        async def scenario():
            policy = Backoff(
                initial=10.0, cap=10.0, attempts=0, deadline=0.05
            )
            with pytest.raises(ConnectionError):
                await policy.retry(failing, retry_on=(ConnectionError,))

        asyncio.run(scenario())
        # the first retry's 10s sleep would blow the 50ms deadline
        assert len(calls) == 1

    def test_non_matching_exception_propagates_immediately(self):
        async def failing():
            raise RuntimeError("not retryable")

        async def scenario():
            policy = Backoff(initial=0.001, attempts=5)
            with pytest.raises(RuntimeError):
                await policy.retry(failing, retry_on=(ConnectionError,))

        asyncio.run(scenario())

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            Backoff(initial=0.0)
        with pytest.raises(ValueError):
            Backoff(initial=1.0, cap=0.5)
        with pytest.raises(ValueError):
            Backoff(factor=0.5)
        with pytest.raises(ValueError):
            Backoff(attempts=0)  # unbounded needs a deadline
        with pytest.raises(ValueError):
            Backoff(attempts=0, deadline=0.0)


class TestRestartPolicy:
    def test_delay_schedule_doubles_to_the_cap(self):
        policy = RestartPolicy(
            max_restarts=5, backoff_initial=0.2, backoff_cap=1.0
        )
        # jitter=1.0 -> the nominal (undamped) schedule
        assert [policy.delay(n, 1.0) for n in (1, 2, 3, 4, 5)] == [
            0.2, 0.4, 0.8, 1.0, 1.0,
        ]
        # jitter=0.0 -> half the nominal
        assert policy.delay(1, 0.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(backoff_initial=0.0)


class TestProcessFaultPlan:
    def test_valid_plan_sorts_events_by_onset(self):
        plan = FaultPlan(process_faults=(
            ("kill-peers", 16.0, 0.0, 0.5),
            ("kill-server", 10.0, 0.0, 0.0),
        ))
        assert [event[0] for event in plan.process_faults] == [
            "kill-server", "kill-peers",
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="not one of"):
            FaultPlan(process_faults=(("reboot-universe", 1.0, 0.0, 0.0),))

    def test_server_kinds_must_leave_fraction_zero(self):
        with pytest.raises(ValueError, match="fraction at 0"):
            FaultPlan(process_faults=(("kill-server", 1.0, 0.0, 0.5),))

    def test_peer_kinds_need_fraction_in_unit_interval(self):
        with pytest.raises(ValueError, match=r"fraction in \(0, 1\]"):
            FaultPlan(process_faults=(("kill-peers", 1.0, 0.0, 0.0),))
        with pytest.raises(ValueError, match=r"fraction in \(0, 1\]"):
            FaultPlan(process_faults=(("kill-peers", 1.0, 0.0, 1.5),))

    def test_stop_kinds_need_positive_duration(self):
        with pytest.raises(ValueError, match="duration > 0"):
            FaultPlan(process_faults=(("stop-server", 1.0, 0.0, 0.0),))

    def test_kill_server_needs_restart_latency(self):
        with pytest.raises(ValueError, match="process_restart_latency"):
            FaultPlan(
                process_faults=(("kill-server", 1.0, 0.0, 0.0),),
                process_restart_latency=0.0,
            )

    def test_server_faults_refuse_renewal_outages(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            FaultPlan(
                process_faults=(("kill-server", 1.0, 0.0, 0.0),),
                outage_rate=0.1,
                outage_duration=1.0,
            )

    def test_server_fault_windows_must_not_overlap_outage_windows(self):
        with pytest.raises(ValueError, match="must not overlap"):
            FaultPlan(
                process_faults=(("kill-server", 1.0, 0.0, 0.0),),
                process_restart_latency=2.0,
                outage_windows=((2.0, 4.0),),
            )

    def test_server_process_windows_cover_downtime(self):
        plan = FaultPlan(
            process_faults=(
                ("kill-server", 4.0, 0.0, 0.0),
                ("stop-server", 10.0, 3.0, 0.0),
            ),
            process_restart_latency=1.5,
        )
        assert plan.server_process_windows == ((4.0, 5.5), (10.0, 13.0))


class TestCohortSampling:
    def test_cohort_hits_at_least_one_and_at_most_all(self):
        rng = random.Random(5)
        assert len(sample_process_cohort(rng, 0.01, 4)) == 1
        assert len(sample_process_cohort(rng, 1.0, 4)) == 4
        assert len(sample_process_cohort(rng, 0.5, 4)) == 2

    def test_cohort_is_deterministic_per_stream_state(self):
        first = sample_process_cohort(random.Random(9), 0.5, 8)
        second = sample_process_cohort(random.Random(9), 0.5, 8)
        assert first == second


class TestChaosIntegration:
    def test_space_samples_process_faults_that_build(self):
        space = PlanSpace()
        sampled = 0
        for index in range(200):
            config = space.sample(random.Random(1000 + index), index)
            if not config.plan.get("process_faults"):
                continue
            sampled += 1
            plan = config.build_fault_plan()
            for kind, *_ in plan.process_faults:
                assert kind in PROCESS_FAULT_KINDS
            # process faults never coexist with server outage channels
            assert not config.plan.get("outage_windows")
            assert not config.plan.get("outage_rate")
        assert sampled > 0

    def test_config_round_trips_through_json(self):
        space = PlanSpace()
        for index in range(200):
            config = space.sample(random.Random(2000 + index), index)
            if config.plan.get("process_faults"):
                restored = TrialConfig.from_json(config.to_json())
                assert (
                    restored.build_fault_plan().process_faults
                    == config.build_fault_plan().process_faults
                )
                return
        pytest.fail("no sampled config carried process faults")

    def test_shrinker_drops_events_individually_and_wholesale(self):
        config = TrialConfig(
            trial_id=0,
            seed=1,
            params={"n_peers": 16, "n_servers": 2},
            plan={
                "process_faults": [
                    ["kill-server", 2.0, 0.0, 0.0],
                    ["kill-peers", 4.0, 0.0, 0.5],
                ],
                "process_restart_latency": 1.0,
            },
            warmup=0.0,
            duration=4.0,
            every=50,
        )
        candidates = list(_candidates(config))
        fault_lists = [
            tuple(
                tuple(event)
                for event in candidate.plan.get("process_faults", [])
            )
            for candidate in candidates
        ]
        assert () in fault_lists  # whole-channel drop
        assert (("kill-peers", 4.0, 0.0, 0.5),) in fault_lists
        assert (("kill-server", 2.0, 0.0, 0.0),) in fault_lists


class TestProcFaultSpecParsing:
    def test_full_and_partial_specs(self):
        assert parse_proc_fault("kill-server@10") == (
            "kill-server", 10.0, 0.0, 0.0,
        )
        assert parse_proc_fault("stop-server@8:2") == (
            "stop-server", 8.0, 2.0, 0.0,
        )
        assert parse_proc_fault("kill-peers@16:0:0.5") == (
            "kill-peers", 16.0, 0.0, 0.5,
        )

    def test_bad_specs_report_the_format(self):
        import argparse

        for spec in ("kill-server", "kill-server@", "kill-server@x",
                     "kill-server@1:2:3:4"):
            with pytest.raises(argparse.ArgumentTypeError, match="format"):
                parse_proc_fault(spec)


class TestSupervisorValidation:
    def test_peer_partition_is_contiguous_and_complete(self):
        supervisor = LiveSupervisor(
            _params(n_peers=10), seed=1, warmup=1.0, duration=2.0,
            peer_procs=3,
        )
        parts = supervisor._peer_partition()
        assert sum(count for _, count in parts) == 10
        assert [base for base, _ in parts] == [0, 4, 7]
        assert all(count >= 1 for _, count in parts)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LiveSupervisor(
                _params(), seed=1, warmup=-1.0, duration=2.0,
            )
        with pytest.raises(ValueError):
            LiveSupervisor(
                _params(), seed=1, warmup=1.0, duration=0.0,
            )
        with pytest.raises(ValueError):
            LiveSupervisor(
                _params(n_peers=4), seed=1, warmup=1.0, duration=2.0,
                peer_procs=5,
            )
        with pytest.raises(ValueError):
            LiveSupervisor(
                _params(), seed=1, warmup=1.0, duration=2.0,
                peer_procs=0,
            )


class TestPeerReconnect:
    def test_severed_control_connection_heals_in_place(self):
        """Cut one peer's control TCP from the server side; the peer must
        dial back, re-register into its slot, and keep running."""
        from repro.live.peer import LivePeer
        from repro.live.server import LiveLoggingServer

        async def scenario():
            params = _params(n_peers=2)
            server = LiveLoggingServer(params, seed=3)
            await server.start()
            peers = [
                LivePeer(
                    slot, params, 3, "127.0.0.1", server.port,
                    clock=server.clock, listen_host="127.0.0.1",
                )
                for slot in range(2)
            ]
            try:
                for peer in peers:
                    await peer.start()
                await server.wait_for_peers(2, timeout=10.0)
                await server.begin()
                # sever peer 0's control link as a crash would
                await server.peers[0].conn.close()
                for _ in range(200):
                    if peers[0].reconnects >= 1 and 0 in server.peers:
                        if not server.peers[0].conn.is_closing:
                            break
                    await asyncio.sleep(0.05)
                assert peers[0].reconnects == 1
                assert 0 in server.peers
                assert not server.peers[0].conn.is_closing
            finally:
                await asyncio.gather(
                    *(peer.close() for peer in peers),
                    return_exceptions=True,
                )
                await server.close()

        asyncio.run(scenario())
