"""Property and unit tests for the project call-graph builder.

The interprocedural passes (R6/R7) are only as sound as the graph under
them, so these tests pin its resolution rules directly: direct calls,
import aliasing, relative imports, method dispatch through inheritance,
constructor edges, and callback edges into invoked parameters.  The
hypothesis properties build small synthetic programs with known ground
truth and assert the recovered edge set matches exactly.
"""

import keyword
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.lint.callgraph import (
    CallGraph,
    Project,
    module_name_for,
)
from repro.lint.framework import SourceModule


def parse(relpath, source):
    return SourceModule.parse(Path("/fx") / relpath, relpath, source)


def build(*modules):
    return CallGraph.build([parse(rel, src) for rel, src in modules])


def all_sites(graph):
    return [
        site for sites in graph.calls_from.values() for site in sites
    ]


def edge_pairs(graph, kind=None):
    return sorted(
        (site.caller, site.callee)
        for site in all_sites(graph)
        if kind is None or site.kind == kind
    )


class TestModuleNames:
    def test_plain_and_src_prefixed(self):
        assert module_name_for("sim/engine.py") == "sim.engine"
        assert module_name_for("src/repro/sim/engine.py") == (
            "repro.sim.engine"
        )

    def test_package_init_maps_to_package(self):
        assert module_name_for("repro/lint/__init__.py") == "repro.lint"


class TestResolution:
    def test_direct_and_aliased_import(self):
        graph = build(
            ("pkg/util.py", "def helper():\n    return 1\n"),
            (
                "pkg/main.py",
                "from pkg.util import helper as h\n\n"
                "def go():\n    return h()\n",
            ),
        )
        assert edge_pairs(graph, "direct") == [
            ("pkg.main.go", "pkg.util.helper")
        ]

    def test_relative_import(self):
        graph = build(
            ("pkg/__init__.py", ""),
            ("pkg/util.py", "def helper():\n    return 1\n"),
            (
                "pkg/main.py",
                "from .util import helper\n\n"
                "def go():\n    return helper()\n",
            ),
        )
        assert edge_pairs(graph, "direct") == [
            ("pkg.main.go", "pkg.util.helper")
        ]

    def test_constructor_edge_reaches_init(self):
        graph = build(
            (
                "pkg/obj.py",
                "class Thing:\n"
                "    def __init__(self, rng):\n"
                "        self.rng = rng\n",
            ),
            (
                "pkg/main.py",
                "from pkg.obj import Thing\n\n"
                "def go():\n    return Thing(rng=None)\n",
            ),
        )
        (site,) = [
            s for s in all_sites(graph) if s.kind == "constructor"
        ]
        assert site.callee == "pkg.obj.Thing.__init__"

    def test_method_dispatch_through_base_class(self):
        graph = build(
            (
                "pkg/obj.py",
                "class Base:\n"
                "    def step(self):\n"
                "        return 0\n\n\n"
                "class Derived(Base):\n"
                "    def go(self):\n"
                "        return self.step()\n",
            ),
        )
        assert ("pkg.obj.Derived.go", "pkg.obj.Base.step") in edge_pairs(
            graph, "method"
        )

    def test_callback_edge_into_invoked_param(self):
        graph = build(
            (
                "pkg/cb.py",
                "def producer():\n    return 1\n\n\n"
                "def apply(fn):\n    return fn()\n\n\n"
                "def go():\n    return apply(producer)\n",
            ),
        )
        direct = edge_pairs(graph, "direct")
        assert ("pkg.cb.go", "pkg.cb.apply") in direct
        callbacks = edge_pairs(graph, "callback")
        assert ("pkg.cb.apply", "pkg.cb.producer") in callbacks

    def test_external_calls_never_become_project_functions(self):
        graph = build(
            (
                "pkg/ext.py",
                "import os\n\n"
                "def go():\n    return os.getpid()\n",
            ),
        )
        for _, callee in edge_pairs(graph):
            assert callee not in graph.functions


NAME = st.sampled_from(
    [n for n in ("alpha", "beta", "gamma", "delta", "omega", "sigma")]
).filter(lambda n: not keyword.iskeyword(n))


class TestProperties:
    @given(
        callees=st.lists(NAME, min_size=1, max_size=5, unique=True),
        called=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_direct_edges_match_called_subset(self, callees, called):
        """Edges recovered == the subset of helpers the caller invokes."""
        subset = called.draw(
            st.lists(st.sampled_from(callees), unique=True)
        )
        lines = [f"def {name}():\n    return 0\n\n" for name in callees]
        body = "".join(f"    {name}()\n" for name in subset) or "    pass\n"
        lines.append(f"def caller():\n{body}")
        graph = build(("m.py", "\n".join(lines)))
        got = {site.callee for site in graph.callees("m.caller")}
        assert got == {f"m.{name}" for name in subset}

    @given(
        helper=NAME,
        alias=NAME,
        via_alias=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_import_alias_is_transparent(self, helper, alias, via_alias):
        """``from m import f as g`` resolves g() to m.f, same as f()."""
        local = alias if via_alias else helper
        imported = (
            f"from lib.util import {helper} as {alias}"
            if via_alias
            else f"from lib.util import {helper}"
        )
        graph = build(
            ("lib/util.py", f"def {helper}():\n    return 0\n"),
            (
                "lib/main.py",
                f"{imported}\n\ndef go():\n    return {local}()\n",
            ),
        )
        assert edge_pairs(graph, "direct") == [
            ("lib.main.go", f"lib.util.{helper}")
        ]

    @given(depth=st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_inheritance_chain_resolves_to_root(self, depth):
        """self.step() on the leaf resolves up an N-deep base chain."""
        parts = ["class C0:\n    def step(self):\n        return 0\n"]
        for i in range(1, depth + 1):
            parts.append(f"class C{i}(C{i - 1}):\n    pass\n")
        parts.append(
            f"class Leaf(C{depth}):\n"
            "    def go(self):\n"
            "        return self.step()\n"
        )
        graph = build(("m.py", "\n\n".join(parts)))
        assert ("m.Leaf.go", "m.C0.step") in edge_pairs(graph, "method")


class TestProject:
    def test_graph_is_lazy_and_cached(self):
        project = Project([parse("m.py", "def f():\n    return 1\n")])
        assert project.graph is project.graph
        assert "m.f" in project.graph.functions

    def test_by_relpath(self):
        module = parse("pkg/m.py", "x = 1\n")
        project = Project([module])
        assert project.by_relpath["pkg/m.py"] is module
