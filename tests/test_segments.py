"""Tests for the segment registry: degrees, states, lifecycle accounting."""

import pytest

from repro.core.segments import SegmentRegistry, SegmentState
from repro.sim.metrics import MetricsCollector


def make_registry(use_decoders=False, n=10, s=3):
    metrics = MetricsCollector(
        n_peers=n, arrival_rate=1.0, segment_size=s, normalized_capacity=1.0
    )
    metrics.begin_window(0.0)
    return SegmentRegistry(metrics, use_decoders=use_decoders), metrics


class TestLifecycle:
    def test_create_assigns_unique_ids(self):
        registry, _ = make_registry()
        a = registry.create(source_peer=0, size=3, now=0.0)
        b = registry.create(source_peer=1, size=3, now=0.0)
        assert a.segment_id != b.segment_id
        assert len(registry) == 2
        assert a.segment_id in registry

    def test_degree_tracking(self):
        registry, _ = make_registry()
        state = registry.create(source_peer=0, size=3, now=0.0)
        for _ in range(3):
            registry.on_block_added(state, 0.0)
        assert state.network_degree == 3
        registry.on_block_removed(state, 1.0)
        assert state.network_degree == 2

    def test_degree_underflow_raises(self):
        registry, _ = make_registry()
        state = registry.create(source_peer=0, size=3, now=0.0)
        with pytest.raises(RuntimeError):
            registry.on_block_removed(state, 0.0)

    def test_extinction_removes_and_counts_loss(self):
        registry, metrics = make_registry()
        state = registry.create(source_peer=0, size=3, now=0.0)
        registry.on_block_added(state, 0.0)
        registry.on_block_removed(state, 1.0)
        assert state.segment_id not in registry
        assert metrics.segments_lost.window == 1
        assert registry.lost_segment_ids == [state.segment_id]

    def test_extinction_after_completion_is_not_loss(self):
        registry, metrics = make_registry(s=1)
        state = registry.create(source_peer=0, size=1, now=0.0)
        registry.on_block_added(state, 0.0)
        assert registry.on_server_block(state, 0.5)
        registry.on_block_removed(state, 1.0)
        assert metrics.segments_lost.window == 0
        assert registry.completed_count == 1


class TestServerCollection:
    def test_abstract_state_advances_until_complete(self):
        registry, metrics = make_registry(s=3)
        state = registry.create(source_peer=0, size=3, now=0.0)
        registry.on_block_added(state, 0.0)
        assert registry.on_server_block(state, 0.1)
        assert registry.on_server_block(state, 0.2)
        assert not state.is_complete
        assert registry.on_server_block(state, 0.3)
        assert state.is_complete
        assert state.completed_at == 0.3
        assert not registry.on_server_block(state, 0.4)  # redundant
        assert state.collected == 3

    def test_completion_records_delay(self):
        registry, metrics = make_registry(s=2)
        state = registry.create(source_peer=0, size=2, now=1.0)
        registry.on_block_added(state, 1.0)
        registry.on_server_block(state, 2.0)
        registry.on_server_block(state, 5.0)
        report = metrics.report(10.0)
        assert report.mean_segment_delay == pytest.approx(4.0)
        assert report.segments_completed == 1

    def test_on_complete_callback_fires_once(self):
        registry, _ = make_registry(s=1)
        seen = []
        registry.on_complete = seen.append
        state = registry.create(source_peer=2, size=1, now=0.0)
        registry.on_block_added(state, 0.0)
        registry.on_server_block(state, 0.1)
        registry.on_server_block(state, 0.2)
        assert seen == [state]

    def test_on_useful_pull_callback(self):
        registry, _ = make_registry(s=2)
        pulls = []
        registry.on_useful_pull = pulls.append
        state = registry.create(source_peer=0, size=2, now=0.0)
        registry.on_block_added(state, 0.0)
        registry.on_server_block(state, 0.1)
        registry.on_server_block(state, 0.2)
        registry.on_server_block(state, 0.3)  # redundant, no callback
        assert pulls == [state, state]

    def test_rlnc_mode_requires_block(self):
        registry, _ = make_registry(use_decoders=True, s=2)
        state = registry.create(source_peer=0, size=2, now=0.0)
        with pytest.raises(ValueError):
            registry.on_server_block(state, 0.0)


class TestPopulations:
    def test_decodable_and_saved_flags(self):
        registry, metrics = make_registry(s=2)
        state = registry.create(source_peer=0, size=2, now=0.0)
        registry.on_block_added(state, 0.0)
        assert metrics.decodable_segments.value == 0
        registry.on_block_added(state, 0.0)
        assert metrics.decodable_segments.value == 1
        assert metrics.saved_segments.value == 1
        # completion clears "saved" but not "decodable"
        registry.on_server_block(state, 0.1)
        registry.on_server_block(state, 0.2)
        assert metrics.saved_segments.value == 0
        assert metrics.decodable_segments.value == 1
        # dropping below s clears decodable
        registry.on_block_removed(state, 0.3)
        assert metrics.decodable_segments.value == 0

    def test_saved_segment_count_scan_matches_flags(self):
        registry, metrics = make_registry(s=2)
        for i in range(4):
            state = registry.create(source_peer=i, size=2, now=0.0)
            for _ in range(i + 1):
                registry.on_block_added(state, 0.0)
        assert registry.saved_segment_count() == int(
            metrics.saved_segments.value
        )

    def test_histograms(self):
        registry, _ = make_registry(s=2)
        a = registry.create(source_peer=0, size=2, now=0.0)
        b = registry.create(source_peer=1, size=2, now=0.0)
        registry.on_block_added(a, 0.0)
        registry.on_block_added(b, 0.0)
        registry.on_block_added(b, 0.0)
        assert registry.degree_histogram() == {1: 1, 2: 1}
        registry.on_server_block(b, 0.1)
        matrix = registry.collection_matrix()
        assert matrix[1] == {0: 1}
        assert matrix[2] == {1: 1}

    def test_get_unknown_raises(self):
        registry, _ = make_registry()
        with pytest.raises(KeyError):
            registry.get(999)
