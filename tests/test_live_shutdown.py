"""Graceful-shutdown coverage for the live runtime.

Every scenario runs under **asyncio debug mode** and asserts, from inside
the still-running loop, that teardown left no pending tasks behind; after
the loop exits, a forced GC under a ResourceWarning trap asserts no
transport was left unclosed.  Covered: full-swarm teardown, one peer
disconnecting mid-transfer while the swarm keeps running, server drain
(the SIGTERM path both in-process and as a real signal to a
``repro live serve`` subprocess).
"""

import asyncio
import gc
import json
import os
import signal
import subprocess
import sys
import warnings

import pytest

from repro.core.params import Parameters
from repro.live.harness import run_swarm
from repro.live.peer import LivePeer
from repro.live.server import LiveLoggingServer


def _params(n_peers=4, **overrides):
    defaults = dict(
        n_peers=n_peers,
        arrival_rate=0.5,
        gossip_rate=2.0,
        deletion_rate=0.25,
        normalized_capacity=1.0,
        segment_size=2,
        n_servers=2,
        mode="rlnc",
        payload_bytes=32,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


def run_clean(coro_factory):
    """Drive a scenario in asyncio debug mode and police its teardown.

    The scenario coroutine must tear down everything it started; after it
    returns we assert the loop's task table holds nothing but ourselves,
    and after the loop is gone we collect garbage with ResourceWarning
    recorded — an unclosed transport or event loop surfaces here as a
    test failure instead of interpreter-shutdown noise.
    """

    async def wrapper():
        result = await coro_factory()
        # Let cancellation callbacks scheduled by the teardown settle.
        await asyncio.sleep(0)
        leftover = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task() and not task.done()
        ]
        assert leftover == [], f"pending tasks after teardown: {leftover}"
        return result

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = asyncio.run(wrapper(), debug=True)
        gc.collect()
    leaks = [
        w for w in caught if issubclass(w.category, ResourceWarning)
    ]
    assert leaks == [], f"unclosed resources: {[str(w.message) for w in leaks]}"
    return result


async def _start_swarm(params, seed=11):
    server = LiveLoggingServer(params, seed)
    await server.start()
    peers = [
        LivePeer(slot, params, seed, "127.0.0.1", server.port,
                 clock=server.clock)
        for slot in range(params.n_peers)
    ]
    await asyncio.gather(*(peer.start() for peer in peers))
    await server.wait_for_peers(params.n_peers, timeout=30.0)
    await server.begin(start_delay_wall=0.05)
    return server, peers


async def _teardown(server, peers):
    await asyncio.gather(
        *(peer.close() for peer in peers), return_exceptions=True
    )
    await server.close()


class TestSwarmTeardown:
    def test_full_swarm_close_leaves_nothing_behind(self):
        async def scenario():
            params = _params()
            server, peers = await _start_swarm(params)
            await asyncio.sleep(0.5)  # let gossip and pulls actually flow
            await server.stop_protocol()
            await _teardown(server, peers)
            for peer in peers:
                assert peer.stopped.is_set()
            assert server.draining.is_set()
            assert not server.peers

        run_clean(scenario)

    def test_run_swarm_harness_is_self_cleaning(self):
        async def scenario():
            report = await run_swarm(
                _params(), seed=2, warmup=0.5, duration=1.5, time_scale=4.0
            )
            assert report["engine"] == "live"

        run_clean(scenario)

    def test_teardown_is_clean_even_before_start(self):
        async def scenario():
            params = _params(n_peers=2)
            server = LiveLoggingServer(params, 1)
            await server.start()
            peer = LivePeer(0, params, 1, "127.0.0.1", server.port)
            await peer.start()
            # No START ever broadcast: protocol tasks never spawned.
            await peer.close()
            await server.close()

        run_clean(scenario)


class TestPeerDisconnectMidTransfer:
    def test_swarm_survives_an_abrupt_peer_death(self):
        async def scenario():
            params = _params(n_peers=5)
            server, peers = await _start_swarm(params)
            await asyncio.sleep(0.3)
            # Kill one peer abruptly mid-protocol: its listener vanishes,
            # its control connection drops, gossip partners see resets.
            victim = peers[2]
            await victim.close()
            assert victim.stopped.is_set()
            # The swarm keeps running without it.
            await asyncio.sleep(0.4)
            for _ in range(50):
                if 2 not in server.peers:
                    break
                await asyncio.sleep(0.05)
            assert 2 not in server.peers, "registry never saw the death"
            survivors = [p for p in peers if p is not victim]
            alive_metrics = await asyncio.gather(
                *(server.request_metrics(p.slot) for p in survivors)
            )
            assert len(alive_metrics) == len(survivors)
            await server.stop_protocol()
            await _teardown(server, peers)

        run_clean(scenario)

    def test_double_close_is_idempotent(self):
        async def scenario():
            params = _params(n_peers=2)
            server, peers = await _start_swarm(params)
            await peers[0].close()
            await peers[0].close()  # second close must be a no-op
            await server.stop_protocol()
            await _teardown(server, peers)

        run_clean(scenario)


class TestServerDrain:
    def test_server_close_drains_peers_via_bye(self):
        async def scenario():
            params = _params()
            server, peers = await _start_swarm(params)
            await asyncio.sleep(0.3)
            await server.stop_protocol()
            # Drain: the server says BYE on every control connection; each
            # peer's control loop exits and flags itself stopped.
            await server.close()
            assert server.draining.is_set()
            await asyncio.gather(
                *(asyncio.wait_for(p.stopped.wait(), 10.0) for p in peers)
            )
            await asyncio.gather(*(peer.close() for peer in peers))

        run_clean(scenario)

    def test_serve_process_exits_cleanly_on_sigterm(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "live", "serve",
             "--n-peers", "4", "--host", "127.0.0.1", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            endpoint = json.loads(line)
            assert endpoint["port"] > 0  # bound and propagated
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        assert proc.returncode == 0, f"serve exited {proc.returncode}: {err}"
        assert "Traceback" not in err
