"""Tests for the parallel sweep runner (src/repro/runner/).

The load-bearing property is byte-identity: for every experiment, the
sharded runner must produce exactly the ``SeriesResult`` JSON the serial
path produces — under 1 worker, 4 workers, and an interrupt-plus-resume.
The fault-tolerance paths (worker crash, hung task, raised task, retry
exhaustion) are driven by the synthetic misbehaving plans so they run in
milliseconds instead of simulation-seconds.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import PLAN_BUILDERS
from repro.experiments.base import SimBudget, parse_seeds
from repro.experiments.fig5 import run_fig5
from repro.runner import (
    JournalError,
    RunJournal,
    RunSpec,
    TaskFailedError,
    execute_run,
    synthetic_options,
)
from repro.runner.telemetry import RunnerTelemetry

#: Small enough for CI, big enough to exercise real simulation cells.
TINY = SimBudget(n_peers=20, warmup=1.0, duration=1.5, seeds=(1,), n_servers=2)
#: Two seeds so cross-process seed averaging is actually exercised.
TINY2 = SimBudget(n_peers=20, warmup=1.0, duration=1.5, seeds=(1, 2),
                  n_servers=2)

#: Reduced grids: every experiment, every merge code path, tiny runtime.
EQUIVALENCE_CASES = [
    ("fig3", TINY2, {"segment_sizes": [1, 4], "capacities": [2.0]}),
    ("fig4", TINY, {"mu_values": [4.0], "scenarios": [[2.0, 1], [2.0, 4]]}),
    ("fig5", TINY, {"segment_sizes": [1, 4], "capacities": [8.0]}),
    ("fig6", TINY, {"segment_sizes": [1, 8], "capacities": [8.0]}),
    ("theorem1", TINY, {"segment_sizes": [1, 4]}),
    ("transient", TINY, {"n_samples": 4}),
    ("baseline", TINY, {}),
    ("robustness", TINY, {"severities": [0.0, 0.3]}),
    ("ablation-ttl", TINY, {"gammas": [0.5, 2.0]}),
    ("ablation-buffer", TINY, {"capacities": [16, 48]}),
    ("ablation-selection", TINY, {"segment_sizes": [1, 5]}),
    ("ablation-scheduler", TINY,
     {"policies": ["random", "greedy-completion"]}),
    ("ablation-coding", TINY, {"segment_sizes": [2, 3]}),
    ("ablation-topology", TINY, {"degrees": [2, 0]}),
]


class TestParseSeeds:
    def test_parses_csv(self):
        assert parse_seeds("1,2,3") == (1, 2, 3)
        assert parse_seeds(" 7 , 9 ") == (7, 9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            parse_seeds(" , ")

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="must be integers"):
            parse_seeds("1,two")

    def test_duplicates_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="duplicate seed"):
            parse_seeds("1,2,1")


class TestPlanModel:
    def test_every_cli_experiment_has_a_plan_builder(self):
        from repro import cli

        assert set(PLAN_BUILDERS) == set(cli.RUNNERS)

    def test_duplicate_task_ids_rejected(self):
        from repro.experiments.base import ExperimentPlan, SimTask

        tasks = [
            SimTask("a", dict), SimTask("a", dict),
        ]
        with pytest.raises(ValueError, match="duplicate task id"):
            ExperimentPlan("demo", tasks, lambda payloads: None)

    def test_merge_validates_completeness(self):
        spec = RunSpec.create(
            "synthetic-grid", "fast", TINY, synthetic_options(3)
        )
        plan = spec.build_plan()
        with pytest.raises(ValueError, match="missing"):
            plan.merge({"cell=0000": {"value": 1.0, "index": 0}})

    def test_run_serial_matches_legacy_runner(self):
        spec = RunSpec.create(
            "fig5", "fast", TINY,
            {"segment_sizes": [1, 4], "capacities": [8.0]},
        )
        direct = run_fig5(
            segment_sizes=(1, 4), capacities=(8.0,), budget=TINY
        )
        assert spec.build_plan().run_serial().to_json() == direct.to_json()


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize(
        "experiment,budget,options",
        EQUIVALENCE_CASES,
        ids=[case[0] for case in EQUIVALENCE_CASES],
    )
    def test_workers_and_resume_byte_identical(
        self, tmp_path, experiment, budget, options
    ):
        spec = RunSpec.create(experiment, "fast", budget, options)
        serial = spec.build_plan().run_serial().to_json()

        one = execute_run(spec, workers=1, runs_dir=tmp_path / "w1")
        assert one.complete and one.result.to_json() == serial

        four = execute_run(spec, workers=4, runs_dir=tmp_path / "w4")
        assert four.complete and four.result.to_json() == serial

        # Interrupt mid-sweep (checkpoint), then resume: only the missing
        # cells run, and the merged result is still byte-identical.
        total = four.total_tasks
        stop_after = max(1, total // 2)
        first = execute_run(
            spec, workers=2, runs_dir=tmp_path / "ckpt", run_id="r",
            stop_after=stop_after,
        )
        journaled = len(
            list((tmp_path / "ckpt" / "r" / "tasks").glob("*.json"))
        )
        assert journaled == first.completed_tasks
        resumed = execute_run(
            spec, workers=2, runs_dir=tmp_path / "ckpt", resume="r"
        )
        assert resumed.complete
        assert resumed.result.to_json() == serial
        assert resumed.resumed_tasks == journaled
        assert resumed.executed_this_session == total - journaled

    def test_journal_payloads_reproduce_result(self, tmp_path):
        spec = RunSpec.create(
            "fig3", "fast", TINY2,
            {"segment_sizes": [1, 4], "capacities": [2.0]},
        )
        outcome = execute_run(spec, workers=2, runs_dir=tmp_path)
        journal = RunJournal.load(outcome.run_dir)
        merged = spec.build_plan().merge(journal.completed_payloads())
        assert merged.to_json() == outcome.result.to_json()
        archived = (outcome.run_dir / "result.json").read_text()
        assert archived == outcome.result.to_json() + "\n"


class TestFaultTolerance:
    def _spec(self, tmp_path, fail, n_tasks=6):
        options = synthetic_options(
            n_tasks, fail=fail, marker_dir=tmp_path / "markers"
        )
        return RunSpec.create("synthetic-grid", "fast", TINY, options)

    def test_worker_crash_is_isolated_and_retried(self, tmp_path):
        spec = self._spec(tmp_path, {"cell=0002": "kill-once"})
        clean = RunSpec.create(
            "synthetic-grid", "fast", TINY, synthetic_options(6)
        )
        serial = clean.build_plan().run_serial().to_json()
        outcome = execute_run(
            spec, workers=3, runs_dir=tmp_path / "runs", retries=2
        )
        assert outcome.complete
        assert outcome.result.to_json() == serial
        journal = RunJournal.load(outcome.run_dir)
        records = {
            r["task_id"]: r for r in journal.iter_task_records()
        }
        assert records["cell=0002"]["attempts"] == 2
        kinds = [
            json.loads(line)["kind"]
            for line in journal.events_path.read_text().splitlines()
        ]
        assert "worker-crash" in kinds and "task-retry" in kinds

    def test_raised_task_is_retried_without_killing_worker(self, tmp_path):
        spec = self._spec(tmp_path, {"cell=0001": "raise-once"})
        outcome = execute_run(
            spec, workers=2, runs_dir=tmp_path / "runs", retries=1
        )
        assert outcome.complete
        journal = RunJournal.load(outcome.run_dir)
        kinds = [
            json.loads(line)["kind"]
            for line in journal.events_path.read_text().splitlines()
        ]
        assert "task-retry" in kinds
        assert "worker-crash" not in kinds

    def test_hung_task_times_out_and_recovers(self, tmp_path):
        spec = self._spec(tmp_path, {"cell=0000": "hang-once"}, n_tasks=3)
        outcome = execute_run(
            spec, workers=2, runs_dir=tmp_path / "runs",
            task_timeout=1.5, retries=1,
        )
        assert outcome.complete
        journal = RunJournal.load(outcome.run_dir)
        kinds = [
            json.loads(line)["kind"]
            for line in journal.events_path.read_text().splitlines()
        ]
        assert "worker-timeout" in kinds

    def test_retry_exhaustion_fails_loudly(self, tmp_path):
        spec = self._spec(tmp_path, {"cell=0001": "raise-always"}, n_tasks=3)
        with pytest.raises(TaskFailedError, match="cell=0001"):
            execute_run(
                spec, workers=2, runs_dir=tmp_path / "runs", retries=1
            )


class TestJournal:
    def test_resume_rejects_spec_drift(self, tmp_path):
        spec_a = RunSpec.create(
            "synthetic-grid", "fast", TINY, synthetic_options(3)
        )
        execute_run(
            spec_a, workers=1, runs_dir=tmp_path, run_id="r",
            stop_after=1,
        )
        spec_b = RunSpec.create(
            "synthetic-grid", "fast", TINY2, synthetic_options(3)
        )
        with pytest.raises(JournalError, match="fingerprint"):
            execute_run(spec_b, workers=1, runs_dir=tmp_path, resume="r")

    def test_resume_rejects_unknown_journaled_task(self, tmp_path):
        spec = RunSpec.create(
            "synthetic-grid", "fast", TINY, synthetic_options(3)
        )
        execute_run(
            spec, workers=1, runs_dir=tmp_path, run_id="r", stop_after=1
        )
        rogue = tmp_path / "r" / "tasks" / "99999-rogue.json"
        rogue.write_text(json.dumps(
            {"task_id": "cell=9999", "index": 9999, "attempts": 1,
             "elapsed_seconds": 0.0, "payload": {"value": 0.0}}
        ))
        with pytest.raises(JournalError, match="not in this plan"):
            execute_run(spec, workers=1, runs_dir=tmp_path, resume="r")

    def test_missing_run_dir_is_a_journal_error(self, tmp_path):
        spec = RunSpec.create(
            "synthetic-grid", "fast", TINY, synthetic_options(3)
        )
        with pytest.raises(JournalError, match="not a run directory"):
            execute_run(spec, workers=1, runs_dir=tmp_path, resume="nope")

    def test_fresh_run_refuses_nonempty_dir(self, tmp_path):
        (tmp_path / "r").mkdir()
        (tmp_path / "r" / "junk").write_text("x")
        spec = RunSpec.create(
            "synthetic-grid", "fast", TINY, synthetic_options(3)
        )
        with pytest.raises(JournalError, match="already exists"):
            execute_run(spec, workers=1, runs_dir=tmp_path, run_id="r")

    def test_unknown_experiment_is_a_value_error(self):
        spec = RunSpec.create("no-such-figure", "fast", TINY)
        with pytest.raises(ValueError, match="unknown experiment"):
            spec.build_plan()


class TestTelemetry:
    def test_unregistered_kind_rejected(self):
        telemetry = RunnerTelemetry(total_tasks=1)
        with pytest.raises(ValueError, match="unregistered"):
            telemetry.emit("gosip-done")

    def test_counters_and_progress_line(self):
        telemetry = RunnerTelemetry(total_tasks=4, workers=2)
        telemetry.emit("task-dispatch", task="a", worker=0, attempt=1)
        telemetry.emit(
            "task-done", task="a", worker=0, attempt=1, elapsed_seconds=0.01
        )
        telemetry.emit("task-retry", task="b", reason="boom")
        line = telemetry.progress_line()
        assert "1/4 tasks" in line
        assert "1 retried" in line
        assert "eta" in line

    def test_run_events_reach_the_journal(self, tmp_path):
        spec = RunSpec.create(
            "synthetic-grid", "fast", TINY, synthetic_options(2)
        )
        outcome = execute_run(spec, workers=1, runs_dir=tmp_path)
        journal = RunJournal.load(outcome.run_dir)
        kinds = [
            json.loads(line)["kind"]
            for line in journal.events_path.read_text().splitlines()
        ]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-complete"
        assert kinds.count("task-done") == 2


class TestRunnerCLI:
    """End-to-end through ``python -m repro run`` in real subprocesses."""

    ARGS = [
        "--n-peers", "20", "--warmup", "1", "--duration", "1.5",
        "--seeds", "1", "--n-servers", "2",
    ]

    def _run(self, argv, cwd, **kwargs):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            cwd=cwd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            **kwargs,
        )

    def test_sigkill_mid_sweep_then_resume_is_byte_identical(self, tmp_path):
        serial = self._run(
            ["fig5", *self.ARGS, "--json", "serial.json"], tmp_path
        )
        assert serial.wait(timeout=600) == 0

        proc = self._run(
            ["run", "fig5", *self.ARGS, "--workers", "2", "--no-progress",
             "--run-id", "victim"],
            tmp_path,
            start_new_session=True,
        )
        tasks_dir = tmp_path / "runs" / "victim" / "tasks"
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if tasks_dir.is_dir() and len(list(tasks_dir.glob("*.json"))) >= 2:
                os.killpg(proc.pid, signal.SIGKILL)
                break
            time.sleep(0.05)
        proc.wait(timeout=60)

        journaled = len(list(tasks_dir.glob("*.json")))
        assert journaled >= 2  # progress survived the kill
        total = len(json.loads(
            (tmp_path / "runs" / "victim" / "manifest.json").read_text()
        )["task_ids"])

        resume = self._run(
            ["run", "fig5", "--workers", "2", "--no-progress",
             "--resume", "victim", "--json", "resumed.json"],
            tmp_path,
        )
        assert resume.wait(timeout=600) == 0
        # Resume executed only the missing cells: the journal grew by
        # exactly the complement of what survived the kill.
        assert len(list(tasks_dir.glob("*.json"))) == total
        assert (
            (tmp_path / "resumed.json").read_text()
            == (tmp_path / "serial.json").read_text()
        )

    def test_checkpoint_exit_code(self, tmp_path):
        proc = self._run(
            ["run", "fig5", *self.ARGS, "--workers", "1", "--no-progress",
             "--run-id", "ck", "--stop-after", "1"],
            tmp_path,
        )
        assert proc.wait(timeout=600) == 3  # EXIT_CHECKPOINTED


class TestLegacyCLISeeds:
    def test_seeds_override_reaches_runner(self, monkeypatch, capsys):
        from repro import cli
        from repro.experiments.base import SeriesResult

        captured = {}

        def fake_runner(quality, budget=None):
            captured["quality"] = quality
            captured["budget"] = budget
            result = SeriesResult(
                name="fig3", title="t", x_name="x", x_values=[1.0]
            )
            result.add_series("y", [1.0])
            return result

        monkeypatch.setitem(cli.RUNNERS, "fig3", fake_runner)
        assert cli.main(["fig3", "--seeds", "5,6"]) == 0
        capsys.readouterr()
        assert captured["budget"].seeds == (5, 6)

    def test_duplicate_seeds_exit_2(self, capsys):
        from repro import cli

        assert cli.main(["fig3", "--seeds", "1,1"]) == 2
        assert "duplicate seed" in capsys.readouterr().err
