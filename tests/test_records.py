"""Tests for statistics records and the block codec."""

import random

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats.records import (
    RECORD_SIZE,
    RecordCodec,
    StatsRecord,
    synthesize_records,
)


def record(**overrides):
    defaults = dict(
        timestamp=123.5,
        peer_id=7,
        session_id=3,
        buffer_level=12.5,
        download_rate=800.0,
        upload_rate=300.0,
        loss_fraction=0.01,
        playback_delay=1.5,
        neighbor_count=25,
        rebuffering=False,
    )
    defaults.update(overrides)
    return StatsRecord(**defaults)


record_strategy = st.builds(
    StatsRecord,
    timestamp=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    peer_id=st.integers(0, 2**32 - 1),
    session_id=st.integers(0, 2**32 - 1),
    buffer_level=st.floats(0, 1e4, allow_nan=False, width=32),
    download_rate=st.floats(0, 1e6, allow_nan=False, width=32),
    upload_rate=st.floats(0, 1e6, allow_nan=False, width=32),
    loss_fraction=st.floats(0, 1, allow_nan=False, width=32),
    playback_delay=st.floats(0, 1e3, allow_nan=False, width=32),
    neighbor_count=st.integers(0, 2**16 - 1),
    rebuffering=st.booleans(),
)


class TestStatsRecord:
    def test_fixed_size(self):
        assert len(record().to_bytes()) == RECORD_SIZE == 40

    def test_roundtrip(self):
        original = record(rebuffering=True)
        assert StatsRecord.from_bytes(original.to_bytes()) == original

    @given(record_strategy)
    def test_roundtrip_property(self, original):
        assert StatsRecord.from_bytes(original.to_bytes()) == original

    def test_from_bytes_wrong_length(self):
        with pytest.raises(ValueError):
            StatsRecord.from_bytes(b"\x00" * 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            record(loss_fraction=1.5)
        with pytest.raises(ValueError):
            record(buffer_level=-1.0)
        with pytest.raises(ValueError):
            record(peer_id=2**32)
        with pytest.raises(ValueError):
            record(neighbor_count=2**16)
        with pytest.raises(ValueError):
            record(timestamp=float("nan"))


class TestRecordCodec:
    def test_records_per_block(self):
        codec = RecordCodec(block_size=256)
        assert codec.records_per_block == (256 - 4) // 40 == 6

    def test_block_size_too_small(self):
        with pytest.raises(ValueError):
            RecordCodec(block_size=40)

    def test_pack_unpack_roundtrip(self):
        codec = RecordCodec(block_size=128)
        records = [record(peer_id=i) for i in range(3)]
        block = codec.pack_block(records)
        assert block.shape == (128,)
        assert block.dtype == np.uint8
        assert codec.unpack_block(block) == records

    def test_pack_too_many_raises(self):
        codec = RecordCodec(block_size=128)  # capacity 3
        with pytest.raises(ValueError):
            codec.pack_block([record()] * 4)

    def test_pack_empty_block(self):
        codec = RecordCodec()
        assert codec.unpack_block(codec.pack_block([])) == []

    def test_pack_stream_splits(self):
        codec = RecordCodec(block_size=128)  # 3 per block
        records = [record(peer_id=i) for i in range(8)]
        blocks = codec.pack_stream(records)
        assert len(blocks) == 3
        assert codec.unpack_stream(blocks) == records

    def test_pack_stream_empty(self):
        codec = RecordCodec()
        blocks = codec.pack_stream([])
        assert len(blocks) == 1
        assert codec.unpack_stream(blocks) == []

    def test_unpack_wrong_size(self):
        codec = RecordCodec(block_size=128)
        with pytest.raises(ValueError):
            codec.unpack_block(np.zeros(64, dtype=np.uint8))

    def test_unpack_corrupt_count(self):
        codec = RecordCodec(block_size=128)
        block = codec.pack_block([record()])
        block[0:4] = 255  # absurd record count
        with pytest.raises(ValueError):
            codec.unpack_block(block)

    def test_codec_survives_gf256_coding(self):
        """Records packed into blocks must survive an encode/decode cycle
        through the RLNC layer — the end-to-end telemetry pipeline."""
        from repro.coding.block import SegmentDescriptor, make_source_blocks
        from repro.coding.rlnc import SegmentDecoder, recode

        codec = RecordCodec(block_size=128)
        records = [record(peer_id=i, rebuffering=i % 2 == 0) for i in range(9)]
        payload_blocks = codec.pack_stream(records)  # 3 blocks
        seg = SegmentDescriptor(
            segment_id=0, source_peer=0, size=len(payload_blocks), injected_at=0.0
        )
        source = make_source_blocks(seg, np.stack(payload_blocks))
        decoder = SegmentDecoder(seg)
        rng = np.random.default_rng(0)
        while not decoder.is_complete:
            decoder.offer(recode(source, rng), now=0.0)
        recovered = codec.unpack_stream(list(decoder.decode()))
        assert recovered == records


class TestSynthesize:
    def test_count_and_interval(self):
        rng = random.Random(0)
        records = synthesize_records(rng, peer_id=4, session_id=1, count=5,
                                     start_time=10.0, interval=2.0)
        assert len(records) == 5
        assert [r.timestamp for r in records] == [10.0, 12.0, 14.0, 16.0, 18.0]
        assert all(r.peer_id == 4 for r in records)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            synthesize_records(random.Random(0), 1, 1, -1)

    def test_degraded_records_look_degraded(self):
        rng = random.Random(1)
        healthy = synthesize_records(rng, 1, 1, 50, degraded=False)
        degraded = synthesize_records(rng, 1, 1, 50, degraded=True)
        mean_loss_h = sum(r.loss_fraction for r in healthy) / 50
        mean_loss_d = sum(r.loss_fraction for r in degraded) / 50
        assert mean_loss_d > mean_loss_h * 5
        assert any(r.rebuffering for r in degraded)
        assert not any(r.rebuffering for r in healthy)

    def test_all_serializable(self):
        rng = random.Random(2)
        for rec in synthesize_records(rng, 1, 1, 20, degraded=True):
            assert StatsRecord.from_bytes(rec.to_bytes()) == rec
