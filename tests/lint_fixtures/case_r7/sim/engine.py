"""Fixture: a probe hook invoked without its None guard."""


class Simulator:
    def __init__(self):
        self._probe = None

    def run_until(self, end):
        probe = self._probe
        probe()
        return end
