"""Fixture: a hook surface with one broken short-circuit."""


class FaultInjector:
    def __init__(self, plan, rng):
        self.plan = plan
        self._rng = rng
        self.polluters = frozenset()

    def drop_gossip(self):
        return self._rng.random() < self.plan.gossip_loss_rate

    def drop_pull(self):
        p = self.plan.pull_loss_rate
        return p > 0.0 and self._rng.random() < p
