"""Fixture trace module: one constant has drifted out of the registry."""

KIND_PING = "ping"
KIND_PONG = "pong"
KIND_DRIFT = "drift"

TRACE_KINDS = {
    KIND_PING: "a ping was sent",
    KIND_PONG: "a pong came back",
}
