"""Fixture: trace emission sites checked against TRACE_KINDS (R3)."""

from sim.trace import KIND_PING


def emit(tracer, now, dynamic_kind):
    tracer.record(now, KIND_PING)
    tracer.record(now, "pong")
    tracer.record(now, "gosip")
    tracer.record(now, dynamic_kind)
