"""Fixture: determinism hazards in a simulation path (R2)."""

import time


def drain(table):
    order = []
    active = {1, 2, 3}
    for item in active:
        order.append(item)
    for key, value in table.items():
        order.append((key, value))
    stamp = time.perf_counter()
    order.sort(key=lambda entry: id(entry))
    return order, stamp
