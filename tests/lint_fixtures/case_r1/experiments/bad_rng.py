"""Fixture: direct RNG calls outside sim/rng.py (R1)."""

import random

import numpy as np


def sample():
    rng = np.random.default_rng(7)
    values = rng.integers(0, 10, size=4)
    pick = random.choice([1, 2, 3])
    return values, pick
