"""Fixture: the RNG module itself is allowed to touch the libraries."""

import random


def make_stream(seed):
    return random.Random(seed)
