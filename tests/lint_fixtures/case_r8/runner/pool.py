"""Fixture: mutable state crossing the worker fork boundary."""
import multiprocessing

_RESULTS = {}
_LIMITS = (1, 2)

_COUNTER = 0


def bump():
    global _COUNTER
    _COUNTER += 1


def launch(spec):
    def worker():
        return spec

    proc = multiprocessing.Process(target=worker)
    lam = multiprocessing.Process(target=lambda: spec)
    return proc, lam
