"""Fixture: a read-only registry carries a justified waiver."""

# lint: ok(R8): frozen at import, never mutated
TABLE = {"a": 1}
