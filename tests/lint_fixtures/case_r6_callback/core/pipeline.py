"""Fixture: an unseeded RNG factory carried through a callback slot."""
import random


def fresh_stream():
    return random.Random()


def run_with(factory):
    rng = factory()
    return rng.random()


def main():
    return run_with(fresh_stream)
