"""Fixture: float accumulation in an analysis path (R4)."""


def mean(samples):
    total = sum(samples)
    exact = sum(range(10))  # lint: ok(R4): integer range, exact
    return total / len(samples), exact
