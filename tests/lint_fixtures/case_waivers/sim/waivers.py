"""Fixture: waiver syntax handling (justified, bare, unknown rule)."""


def spin():
    out = []
    for item in {1, 2}:  # lint: ok(R2): two-element demo set, order immaterial
        out.append(item)
    for item in {3, 4}:  # lint: ok(R2)
        out.append(item)
    for item in {5, 6}:  # lint: ok(R9): no such rule
        out.append(item)
    return out
