"""Fixture: cross-module laundering of an unseeded RNG."""
from sim.rng import SeedSequenceRegistry, ambient


class Worker:
    def __init__(self, rng):
        self._rng = rng

    def step(self):
        return self._rng.random()


def build():
    seeds = SeedSequenceRegistry()
    good = Worker(rng=seeds.python("worker"))
    bad = Worker(rng=ambient())
    return good, bad
