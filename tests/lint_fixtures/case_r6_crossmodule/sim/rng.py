"""Fixture: the registry plus an unseeded taint-origin helper."""
import random


class SeedSequenceRegistry:
    def python(self, name):
        return random.Random(hash(name))

    def spawn(self, name):
        return SeedSequenceRegistry()


def ambient():
    return random.Random()
