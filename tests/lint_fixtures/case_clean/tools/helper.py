"""Fixture: hazards outside every rule scope must not be flagged."""


def tally(counters):
    # sum() is fine here: tools/ is not a metrics path (R4 scope).
    total = sum(counters)
    # set iteration is fine here: tools/ is not a hot path (R2 scope).
    seen = {1, 2, 3}
    return total, [entry for entry in seen]
