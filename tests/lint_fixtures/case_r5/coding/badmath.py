"""Fixture: native arithmetic on GF(256)-named data (R5)."""


def combine(coefficients, other_coeffs, scale):
    mixed = coefficients + other_coeffs
    scaled = coefficients * scale
    xored = coefficients ^ other_coeffs
    coefficients += other_coeffs
    return mixed, scaled, xored, coefficients
