"""Tests for the public theory-validation helper."""

import pytest

from repro.analysis.validation import (
    DEFAULT_TOLERANCES,
    MetricCheck,
    ValidationResult,
    validate_report,
)
from repro.core.params import Parameters
from repro.core.system import CollectionSystem


def params(**overrides):
    defaults = dict(
        n_peers=120,
        arrival_rate=10.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=4.0,
        segment_size=8,
        n_servers=3,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


class TestMetricCheck:
    def test_pass_fail(self):
        ok = MetricCheck("x", 1.0, 1.05, relative_error=0.05, tolerance=0.1)
        bad = MetricCheck("x", 1.0, 2.0, relative_error=0.5, tolerance=0.1)
        assert ok.passed and not bad.passed
        assert "ok" in str(ok) and "MISMATCH" in str(bad)


class TestValidateReport:
    def run_and_validate(self, config=None, **kwargs):
        config = config or params()
        report = CollectionSystem(config, seed=5).run(10.0, 14.0)
        return validate_report(report, config, **kwargs)

    def test_clean_run_passes(self):
        result = self.run_and_validate()
        assert result.applicable
        assert result.passed, result.summary()
        assert set(result.checks) == set(DEFAULT_TOLERANCES)
        assert not result.failures()

    def test_summary_is_readable(self):
        result = self.run_and_validate()
        text = result.summary()
        assert "occupancy" in text and "throughput" in text

    def test_tight_tolerance_fails(self):
        result = self.run_and_validate(
            tolerances={"saved_blocks": 1e-6}
        )
        assert not result.passed
        assert "saved_blocks" in result.failures()

    def test_unknown_tolerance_key_rejected(self):
        with pytest.raises(ValueError):
            self.run_and_validate(tolerances={"velocity": 0.1})

    def test_churn_not_applicable(self):
        config = params(mean_lifetime=3.0)
        report = CollectionSystem(config, seed=5).run(4.0, 6.0)
        result = validate_report(report, config)
        assert not result.applicable
        assert not result.passed
        assert "churn" in result.reason

    def test_uniform_selection_not_applicable(self):
        config = params(segment_selection="uniform")
        report = CollectionSystem(config, seed=5).run(4.0, 6.0)
        result = validate_report(report, config)
        assert not result.applicable
        assert "proportional" in result.reason

    def test_nonrandom_policy_not_applicable(self):
        config = params(pull_policy="greedy-completion")
        report = CollectionSystem(config, seed=5).run(4.0, 6.0)
        result = validate_report(report, config)
        assert not result.applicable
        assert "coupon-collector" in result.reason

    def test_near_zero_prediction_uses_absolute_scale(self):
        """z0 ~ 0 must not fail on a 0-vs-1e-13 relative comparison."""
        result = self.run_and_validate()
        check = result.checks["empty_fraction"]
        assert check.predicted < 1e-6
        assert check.passed

    def test_validation_result_dataclass(self):
        empty = ValidationResult(checks={}, applicable=True)
        assert empty.passed  # vacuously
