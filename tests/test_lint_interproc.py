"""Goldens and integration tests for the interprocedural lint passes.

Covers the R6 provenance pass (cross-module and callback laundering),
the R7 neutrality prover (violations *and* the certificate list), the
R8 worker-boundary pass, the SARIF emitter, the incremental cache
(round-trip, invalidation, anti-poisoning), and the seeded-violation
positive controls.  Fixture goldens pin exact (rule, path, line)
triples, same discipline as ``test_lint.py``.
"""

import json
from pathlib import Path

from repro.lint import run_lint
from repro.lint.__main__ import main as lint_main
from repro.lint.cache import (
    load_cache,
    run_lint_incremental,
)
from repro.lint.mutants import MUTANTS, run_self_test
from repro.lint.sarif import report_to_sarif

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_SRC = Path(__file__).parent.parent / "src" / "repro"


def lint_case(name):
    root = FIXTURES / name
    return run_lint([root], root=root)


def triples(findings, rule=None):
    return sorted(
        (f.rule, f.path, f.line)
        for f in findings
        if rule is None or f.rule == rule
    )


class TestR6Provenance:
    def test_cross_module_laundering(self):
        """A helper-returned RNG is flagged at the draw AND the hand-off."""
        report = lint_case("case_r6_crossmodule")
        assert triples(report.findings) == [
            ("R6", "core/engine.py", 10),  # draw on the smuggled stream
            ("R6", "core/engine.py", 16),  # ambient() into the rng param
        ]
        assert report.problems == []
        messages = {f.line: f.message for f in report.findings}
        assert "unseeded provenance" in messages[10]
        assert "parameter 'rng'" in messages[16]

    def test_registry_substream_is_not_flagged(self):
        """The blessed seeds.python(...) hand-off in the same fixture."""
        report = lint_case("case_r6_crossmodule")
        assert all(f.line != 15 for f in report.findings)

    def test_callback_carried_taint(self):
        """A factory passed as a callback taints the invoking scope."""
        report = lint_case("case_r6_callback")
        assert triples(report.findings, rule="R6") == [
            ("R6", "core/pipeline.py", 11)
        ]
        # the raw construction inside the factory is R1's finding, not R6's
        assert triples(report.findings, rule="R1") == [
            ("R1", "core/pipeline.py", 6)
        ]


class TestR7Neutrality:
    def test_guard_dropped_and_unguarded_probe(self):
        report = lint_case("case_r7")
        assert triples(report.findings) == [
            ("R7", "faults/injector.py", 11),  # rng draw, no short-circuit
            ("R7", "sim/engine.py", 10),  # probe() without None guard
        ]
        messages = {f.path: f.message for f in report.findings}
        assert "RNG draw" in messages["faults/injector.py"]
        assert "hook invocation" in messages["sim/engine.py"]

    def test_unsafe_surfaces_earn_no_certificates(self):
        report = lint_case("case_r7")
        assert report.certified == []

    def test_shipped_tree_is_fully_certified(self):
        """Acceptance: R7 proves the real hook surfaces null-plan neutral."""
        report = run_lint([REPO_SRC], root=REPO_SRC.parent)
        assert triples(report.findings, rule="R7") == []
        surfaces = {c.split(".")[0] for c in report.certified}
        assert surfaces == {
            "FaultInjector",
            "AdversaryInjector",
            "FastFaultMasks",
            "FastAdversaryMasks",
            "Simulator",
        }
        assert "Simulator.run_until: neutral under null plan" in (
            report.certified
        )
        assert any(c.startswith("FaultInjector.drop_gossip") for c in report.certified)
        assert any(
            c.startswith("FastFaultMasks.gossip_loss_mask")
            for c in report.certified
        )
        assert any(
            c.startswith("FastAdversaryMasks._sample_roles")
            for c in report.certified
        )


class TestR8WorkerBoundary:
    def test_fork_boundary_captures(self):
        report = lint_case("case_r8")
        assert triples(report.findings) == [
            ("R8", "runner/pool.py", 4),  # module-level mutable dict
            ("R8", "runner/pool.py", 11),  # global rebinding
            ("R8", "runner/pool.py", 19),  # nested def as process target
            ("R8", "runner/pool.py", 20),  # lambda as process target
        ]
        # immutable module constants pass (the tuple and the int)
        assert all(f.line not in (5, 7) for f in report.findings)

    def test_waived_readonly_registry(self):
        report = lint_case("case_r8")
        assert triples(report.waived) == [("R8", "chaos/registry.py", 4)]
        assert report.waived[0].justification == (
            "frozen at import, never mutated"
        )
        assert report.problems == []


class TestSarif:
    def test_log_shape_and_suppressions(self):
        report = lint_case("case_r8")
        log = report_to_sarif(report)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert len(rule_ids) == len(set(rule_ids))
        assert {"R6", "R7", "R8"} <= set(rule_ids)
        results = run["results"]
        suppressed = [r for r in results if "suppressions" in r]
        assert len(results) == 5 and len(suppressed) == 1
        assert suppressed[0]["suppressions"][0]["kind"] == "inSource"
        assert suppressed[0]["suppressions"][0]["justification"] == (
            "frozen at import, never mutated"
        )
        for result in results:
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_certificates_ride_in_properties(self):
        report = run_lint([REPO_SRC], root=REPO_SRC.parent)
        log = report_to_sarif(report)
        certified = log["runs"][0]["properties"]["certified"]
        assert certified == report.certified
        assert len(certified) >= 3

    def test_cli_writes_valid_json(self, tmp_path):
        out = tmp_path / "lint.sarif"
        code = lint_main(
            ["--quiet", "--sarif", str(out), str(FIXTURES / "case_clean")]
        )
        assert code == 0
        log = json.loads(out.read_text(encoding="utf-8"))
        assert log["runs"][0]["results"] == []


class TestIncrementalCache:
    def _tree(self, tmp_path):
        root = tmp_path / "tree"
        (root / "experiments").mkdir(parents=True)
        offender = root / "experiments" / "bad.py"
        offender.write_text(
            "import random\n\n\ndef wire():\n"
            "    rng = random.Random(1234)\n"
            "    return rng.random()\n",
            encoding="utf-8",
        )
        (root / "clean.py").write_text("VALUE = 7\n", encoding="utf-8")
        return root, offender

    def test_round_trip_replays_identical_report(self, tmp_path):
        root, _ = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        first, stats1 = run_lint_incremental(
            [root], root=root, cache_path=cache
        )
        assert stats1 == {
            "ran": 2,
            "cached": 0,
            "skipped": 0,
            "project_cached": False,
        }
        second, stats2 = run_lint_incremental(
            [root], root=root, cache_path=cache
        )
        assert stats2 == {
            "ran": 0,
            "cached": 2,
            "skipped": 0,
            "project_cached": True,
        }
        assert second.to_json() == first.to_json()

    def test_edited_file_reruns_and_updates(self, tmp_path):
        root, offender = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        run_lint_incremental([root], root=root, cache_path=cache)
        offender.write_text("VALUE = 8\n", encoding="utf-8")
        report, stats = run_lint_incremental(
            [root], root=root, cache_path=cache
        )
        assert stats["ran"] == 1 and stats["cached"] == 1
        assert report.findings == []

    def test_scoped_run_without_cache_skips_but_never_poisons(
        self, tmp_path
    ):
        root, _ = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        # scoped run, cold cache: the offender is skipped, not marked clean
        report, stats = run_lint_incremental(
            [root],
            root=root,
            cache_path=cache,
            changed={"clean.py"},
        )
        assert stats["skipped"] == 1 and stats["ran"] == 1
        # per-module rules never saw the offender (no R1)...
        assert all(f.rule != "R1" for f in report.findings)
        # ...but the project passes still scan the full tree (R6 fires)
        assert any(f.rule == "R6" for f in report.findings)
        data = load_cache(cache)
        assert data is None or "experiments/bad.py" not in data.get(
            "files", {}
        )
        # a later full run still reports the skipped file's R1
        full, _ = run_lint_incremental([root], root=root, cache_path=cache)
        assert ("R1", "experiments/bad.py") in {
            (f.rule, f.path) for f in full.findings
        }

    def test_corrupt_cache_is_ignored(self, tmp_path):
        root, _ = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        report, stats = run_lint_incremental(
            [root], root=root, cache_path=cache
        )
        assert stats["ran"] == 2
        assert {f.rule for f in report.findings} == {"R1", "R6"}

    def test_cli_cache_flag(self, tmp_path):
        root, _ = self._tree(tmp_path)
        cache = tmp_path / "cli-cache.json"
        assert (
            lint_main(["--quiet", "--cache", str(cache), str(root)]) == 1
        )
        assert load_cache(cache) is not None


class TestPositiveControls:
    def test_mutant_catalog_shape(self):
        assert {m.rule for m in MUTANTS} == {"R6", "R7", "R8"}
        names = [m.name for m in MUTANTS]
        assert len(names) == len(set(names))

    def test_all_seeded_violations_detected(self):
        """Acceptance: each mutant is caught by its rule in its file."""
        assert run_self_test(verbose=False) == 0

    def test_unknown_mutant_name_rejected(self):
        assert run_self_test(names=["no-such-mutant"], verbose=False) == 2
