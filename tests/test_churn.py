"""Tests for the replacement churn model."""

import math
import random

import pytest

from repro.sim.churn import ChurnModel
from repro.sim.engine import Simulator


def make_model(mean_lifetime, n_slots=10, on_replace=None, seed=0):
    sim = Simulator()
    replaced = []
    model = ChurnModel(
        sim=sim,
        rng=random.Random(seed),
        n_slots=n_slots,
        mean_lifetime=mean_lifetime,
        on_replace=on_replace or replaced.append,
    )
    return sim, model, replaced


class TestChurnModel:
    def test_disabled_when_lifetime_none(self):
        sim, model, replaced = make_model(None)
        model.start()
        sim.run_until(100.0)
        assert not model.enabled
        assert model.departures == 0
        assert not replaced

    def test_disabled_when_lifetime_inf(self):
        _, model, _ = make_model(math.inf)
        assert not model.enabled

    def test_sample_lifetime_disabled_raises(self):
        _, model, _ = make_model(None)
        with pytest.raises(ValueError):
            model.sample_lifetime()

    def test_departure_rate_matches_lifetime(self):
        sim, model, replaced = make_model(2.0, n_slots=50)
        model.start()
        sim.run_until(40.0)
        # expected departures = slots * horizon / L = 50 * 40 / 2 = 1000
        assert abs(model.departures - 1000) < 150
        assert len(replaced) == model.departures

    def test_every_slot_churns(self):
        sim, model, replaced = make_model(1.0, n_slots=8)
        model.start()
        sim.run_until(30.0)
        assert set(replaced) == set(range(8))

    def test_replacement_gets_fresh_lifetime(self):
        sim, model, replaced = make_model(0.5, n_slots=1)
        model.start()
        sim.run_until(20.0)
        # slot 0 must depart many times, not just once
        assert replaced.count(0) > 10

    def test_double_start_raises(self):
        _, model, _ = make_model(1.0)
        model.start()
        with pytest.raises(RuntimeError):
            model.start()

    def test_stop_cancels_pending(self):
        sim, model, replaced = make_model(1.0, n_slots=5)
        model.start()
        model.stop()
        sim.run_until(50.0)
        assert not replaced

    def test_drain_reports_count_and_is_idempotent(self):
        sim, model, replaced = make_model(1.0, n_slots=5)
        model.start()
        assert model.drain() == 5
        assert model.drain() == 0  # second drain finds nothing outstanding
        sim.run_until(50.0)
        assert not replaced
        # no dead handles: every cancelled entry was lazily collected
        assert sim.pending == 0

    def test_drain_mid_run_stops_future_departures(self):
        sim, model, replaced = make_model(0.5, n_slots=8)
        model.start()
        sim.run_until(5.0)
        before = model.departures
        assert before > 0
        assert model.drain() == 8  # every slot always has one armed clock
        sim.run_until(50.0)
        assert model.departures == before

    def test_force_depart_with_churn_enabled(self):
        sim, model, replaced = make_model(1000.0, n_slots=4)
        model.start()
        sim.run_until(1.0)
        model.force_depart(2)
        assert replaced == [2]
        assert model.departures == 1
        # the replacement got a fresh lifetime clock: all 4 slots still armed
        assert model.drain() == 4

    def test_force_depart_with_churn_disabled(self):
        sim, model, replaced = make_model(None, n_slots=4)
        model.start()
        model.force_depart(1)
        model.force_depart(1)
        assert replaced == [1, 1]
        assert model.departures == 2
        sim.run_until(50.0)
        # no lifetime clocks were armed for the replacements
        assert model.drain() == 0

    def test_force_depart_bad_slot_raises(self):
        _, model, _ = make_model(1.0, n_slots=3)
        model.start()
        with pytest.raises(ValueError):
            model.force_depart(3)
        with pytest.raises(ValueError):
            model.force_depart(-1)

    def test_lifetimes_exponential(self):
        _, model, _ = make_model(3.0, seed=9)
        samples = [model.sample_lifetime() for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert abs(mean - 3.0) < 0.2
        var = sum((x - mean) ** 2 for x in samples) / len(samples)
        assert abs(math.sqrt(var) / mean - 1.0) < 0.1  # CV of exponential = 1

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ChurnModel(sim, random.Random(0), 0, 1.0, lambda s: None)
        with pytest.raises(ValueError):
            ChurnModel(sim, random.Random(0), 5, -1.0, lambda s: None)
