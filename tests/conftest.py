"""Suite-wide pytest configuration.

Switches on the end-of-phase invariant sweep for every simulation the test
suite runs: with ``REPRO_AUTO_CONSISTENCY`` set,
:meth:`repro.core.system.CollectionSystem.run_phase` finishes by calling
``consistency_check()`` (which delegates to the chaos layer's end-state
monitors), so *any* test that advances a system through a measurement
window also audits block conservation, buffer caps, peer tracking, and
saved-segment accounting at teardown — for free.  Normal (non-pytest) runs
leave the variable unset and pay nothing.
"""

import os


def pytest_configure(config: object) -> None:
    del config
    os.environ.setdefault("REPRO_AUTO_CONSISTENCY", "1")
