"""Tests for Theorems 1-4 and the combined analyze() entry point."""

import math

import pytest

from repro.analysis.ode import CollectionODE
from repro.analysis.theorems import (
    analyze,
    poisson_degree_distribution,
    solve_z0_fixed_point,
    theorem1_storage,
    theorem2_throughput,
    theorem2_throughput_s1,
    theorem3_block_delay,
    theorem4_saved_data,
)


class TestFixedPoint:
    def test_satisfies_equation(self):
        lam, mu, gamma = 2.0, 3.0, 1.0
        z0 = solve_z0_fixed_point(lam, mu, gamma)
        assert z0 == pytest.approx(
            math.exp(-(1 - z0) * mu / gamma - lam / gamma), abs=1e-10
        )

    def test_bounds(self):
        assert 0.0 < solve_z0_fixed_point(0.1, 0.1, 1.0) < 1.0
        assert solve_z0_fixed_point(50.0, 10.0, 1.0) < 1e-10

    def test_no_gossip_reduces_to_mm_infty(self):
        # mu = 0: z0 = e^(-lambda/gamma), the M/M/inf empty probability
        z0 = solve_z0_fixed_point(3.0, 0.0, 1.0)
        assert z0 == pytest.approx(math.exp(-3.0))


class TestTheorem1:
    def test_overhead_bounded_by_mu_over_gamma(self):
        result = theorem1_storage(8.0, 10.0, 2.0)
        assert result.overhead < result.overhead_bound
        assert result.within_bound

    def test_occupancy_formula(self):
        result = theorem1_storage(8.0, 10.0, 2.0)
        expected = (1 - result.z0) * 10.0 / 2.0 + 8.0 / 2.0
        assert result.occupancy == pytest.approx(expected)

    def test_matches_ode_steady_state(self):
        result = theorem1_storage(8.0, 6.0, 1.0)
        steady = CollectionODE(8.0, 6.0, 1.0, 1, 2.0).steady_state()
        assert result.occupancy == pytest.approx(steady.e, rel=0.01)
        assert result.z0 == pytest.approx(steady.z0, abs=1e-3)

    def test_poisson_degree_distribution(self):
        result = theorem1_storage(2.0, 2.0, 1.0)
        z = poisson_degree_distribution(result.occupancy, result.z0, 80)
        assert z.sum() == pytest.approx(1.0, abs=1e-6)
        assert z[0] == result.z0
        with pytest.raises(ValueError):
            poisson_degree_distribution(1.0, 0.3, -1)


class TestTheorem2:
    def test_closed_form_matches_ode_for_s1(self):
        """The quadratic-root expression and the m-system steady state are
        two independent derivations of the same quantity."""
        for c in (2.0, 4.0):
            closed = theorem2_throughput_s1(8.0, 6.0, 1.0, c)
            steady = CollectionODE(8.0, 6.0, 1.0, 1, c).steady_state()
            from_ode = theorem2_throughput(steady, 8.0, c, 1)
            assert closed.normalized_throughput == pytest.approx(
                from_ode.normalized_throughput, rel=0.01
            )

    def test_throughput_increases_with_s(self):
        values = []
        for s in (1, 2, 5, 10, 20):
            steady = CollectionODE(20.0, 10.0, 1.0, s, 8.0).steady_state()
            values.append(
                theorem2_throughput(steady, 20.0, 8.0, s).normalized_throughput
            )
        assert values == sorted(values)

    def test_throughput_approaches_capacity(self):
        steady = CollectionODE(20.0, 10.0, 1.0, 30, 8.0).steady_state()
        result = theorem2_throughput(steady, 20.0, 8.0, 30)
        assert result.normalized_throughput == pytest.approx(0.4, abs=0.005)
        assert result.efficiency > 0.99

    def test_gap_to_capacity_wider_for_larger_c(self):
        """The paper's closing Fig. 3 observation."""
        gaps = []
        for c in (4.0, 8.0, 12.0):
            steady = CollectionODE(20.0, 10.0, 1.0, 5, c).steady_state()
            result = theorem2_throughput(steady, 20.0, c, 5)
            gaps.append(
                (result.capacity_ratio - result.normalized_throughput)
                / result.capacity_ratio
            )
        assert gaps == sorted(gaps)

    def test_efficiency_bounds(self):
        result = theorem2_throughput_s1(20.0, 10.0, 1.0, 8.0)
        assert 0.0 < result.efficiency <= 1.0
        assert 0.0 < result.normalized_throughput <= 1.0

    def test_fraction_of_capacity(self):
        result = theorem2_throughput_s1(20.0, 10.0, 1.0, 8.0)
        assert 0.0 < result.fraction_of_capacity <= 1.0


class TestTheorem3:
    def test_positive_for_coded_regime(self):
        steady = CollectionODE(20.0, 10.0, 1.0, 5, 8.0).steady_state()
        throughput = theorem2_throughput(steady, 20.0, 8.0, 5)
        delay = theorem3_block_delay(
            steady, 20.0, throughput.normalized_throughput, 5
        )
        assert delay.block_delay > 0
        assert delay.segment_delay == pytest.approx(delay.block_delay * 5)
        assert delay.segment_lifetime > delay.good_time

    def test_delay_peaks_at_small_s_then_decays(self):
        """The paper's Fig. 5 shape: a hump at small coded s."""
        delays = {}
        for s in (2, 5, 20, 30):
            steady = CollectionODE(20.0, 10.0, 1.0, s, 8.0).steady_state()
            sigma = theorem2_throughput(
                steady, 20.0, 8.0, s
            ).normalized_throughput
            delays[s] = theorem3_block_delay(steady, 20.0, sigma, s).block_delay
        assert delays[5] > delays[2] or delays[5] > delays[20]
        assert delays[20] > delays[30]
        assert delays[5] > delays[30]

    def test_zero_throughput_rejected(self):
        steady = CollectionODE(8.0, 6.0, 1.0, 1, 2.0).steady_state()
        with pytest.raises(ValueError):
            theorem3_block_delay(steady, 8.0, 0.0, 1)


class TestTheorem4:
    def test_saved_decreases_with_s(self):
        """The paper's Fig. 6 shape."""
        values = []
        for s in (1, 2, 5, 10, 20):
            steady = CollectionODE(20.0, 10.0, 1.0, s, 8.0).steady_state()
            values.append(theorem4_saved_data(steady, s).saved_blocks_per_peer)
        assert values == sorted(values, reverse=True)
        assert all(v > 0 for v in values)

    def test_saved_shrinks_with_capacity(self):
        """More server capacity reconstructs more, leaving less saved."""
        small_c = theorem4_saved_data(
            CollectionODE(20.0, 10.0, 1.0, 5, 4.0).steady_state(), 5
        ).saved_blocks_per_peer
        large_c = theorem4_saved_data(
            CollectionODE(20.0, 10.0, 1.0, 5, 12.0).steady_state(), 5
        ).saved_blocks_per_peer
        assert large_c < small_c

    def test_component_consistency(self):
        steady = CollectionODE(8.0, 6.0, 1.0, 2, 2.0).steady_state()
        result = theorem4_saved_data(steady, 2)
        assert result.reconstructed_segments_per_peer <= (
            result.decodable_segments_per_peer + 1e-9
        )
        assert result.saved_blocks_per_peer == pytest.approx(
            2
            * (
                result.decodable_segments_per_peer
                - result.reconstructed_segments_per_peer
            ),
            abs=1e-9,
        )


class TestAnalyze:
    def test_bundles_all_theorems(self):
        point = analyze(8.0, 6.0, 1.0, 2, 2.0)
        assert point.storage.occupancy == pytest.approx(point.steady.e, rel=0.02)
        assert 0 < point.throughput.normalized_throughput <= 1
        assert point.saved.saved_blocks_per_peer >= 0
        assert point.delay.segment_delay == point.delay.block_delay * 2
