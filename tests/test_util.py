"""Tests for the utility layer: RandomizedSet, tables, summary, validation."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.randomset import RandomizedSet
from repro.util.summary import (
    Summary,
    mean,
    merge_by_key,
    percentile,
    relative_error,
    summarize,
)
from repro.util.tables import format_cell, render_series, render_table
from repro.util.validation import (
    require_in_range,
    require_nonnegative,
    require_nonnegative_int,
    require_positive,
    require_positive_int,
    require_probability,
    require_rate,
)


class TestRandomizedSet:
    def test_add_and_contains(self):
        rs = RandomizedSet()
        assert rs.add(1)
        assert not rs.add(1)
        assert 1 in rs and 2 not in rs
        assert len(rs) == 1

    def test_discard(self):
        rs = RandomizedSet([1, 2, 3])
        assert rs.discard(2)
        assert not rs.discard(2)
        assert sorted(rs) == [1, 3]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            RandomizedSet().remove(5)

    def test_sample_empty_raises(self):
        with pytest.raises(IndexError):
            RandomizedSet().sample(random.Random(0))

    def test_sample_covers_all_members(self):
        rs = RandomizedSet(list(range(10)))
        rng = random.Random(1)
        seen = {rs.sample(rng) for _ in range(500)}
        assert seen == set(range(10))

    def test_sample_roughly_uniform(self):
        rs = RandomizedSet(["a", "b", "c", "d"])
        rng = random.Random(2)
        counts = {}
        trials = 8000
        for _ in range(trials):
            counts[rs.sample(rng)] = counts.get(rs.sample(rng), 0) + 1
        for value in counts.values():
            assert abs(value / trials - 0.25) < 0.05

    def test_sample_with_numpy_generator(self):
        import numpy as np

        rs = RandomizedSet([10, 20])
        rng = np.random.default_rng(0)
        assert rs.sample(rng) in (10, 20)

    def test_sample_excluding(self):
        rs = RandomizedSet([1, 2])
        rng = random.Random(3)
        for _ in range(20):
            assert rs.sample_excluding(rng, 1) == 2

    def test_sample_excluding_only_member(self):
        rs = RandomizedSet([1])
        assert rs.sample_excluding(random.Random(0), 1) is None
        assert RandomizedSet().sample_excluding(random.Random(0), 1) is None

    def test_bool_and_repr(self):
        assert not RandomizedSet()
        rs = RandomizedSet([1])
        assert rs
        assert "1" in repr(rs)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 20)), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50)
    def test_model_based_against_builtin_set(self, operations):
        """RandomizedSet must behave exactly like a plain set under any
        sequence of add/discard operations."""
        rs = RandomizedSet()
        model = set()
        for is_add, value in operations:
            if is_add:
                assert rs.add(value) == (value not in model)
                model.add(value)
            else:
                assert rs.discard(value) == (value in model)
                model.discard(value)
            assert len(rs) == len(model)
            assert set(rs) == model


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(1.23456) == "1.2346"
        assert format_cell("x") == "x"
        assert format_cell(7) == "7"

    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_render_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_table_title(self):
        table = render_table(["a"], [[1]], title="Title")
        assert table.startswith("Title\n")

    def test_render_series(self):
        text = render_series("x", [1, 2], [("y", [3.0, 4.0])])
        assert "x" in text and "y" in text and "3.0000" in text

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], [("y", [3.0])])


class TestSummary:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.n == 3
        assert summary.minimum == 1.0 and summary.maximum == 3.0
        assert math.isclose(summary.std, 1.0)

    def test_summarize_single(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.stderr == 0.0
        assert summary.ci95() == 0.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_mean(self):
        assert mean([2, 4]) == 3.0
        with pytest.raises(ValueError):
            mean([])

    def test_merge_by_key(self):
        merged = merge_by_key([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert merged["a"].mean == 2.0
        assert merged["b"].n == 1

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert math.isinf(relative_error(1.0, 0.0))

    def test_str_format(self):
        assert "n=2" in str(summarize([1.0, 2.0]))

    def test_percentile_basics(self):
        assert percentile([5.0], 50.0) == 5.0
        assert percentile([1.0, 3.0], 50.0) == 2.0
        data = [4.0, 1.0, 3.0, 2.0]  # unsorted input is fine
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 4.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestValidation:
    def test_require_positive(self):
        assert require_positive("x", 1.5) == 1.5
        for bad in (0, -1, math.nan, math.inf, "a", True, None):
            with pytest.raises(ValueError):
                require_positive("x", bad)

    def test_require_nonnegative(self):
        assert require_nonnegative("x", 0) == 0.0
        with pytest.raises(ValueError):
            require_nonnegative("x", -0.1)

    def test_require_positive_int(self):
        assert require_positive_int("x", 3) == 3
        for bad in (0, -1, 1.5, True, "3"):
            with pytest.raises(ValueError):
                require_positive_int("x", bad)

    def test_require_nonnegative_int(self):
        assert require_nonnegative_int("x", 0) == 0
        with pytest.raises(ValueError):
            require_nonnegative_int("x", -1)

    def test_require_probability(self):
        assert require_probability("p", 0.5) == 0.5
        for bad in (-0.01, 1.01):
            with pytest.raises(ValueError):
                require_probability("p", bad)

    def test_require_rate(self):
        assert require_rate("r", 2.0) == 2.0
        assert require_rate("r", 0.0, allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            require_rate("r", 0.0)

    def test_require_in_range(self):
        assert require_in_range("x", 5, low=0, high=10) == 5.0
        with pytest.raises(ValueError):
            require_in_range("x", -1, low=0)
        with pytest.raises(ValueError):
            require_in_range("x", 11, high=10)

    def test_error_messages_name_the_field(self):
        with pytest.raises(ValueError, match="gossip_rate"):
            require_positive("gossip_rate", -1)
