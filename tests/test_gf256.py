"""Unit and property-based tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.coding import gf256

symbols = st.integers(min_value=0, max_value=255)
nonzero_symbols = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_table_cycles_at_255(self):
        assert gf256.EXP_TABLE[0] == 1
        assert gf256.EXP_TABLE[255] == gf256.EXP_TABLE[0]

    def test_log_exp_roundtrip(self):
        for value in range(1, 256):
            assert gf256.EXP_TABLE[gf256.LOG_TABLE[value]] == value

    def test_exp_log_roundtrip(self):
        for power in range(255):
            assert gf256.LOG_TABLE[gf256.EXP_TABLE[power]] == power

    def test_exp_values_are_field_elements(self):
        assert gf256.EXP_TABLE[:255].min() >= 1
        assert gf256.EXP_TABLE[:255].max() <= 255

    def test_exp_values_distinct(self):
        assert len(set(int(v) for v in gf256.EXP_TABLE[:255])) == 255


class TestScalarOps:
    def test_add_is_xor(self):
        assert gf256.add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self):
        assert gf256.sub(200, 77) == gf256.add(200, 77)

    def test_mul_by_zero(self):
        assert gf256.mul(0, 123) == 0
        assert gf256.mul(123, 0) == 0

    def test_mul_by_one(self):
        for value in (1, 2, 77, 255):
            assert gf256.mul(1, value) == value

    def test_known_product(self):
        # 0x53 * 0xCA = 0x01 in the AES field (classic test vector).
        assert gf256.mul(0x53, 0xCA) == 0x01

    def test_inv_of_known_pair(self):
        assert gf256.inv(0x53) == 0xCA

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.inv(0)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.div(5, 0)

    def test_div_zero_numerator(self):
        assert gf256.div(0, 7) == 0

    def test_power_zero_exponent(self):
        assert gf256.power(17, 0) == 1
        assert gf256.power(0, 0) == 1

    def test_power_of_zero(self):
        assert gf256.power(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf256.power(0, -1)

    def test_power_matches_repeated_mul(self):
        value = 1
        for exponent in range(1, 10):
            value = gf256.mul(value, 0x1D)
            assert gf256.power(0x1D, exponent) == value

    def test_power_negative(self):
        assert gf256.power(7, -1) == gf256.inv(7)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gf256.add(256, 0)
        with pytest.raises(ValueError):
            gf256.mul(-1, 3)
        with pytest.raises(ValueError):
            gf256.validate_symbol(1.5)
        with pytest.raises(ValueError):
            gf256.validate_symbol(True)


class TestFieldAxioms:
    @given(symbols, symbols)
    def test_add_commutative(self, a, b):
        assert gf256.add(a, b) == gf256.add(b, a)

    @given(symbols, symbols)
    def test_mul_commutative(self, a, b):
        assert gf256.mul(a, b) == gf256.mul(b, a)

    @given(symbols, symbols, symbols)
    def test_mul_associative(self, a, b, c):
        assert gf256.mul(gf256.mul(a, b), c) == gf256.mul(a, gf256.mul(b, c))

    @given(symbols, symbols, symbols)
    def test_distributive(self, a, b, c):
        left = gf256.mul(a, gf256.add(b, c))
        right = gf256.add(gf256.mul(a, b), gf256.mul(a, c))
        assert left == right

    @given(nonzero_symbols)
    def test_inverse_cancels(self, a):
        assert gf256.mul(a, gf256.inv(a)) == 1

    @given(symbols, nonzero_symbols)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf256.div(a, b) == gf256.mul(a, gf256.inv(b))

    @given(symbols)
    def test_additive_self_inverse(self, a):
        assert gf256.add(a, a) == 0


class TestVectorOps:
    def test_as_vector_validates_range(self):
        with pytest.raises(ValueError):
            gf256.as_vector([0, 300])

    def test_as_vector_copies(self):
        source = np.array([1, 2, 3], dtype=np.uint8)
        out = gf256.as_vector(source)
        out[0] = 99
        assert source[0] == 1

    def test_vec_add_is_elementwise_xor(self):
        a = gf256.as_vector([1, 2, 3])
        b = gf256.as_vector([3, 2, 1])
        assert list(gf256.vec_add(a, b)) == [2, 0, 2]

    def test_vec_scale_zero_scalar(self):
        a = gf256.as_vector([5, 6, 7])
        assert not gf256.vec_scale(a, 0).any()

    def test_vec_scale_one_scalar_copies(self):
        a = gf256.as_vector([5, 6, 7])
        out = gf256.vec_scale(a, 1)
        assert list(out) == [5, 6, 7]
        out[0] = 0
        assert a[0] == 5

    @given(st.lists(symbols, min_size=1, max_size=16), nonzero_symbols)
    def test_vec_scale_matches_scalar_mul(self, values, scalar):
        vector = gf256.as_vector(values)
        scaled = gf256.vec_scale(vector, scalar)
        for index, value in enumerate(values):
            assert scaled[index] == gf256.mul(value, scalar)

    @given(st.lists(symbols, min_size=1, max_size=12), symbols)
    def test_vec_addmul_matches_manual(self, values, scalar):
        accumulator = gf256.as_vector(values)
        vector = gf256.as_vector(list(reversed(values)))
        expected = [
            gf256.add(a, gf256.mul(v, scalar))
            for a, v in zip(values, reversed(values))
        ]
        gf256.vec_addmul(accumulator, vector, scalar)
        assert list(accumulator) == expected

    def test_vec_addmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf256.vec_addmul(
                gf256.as_vector([1, 2]), gf256.as_vector([1, 2, 3]), 1
            )

    def test_vec_mul_elementwise(self):
        a = gf256.as_vector([0x53, 0, 1])
        b = gf256.as_vector([0xCA, 5, 9])
        assert list(gf256.vec_mul(a, b)) == [1, 0, 9]

    def test_mat_vec_identity(self):
        identity = np.eye(3, dtype=np.uint8)
        vector = gf256.as_vector([9, 8, 7])
        assert list(gf256.mat_vec(identity, vector)) == [9, 8, 7]

    def test_mat_vec_dimension_mismatch(self):
        with pytest.raises(ValueError):
            gf256.mat_vec(np.eye(3, dtype=np.uint8), gf256.as_vector([1, 2]))

    def test_mat_mul_identity(self):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 256, size=(4, 4), dtype=np.uint8)
        identity = np.eye(4, dtype=np.uint8)
        assert np.array_equal(gf256.mat_mul(matrix, identity), matrix)
        assert np.array_equal(gf256.mat_mul(identity, matrix), matrix)

    @given(st.integers(0, 2**32 - 1))
    def test_mat_mul_associates_with_mat_vec(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, size=(3, 3), dtype=np.uint8)
        b = rng.integers(0, 256, size=(3, 3), dtype=np.uint8)
        v = rng.integers(0, 256, size=3, dtype=np.uint8)
        left = gf256.mat_vec(gf256.mat_mul(a, b), v)
        right = gf256.mat_vec(a, gf256.mat_vec(b, v))
        assert np.array_equal(left, right)
