"""Tests for the adversary subsystem (plan, injector, defenses, system)."""

import random

import pytest

from repro.adversary import (
    AdversaryInjector,
    AdversaryPlan,
    OUTCOME_JUNK,
    OUTCOME_REDUNDANT,
    OUTCOME_USEFUL,
    PullSourceScorer,
    TARGET_UNIFORM,
)
from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.trace import Tracer


def params(adversary=None, **overrides):
    defaults = dict(
        n_peers=40,
        arrival_rate=6.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=3.0,
        segment_size=4,
        n_servers=2,
    )
    defaults.update(overrides)
    return Parameters(adversary=adversary, **defaults)


def make_injector(plan, n_slots=20, seed=0, tracer=None):
    sim = Simulator()
    metrics = MetricsCollector(
        n_peers=n_slots,
        arrival_rate=1.0,
        segment_size=1,
        normalized_capacity=1.0,
    )
    injector = AdversaryInjector(
        plan=plan,
        sim=sim,
        rng=random.Random(seed),
        n_slots=n_slots,
        metrics=metrics,
        tracer=tracer,
    )
    return sim, metrics, injector


def run_adversarial(plan, seed=3, warmup=2.0, duration=4.0, **overrides):
    system = CollectionSystem(params(adversary=plan, **overrides), seed=seed)
    report = system.run(warmup, duration)
    return system, report


class TestAdversaryPlan:
    def test_default_plan_is_null(self):
        plan = AdversaryPlan()
        assert plan.is_null
        assert plan.static_fraction == 0.0
        assert plan.describe() == "no adversaries"

    @pytest.mark.parametrize(
        "knob",
        ["liar_fraction", "freerider_fraction", "polluter_fraction",
         "sybil_fraction"],
    )
    def test_fractions_validated_with_field_and_value(self, knob):
        with pytest.raises(ValueError, match=knob):
            AdversaryPlan(**{knob: 1.5})
        with pytest.raises(ValueError, match="-0.1"):
            AdversaryPlan(**{knob: -0.1})

    def test_inflation_below_one_rejected(self):
        with pytest.raises(ValueError, match="liar_inflation"):
            AdversaryPlan(liar_fraction=0.1, liar_inflation=0.5)

    def test_targeting_validated(self):
        with pytest.raises(ValueError, match="polluter_targeting"):
            AdversaryPlan(polluter_fraction=0.1, polluter_targeting="bogus")

    def test_role_fractions_must_fit_one_population(self):
        with pytest.raises(ValueError, match="<= 1"):
            AdversaryPlan(
                liar_fraction=0.5, freerider_fraction=0.4,
                polluter_fraction=0.3,
            )

    def test_sybil_rate_requires_fraction(self):
        with pytest.raises(ValueError, match="sybil_fraction"):
            AdversaryPlan(sybil_rate=0.5)

    def test_describe_is_stable(self):
        plan = AdversaryPlan(
            liar_fraction=0.2,
            liar_inflation=8.0,
            freerider_fraction=0.1,
            polluter_fraction=0.1,
            sybil_rate=0.3,
            sybil_fraction=0.1,
        )
        assert plan.describe() == (
            "liars=0.2x8 freeriders=0.1 polluters=0.1(low-degree) "
            "sybils(rate=0.3,frac=0.1)"
        )
        assert AdversaryPlan(freerider_fraction=0.25).describe() == (
            "freeriders=0.25"
        )


class TestFaultPlanDescribe:
    """Satellite: FaultPlan.describe() is a stable one-liner too."""

    def test_describe_is_stable(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(
            gossip_loss_rate=0.25,
            pull_loss_rate=0.5,
            pollution_fraction=0.1,
            burst_rate=0.2,
            burst_fraction=0.3,
        )
        assert plan.describe() == (
            "loss(gossip=0.25,pull=0.5) pollution=0.1 "
            "bursts(rate=0.2,kill=0.3)"
        )


class TestInjectorRoles:
    def test_roles_are_disjoint_and_sized(self):
        plan = AdversaryPlan(
            liar_fraction=0.2, freerider_fraction=0.3, polluter_fraction=0.1
        )
        _, _, injector = make_injector(plan, n_slots=20)
        assert len(injector.liars) == 4
        assert len(injector.freeriders) == 6
        assert len(injector.polluters) == 2
        assert not injector.liars & injector.freeriders
        assert not injector.liars & injector.polluters
        assert not injector.freeriders & injector.polluters

    def test_tiny_fraction_rounds_up_to_one(self):
        plan = AdversaryPlan(liar_fraction=0.01)
        _, _, injector = make_injector(plan, n_slots=20)
        assert len(injector.liars) == 1

    def test_full_fraction_converts_everyone(self):
        plan = AdversaryPlan(freerider_fraction=1.0)
        _, _, injector = make_injector(plan, n_slots=12)
        assert injector.freeriders == frozenset(range(12))
        assert all(injector.suppress_gossip(s, 0) for s in range(12))

    def test_freeriders_serve_honest_blocks(self):
        plan = AdversaryPlan(freerider_fraction=0.5)
        _, _, injector = make_injector(plan, n_slots=10)
        for slot in injector.freeriders:
            assert not injector.serves_junk(slot, 0)
            assert injector.is_adversarial(slot, 0)

    def test_uniform_polluters_do_not_steer_segments(self):
        plan = AdversaryPlan(
            polluter_fraction=0.5, polluter_targeting=TARGET_UNIFORM
        )
        _, _, injector = make_injector(plan, n_slots=10)
        for slot in injector.polluters:
            assert injector.pollutes_gossip(slot)
            assert not injector.targets_low_degree(slot)


class TestInjectorCapture:
    def test_no_liars_never_touches_rng(self):
        plan = AdversaryPlan(freerider_fraction=0.5)
        _, _, injector = make_injector(plan, n_slots=10)
        state = injector._rng.getstate()
        for _ in range(50):
            assert injector.capture_pull() is None
        assert injector._rng.getstate() == state

    def test_capture_frequency_matches_inflation_model(self):
        plan = AdversaryPlan(liar_fraction=0.2, liar_inflation=8.0)
        _, _, injector = make_injector(plan, n_slots=20)
        k = len(injector.liars)
        expected = 8.0 * k / (8.0 * k + (20 - k))
        draws = 4000
        hits = sum(injector.capture_pull() is not None for _ in range(draws))
        assert hits / draws == pytest.approx(expected, abs=0.03)

    def test_captures_land_on_liar_slots(self):
        plan = AdversaryPlan(liar_fraction=0.25, liar_inflation=16.0)
        _, _, injector = make_injector(plan, n_slots=16)
        targets = {
            slot
            for slot in (injector.capture_pull() for _ in range(500))
            if slot is not None
        }
        assert targets  # inflation 16 over 4 liars captures often
        assert targets <= injector.liars

    def test_accept_capture_honors_trust(self):
        plan = AdversaryPlan(liar_fraction=0.2)
        _, _, injector = make_injector(plan, n_slots=10)
        assert injector.accept_capture(1.0)
        assert not injector.accept_capture(0.0)
        accepted = sum(injector.accept_capture(0.3) for _ in range(2000))
        assert accepted / 2000 == pytest.approx(0.3, abs=0.04)


class TestInjectorSybils:
    def test_start_without_bind_raises(self):
        plan = AdversaryPlan(sybil_rate=1.0, sybil_fraction=0.5)
        _, _, injector = make_injector(plan)
        with pytest.raises(RuntimeError, match="bind"):
            injector.start()

    def test_double_start_raises(self):
        plan = AdversaryPlan(freerider_fraction=0.5)
        _, _, injector = make_injector(plan)
        injector.start()
        with pytest.raises(RuntimeError, match="started"):
            injector.start()

    def test_sybil_lifecycle_rides_generations(self):
        plan = AdversaryPlan(sybil_rate=2.0, sybil_fraction=0.25)
        sim, _, injector = make_injector(plan, n_slots=8)
        generations = {slot: 0 for slot in range(8)}
        killed = []

        def kill(slots):
            for slot in slots:
                generations[slot] += 1
                killed.append(slot)

        injector.bind(kill_slots=kill, get_generation=generations.__getitem__)
        injector.start()
        sim.run_until(4.0)
        assert injector.sybil_bursts_fired > 0
        assert injector.sybil_burst_size() == 2
        assert injector.sybil_conversions == len(killed)
        # every active sybil identity is the post-replacement generation
        for slot in set(killed):
            if injector.is_sybil(slot, generations[slot]):
                assert injector.serves_junk(slot, generations[slot])
                assert injector.suppress_gossip(slot, generations[slot])
        # natural churn replacing the identity clears the mark
        before = injector.active_sybil_count()
        assert before > 0
        for slot in list(generations):
            generations[slot] += 1
        assert injector.active_sybil_count() == 0
        injector.stop()


class TestPullSourceScorer:
    def test_validation_names_field(self):
        with pytest.raises(ValueError, match="alpha"):
            PullSourceScorer(alpha=0.0)
        with pytest.raises(ValueError, match="threshold"):
            PullSourceScorer(threshold=1.5)
        with pytest.raises(ValueError, match="min_pulls"):
            PullSourceScorer(min_pulls=0)

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError, match="outcome"):
            PullSourceScorer().record(0, 0, "great")

    def test_junk_feed_quarantines_after_min_pulls(self):
        scorer = PullSourceScorer(alpha=0.25, threshold=0.25, min_pulls=8)
        flipped = [scorer.record(3, 0, OUTCOME_JUNK) for _ in range(12)]
        assert sum(flipped) == 1  # the transition is reported exactly once
        assert scorer.is_quarantined(3, 0)
        assert scorer.quarantined_identities() == [(3, 0)]
        assert scorer.quarantines == 1

    def test_honest_mixture_never_quarantines(self):
        """Scores fed only useful/redundant stay >= 0.5 > threshold."""
        scorer = PullSourceScorer()
        rng = random.Random(5)
        for pull in range(500):
            outcome = (
                OUTCOME_USEFUL if rng.random() < 0.5 else OUTCOME_REDUNDANT
            )
            assert not scorer.record(pull % 7, 0, outcome)
        assert scorer.quarantines == 0
        assert scorer.tracked_identities() == 7

    def test_admit_probation_probe(self):
        scorer = PullSourceScorer(min_pulls=4, probation_interval=3)
        for _ in range(6):
            scorer.record(1, 0, OUTCOME_JUNK)
        admits = [scorer.admit(1, 0) for _ in range(6)]
        assert admits == [False, False, True, False, False, True]

    def test_quarantine_lifts_after_probe_recovery(self):
        scorer = PullSourceScorer(alpha=0.5, min_pulls=2, threshold=0.25)
        for _ in range(6):
            scorer.record(2, 0, OUTCOME_JUNK)
        assert scorer.is_quarantined(2, 0)
        for _ in range(3):
            scorer.record(2, 0, OUTCOME_USEFUL)
        assert not scorer.is_quarantined(2, 0)
        assert scorer.admit(2, 0)

    def test_new_generation_is_a_fresh_identity(self):
        scorer = PullSourceScorer(min_pulls=2)
        for _ in range(6):
            scorer.record(4, 0, OUTCOME_JUNK)
        assert scorer.is_quarantined(4, 0)
        assert not scorer.is_quarantined(4, 1)
        assert scorer.admit(4, 1)
        assert scorer.trust(4, 1) == 1.0

    def test_trust_defaults_to_full_until_observed(self):
        scorer = PullSourceScorer(min_pulls=4)
        assert scorer.trust(9, 0) == 1.0
        for _ in range(4):
            scorer.record(9, 0, OUTCOME_JUNK)
        assert scorer.trust(9, 0) < 0.5

    def test_disabled_quarantine_only_tracks_trust(self):
        scorer = PullSourceScorer(min_pulls=2, quarantine=False)
        for _ in range(8):
            assert not scorer.record(6, 0, OUTCOME_JUNK)
        assert scorer.admit(6, 0)
        assert scorer.trust(6, 0) < 0.25


class TestParametersIntegration:
    def test_adversary_field_type_checked(self):
        with pytest.raises(ValueError, match="adversary"):
            params(adversary={"liar_fraction": 0.5})

    def test_null_plan_builds_no_injector(self):
        system = CollectionSystem(params(adversary=AdversaryPlan()), seed=1)
        assert system.adversary is None
        assert system.scorer is None

    def test_defense_knobs_build_scorer_without_adversary(self):
        system = CollectionSystem(params(pull_scoring=True), seed=1)
        assert system.adversary is None
        assert system.scorer is not None
        assert system.scorer.quarantine_enabled

    def test_discounting_only_scorer_never_quarantines(self):
        system = CollectionSystem(params(advert_discounting=True), seed=1)
        assert not system.scorer.quarantine_enabled


class TestSystemProperties:
    def test_null_plan_bitwise_neutral_under_monitors(self):
        """fraction=0.0 everywhere changes zero events vs no plan at all,
        even with chaos invariant monitors sweeping the run."""
        from repro.chaos.monitors import MonitorSuite, runtime_monitors

        def trace(plan, monitored):
            tracer = Tracer()
            system = CollectionSystem(
                params(adversary=plan), seed=7, tracer=tracer
            )
            if monitored:
                suite = MonitorSuite(
                    system, every=3, monitors=runtime_monitors(system)
                )
                with suite:
                    system.run(2.0, 4.0)
                    suite.check_now()
                assert suite.checks_run > 10
            else:
                system.run(2.0, 4.0)
            return [event.as_dict() for event in tracer.events]

        baseline = trace(None, monitored=False)
        assert trace(AdversaryPlan(), monitored=True) == baseline
        assert len(baseline) > 100

    def test_fully_adversarial_population_terminates(self):
        """fraction=1.0 (plus sybil bursts) must not livelock the system."""
        plan = AdversaryPlan(
            liar_fraction=0.5,
            freerider_fraction=0.5,
            sybil_rate=1.0,
            sybil_fraction=0.5,
        )
        system, report = run_adversarial(
            plan, mean_lifetime=4.0, pull_scoring=True, advert_discounting=True
        )
        assert report.pulls >= 0  # the run completed
        assert system.adversary.sybil_bursts_fired > 0
        system.consistency_check()

    def test_defenses_on_honest_population_no_false_quarantines(self):
        """Defenses enabled with zero adversaries must convict no one."""
        system = CollectionSystem(
            params(pull_scoring=True, advert_discounting=True), seed=11
        )
        system.run(2.0, 6.0)
        assert system.metrics.false_quarantines.total == 0
        assert system.metrics.slots_quarantined.total == 0
        assert system.metrics.pulls_quarantine_rejected.total == 0
        assert system.scorer.quarantines == 0
        assert system.scorer.tracked_identities() > 0  # it was watching

    def test_liars_degrade_and_scoring_recovers(self):
        plan = AdversaryPlan(liar_fraction=0.3, liar_inflation=8.0)
        kwargs = dict(seed=5, gossip_rate=4.0, arrival_rate=4.0)
        _, undefended = run_adversarial(plan, **kwargs)
        defended_system, defended = run_adversarial(
            plan, pull_scoring=True, advert_discounting=True, **kwargs
        )
        _, honest = run_adversarial(None, **kwargs)
        assert undefended.pulls_captured > 0
        assert undefended.normalized_goodput < honest.normalized_goodput
        assert defended.normalized_goodput > undefended.normalized_goodput
        # transitions may land in warmup; judge on lifetime totals
        assert defended_system.scorer.quarantines > 0
        assert defended_system.metrics.false_quarantines.total == 0
        defended_system.consistency_check()

    def test_sybil_conversions_counted(self):
        plan = AdversaryPlan(sybil_rate=1.5, sybil_fraction=0.3)
        system, report = run_adversarial(plan, mean_lifetime=5.0)
        assert report.sybil_conversions > 0
        assert (
            system.adversary.sybil_conversions
            >= report.sybil_conversions
        )
        system.consistency_check()


class TestChaosIntegration:
    def test_trial_config_roundtrips_adversary(self):
        from repro.chaos.space import TrialConfig, sample_trial

        found = 0
        for trial_id in range(60):
            config = sample_trial(99, trial_id)
            back = TrialConfig.from_json(config.to_json())
            assert back == config
            if config.adversary:
                found += 1
                assert not config.build_adversary_plan().is_null
                assert config.build_adversary_plan().describe() in (
                    config.describe()
                )
        assert found > 5  # the space actually explores adversaries

    def test_old_journals_without_adversary_key_load(self):
        from repro.chaos.space import TrialConfig, sample_trial

        payload = sample_trial(99, 0).to_json()
        payload.pop("adversary")
        config = TrialConfig.from_json(payload)
        assert config.adversary == {}
        assert config.build_adversary_plan() is None

    def test_shrinker_drops_adversary_dimensions(self):
        from dataclasses import replace

        from repro.chaos.shrink import _candidates
        from repro.chaos.space import sample_trial

        config = replace(
            sample_trial(99, 1),
            adversary={
                "liar_fraction": 0.4,
                "liar_inflation": 4.0,
                "sybil_rate": 0.5,
                "sybil_fraction": 0.5,
            },
        )
        candidates = list(_candidates(config))
        adversaries = [c.adversary for c in candidates]
        assert {} in adversaries  # wholesale dismissal probed
        assert {"sybil_rate": 0.5, "sybil_fraction": 0.5} in adversaries
        assert {"liar_fraction": 0.4, "liar_inflation": 4.0} in adversaries
