"""Tests for the RLNC codec: blocks, recoding, segment decoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import gf256
from repro.coding.block import (
    CodedBlock,
    SegmentDescriptor,
    make_abstract_blocks,
    make_source_blocks,
)
from repro.coding.rlnc import (
    SegmentDecoder,
    encode_from_source,
    innovation_probability,
    rank_of_blocks,
    recode,
)


def descriptor(size=4, segment_id=0):
    return SegmentDescriptor(
        segment_id=segment_id, source_peer=1, size=size, injected_at=0.0
    )


class TestSegmentDescriptor:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            descriptor(size=0)

    def test_str_mentions_ids(self):
        text = str(descriptor(size=3, segment_id=42))
        assert "42" in text and "s=3" in text

    def test_frozen(self):
        with pytest.raises(AttributeError):
            descriptor().size = 9


class TestCodedBlock:
    def test_coefficient_shape_validated(self):
        with pytest.raises(ValueError):
            CodedBlock(segment=descriptor(4), coefficients=[1, 2, 3])

    def test_abstract_block_has_no_coefficients(self):
        block = CodedBlock(segment=descriptor())
        assert not block.is_coded
        assert block.alive

    def test_identity_equality(self):
        a = CodedBlock(segment=descriptor(), coefficients=[1, 0, 0, 0])
        b = CodedBlock(segment=descriptor(), coefficients=[1, 0, 0, 0])
        assert a != b
        assert a == a

    def test_repr_mentions_kind(self):
        assert "abstract" in repr(CodedBlock(segment=descriptor()))


class TestSourceBlocks:
    def test_systematic_unit_vectors(self):
        blocks = make_source_blocks(descriptor(3))
        for index, block in enumerate(blocks):
            expected = np.zeros(3, dtype=np.uint8)
            expected[index] = 1
            assert np.array_equal(block.coefficients, expected)

    def test_payload_rows_attached(self):
        payloads = np.arange(8, dtype=np.uint8).reshape(4, 2)
        blocks = make_source_blocks(descriptor(4), payloads)
        for index, block in enumerate(blocks):
            assert np.array_equal(block.payload, payloads[index])

    def test_payload_row_count_validated(self):
        with pytest.raises(ValueError):
            make_source_blocks(descriptor(4), np.zeros((3, 2), dtype=np.uint8))

    def test_abstract_block_count(self):
        assert len(make_abstract_blocks(descriptor(5))) == 5
        assert len(make_abstract_blocks(descriptor(5), count=2)) == 2
        with pytest.raises(ValueError):
            make_abstract_blocks(descriptor(5), count=-1)


class TestRecode:
    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            recode([], np.random.default_rng(0))

    def test_abstract_blocks_rejected(self):
        with pytest.raises(ValueError):
            recode([CodedBlock(segment=descriptor())], np.random.default_rng(0))

    def test_output_in_span_of_inputs(self):
        rng = np.random.default_rng(3)
        blocks = make_source_blocks(descriptor(4))[:2]
        out = recode(blocks, rng)
        # span of e0, e1: coordinates 2,3 must be zero
        assert out.coefficients[2] == 0 and out.coefficients[3] == 0
        assert out.coefficients.any()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_payload_consistent_with_coefficients(self, seed):
        """The emitted payload must equal the emitted header applied to the
        original payload rows — the composition law that makes multi-hop
        recoding decodable."""
        rng = np.random.default_rng(seed)
        size, payload_len = 4, 6
        originals = rng.integers(0, 256, size=(size, payload_len), dtype=np.uint8)
        blocks = make_source_blocks(descriptor(size), originals)
        # two recode hops
        intermediate = [recode(blocks[:3], rng), recode(blocks[1:], rng)]
        out = recode(intermediate, rng)
        expected = np.zeros(payload_len, dtype=np.uint8)
        for j in range(size):
            scalar = int(out.coefficients[j])
            if scalar:
                gf256.vec_addmul(expected, originals[j], scalar)
        assert np.array_equal(out.payload, expected)

    def test_mixed_segments_rejected(self):
        blocks = [
            make_source_blocks(descriptor(2, segment_id=0))[0],
            make_source_blocks(descriptor(2, segment_id=1))[0],
        ]
        with pytest.raises(ValueError):
            recode(blocks, np.random.default_rng(0))

    def test_works_with_python_random(self):
        import random

        blocks = make_source_blocks(descriptor(3))
        out = recode(blocks, random.Random(5))
        assert out.coefficients.shape == (3,)


class TestEncodeFromSource:
    def test_row_count_validated(self):
        with pytest.raises(ValueError):
            encode_from_source(
                descriptor(4), np.zeros((3, 2), dtype=np.uint8),
                np.random.default_rng(0),
            )

    def test_payload_matches_coefficients(self):
        rng = np.random.default_rng(9)
        originals = rng.integers(0, 256, size=(3, 5), dtype=np.uint8)
        block = encode_from_source(descriptor(3), originals, rng)
        expected = np.zeros(5, dtype=np.uint8)
        for j in range(3):
            scalar = int(block.coefficients[j])
            if scalar:
                gf256.vec_addmul(expected, originals[j], scalar)
        assert np.array_equal(block.payload, expected)


class TestSegmentDecoder:
    def test_offer_wrong_segment_raises(self):
        decoder = SegmentDecoder(descriptor(2, segment_id=0))
        foreign = make_source_blocks(descriptor(2, segment_id=9))[0]
        with pytest.raises(ValueError):
            decoder.offer(foreign, now=0.0)

    def test_offer_abstract_block_raises(self):
        decoder = SegmentDecoder(descriptor(2))
        with pytest.raises(ValueError):
            decoder.offer(CodedBlock(segment=descriptor(2)), now=0.0)

    def test_completion_timestamp(self):
        decoder = SegmentDecoder(descriptor(2))
        blocks = make_source_blocks(descriptor(2))
        assert decoder.offer(blocks[0], now=1.0)
        assert decoder.completed_at is None
        assert decoder.offer(blocks[1], now=2.5)
        assert decoder.completed_at == 2.5
        assert decoder.is_complete

    def test_redundant_counted(self):
        decoder = SegmentDecoder(descriptor(2))
        block = make_source_blocks(descriptor(2))[0]
        decoder.offer(block, now=0.0)
        assert not decoder.offer(block, now=0.1)
        assert decoder.offered == 2
        assert decoder.redundant == 1

    def test_end_to_end_decode(self):
        rng = np.random.default_rng(4)
        originals = rng.integers(0, 256, size=(5, 7), dtype=np.uint8)
        source_blocks = make_source_blocks(descriptor(5), originals)
        decoder = SegmentDecoder(descriptor(5))
        while not decoder.is_complete:
            decoder.offer(recode(source_blocks, rng, created_at=0.0), now=0.0)
        assert np.array_equal(decoder.decode(), originals)


class TestRankHelpers:
    def test_rank_of_empty(self):
        assert rank_of_blocks([]) == 0

    def test_rank_of_blocks_counts_independent(self):
        blocks = make_source_blocks(descriptor(3))
        assert rank_of_blocks(blocks) == 3
        assert rank_of_blocks(blocks[:2]) == 2

    def test_rank_of_abstract_raises(self):
        with pytest.raises(ValueError):
            rank_of_blocks([CodedBlock(segment=descriptor())])

    def test_innovation_probability_bounds(self):
        rng = np.random.default_rng(0)
        blocks = make_source_blocks(descriptor(3))
        empty_receiver = np.zeros((0, 3), dtype=np.uint8)
        p = innovation_probability(blocks, empty_receiver, rng, trials=50)
        assert p == 1.0  # receiver knows nothing: everything is innovative

    def test_innovation_probability_saturated_receiver(self):
        rng = np.random.default_rng(0)
        blocks = make_source_blocks(descriptor(2))
        full_receiver = np.eye(2, dtype=np.uint8)
        p = innovation_probability(blocks, full_receiver, rng, trials=50)
        assert p == 0.0

    def test_innovation_probability_validates_trials(self):
        with pytest.raises(ValueError):
            innovation_probability(
                make_source_blocks(descriptor(2)),
                np.zeros((0, 2), dtype=np.uint8),
                np.random.default_rng(0),
                trials=0,
            )
