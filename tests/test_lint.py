"""Golden-file tests for the repro-lint static-analysis pass.

Each ``tests/lint_fixtures/case_*`` directory is a miniature source tree
laid out so the path-scoped rules trigger (``sim/``, ``core/``,
``analysis/``, ``coding/``).  The tests pin *exact* rule ids, file paths,
and line numbers, so any behavioural drift in a rule shows up as a golden
mismatch rather than a silent coverage loss.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.__main__ import main as lint_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_SRC = Path(__file__).parent.parent / "src" / "repro"


def lint_case(name):
    root = FIXTURES / name
    return run_lint([root], root=root)


def triples(findings):
    return sorted((f.rule, f.path, f.line) for f in findings)


class TestGoldenFindings:
    def test_r1_rng_discipline(self):
        report = lint_case("case_r1")
        assert triples(report.findings) == [
            ("R1", "experiments/bad_rng.py", 9),
            ("R1", "experiments/bad_rng.py", 11),
            # the provenance pass independently flags the draw on the
            # unseeded stream R1 caught at its construction
            ("R6", "experiments/bad_rng.py", 10),
        ]
        assert report.problems == []
        # the designated RNG module is exempt
        assert all(f.path != "sim/rng.py" for f in report.findings)

    def test_r2_determinism_hazards(self):
        report = lint_case("case_r2")
        assert triples(report.findings) == [
            ("R2", "sim/hotpath.py", 9),  # set iteration
            ("R2", "sim/hotpath.py", 11),  # dict .items() view
            ("R2", "sim/hotpath.py", 13),  # wall-clock read
            ("R2", "sim/hotpath.py", 14),  # id() sort key
        ]

    def test_r3_trace_kinds(self):
        report = lint_case("case_r3")
        assert triples(report.findings) == [
            ("R3", "core/emitter.py", 9),  # unknown literal "gosip"
            ("R3", "core/emitter.py", 10),  # statically unresolvable kind
            ("R3", "sim/trace.py", 5),  # KIND_DRIFT missing from registry
        ]
        messages = {f.line: f.message for f in report.findings}
        assert "'gosip'" in messages[9]
        assert "KIND_DRIFT" in messages[5]

    def test_r4_float_accumulation(self):
        report = lint_case("case_r4")
        assert triples(report.findings) == [("R4", "analysis/agg.py", 5)]
        assert triples(report.waived) == [("R4", "analysis/agg.py", 6)]
        assert report.waived[0].justification == "integer range, exact"

    def test_r5_gf256_misuse(self):
        report = lint_case("case_r5")
        assert triples(report.findings) == [
            ("R5", "coding/badmath.py", 5),
            ("R5", "coding/badmath.py", 6),
            ("R5", "coding/badmath.py", 7),
            ("R5", "coding/badmath.py", 8),
        ]

    def test_out_of_scope_hazards_ignored(self):
        report = lint_case("case_clean")
        assert report.findings == []
        assert report.problems == []
        assert report.waived == []
        assert report.exit_code(strict=True) == 0


class TestWaivers:
    def test_waiver_behaviour(self):
        report = lint_case("case_waivers")
        # justified waiver suppresses the finding
        assert triples(report.waived) == [("R2", "sim/waivers.py", 6)]
        # unjustified and unknown-rule waivers do NOT suppress
        assert triples(report.findings) == [
            ("R2", "sim/waivers.py", 8),
            ("R2", "sim/waivers.py", 10),
        ]
        # ...and each broken waiver is a W0 problem of its own
        assert triples(report.problems) == [
            ("W0", "sim/waivers.py", 8),
            ("W0", "sim/waivers.py", 10),
        ]
        by_line = {p.line: p.message for p in report.problems}
        assert "no justification" in by_line[8]
        assert "unknown rule 'R9'" in by_line[10]
        assert report.exit_code(strict=True) == 1

    def test_parse_error_is_reported(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        report = run_lint([tmp_path], root=tmp_path)
        assert [p.rule for p in report.problems] == ["E0"]
        assert report.exit_code(strict=False) == 1


class TestRealTree:
    def test_repro_source_is_strict_clean(self):
        report = run_lint([REPO_SRC], root=REPO_SRC.parent)
        assert report.findings == []
        assert report.problems == []
        assert report.exit_code(strict=True) == 0

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\n\n\ndef payloads():\n"
            "    rng = np.random.default_rng(1234)\n"
            "    return rng.integers(0, 256, size=8)\n",
            "import random\n\n\ndef wire():\n"
            "    rng = random.Random(1234)\n"
            "    return rng.random()\n",
        ],
        ids=["numpy-default-rng", "stdlib-random"],
    )
    def test_reintroduced_r1_violation_fails_strict(self, tmp_path, snippet):
        """Re-adding either historical R1 violation must fail the gate."""
        experiments = tmp_path / "experiments"
        experiments.mkdir()
        offender = experiments / "regression.py"
        offender.write_text(snippet, encoding="utf-8")
        report = run_lint([tmp_path], root=tmp_path)
        assert triples(report.findings) == [
            ("R1", "experiments/regression.py", 5),
            ("R6", "experiments/regression.py", 6),
        ]
        assert report.exit_code(strict=True) == 1
        assert lint_main(["--strict", "--quiet", str(tmp_path)]) == 1


class TestCommandLine:
    def test_module_entrypoint_clean_tree(self):
        assert lint_main(["--quiet", str(FIXTURES / "case_clean")]) == 0

    def test_cli_subcommand_dispatch(self):
        from repro import cli

        assert cli.main(["lint", "--quiet", str(FIXTURES / "case_clean")]) == 0
        assert (
            cli.main(["lint", "--strict", "--quiet", str(FIXTURES / "case_r5")])
            == 1
        )

    def test_json_report(self, tmp_path):
        out = tmp_path / "lint.json"
        code = lint_main(
            ["--quiet", "--json", str(out), str(FIXTURES / "case_r4")]
        )
        assert code == 1  # one active error-severity finding
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == 2
        assert payload["summary"]["active"] == 1
        assert payload["summary"]["waived"] == 1
        assert {r["id"] for r in payload["rules"]} == {
            "R1",
            "R2",
            "R3",
            "R4",
            "R5",
            "R6",
            "R7",
            "R8",
        }
        (finding,) = payload["findings"]
        assert finding["rule"] == "R4"
        assert finding["line"] == 5

    def test_missing_path_exits_2(self, tmp_path):
        assert lint_main([str(tmp_path / "nope")]) == 2

    def test_python_dash_m_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--quiet", str(REPO_SRC)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
