"""Tests for the server pool and the gossip protocol in isolation."""

import random

import numpy as np
import pytest

from repro.coding.block import CodedBlock
from repro.core.gossip import GossipProtocol
from repro.core.params import Parameters
from repro.core.peer import Peer
from repro.core.segments import SegmentRegistry
from repro.core.server import LoggingServer, ServerPool
from repro.sim.metrics import MetricsCollector
from repro.sim.topology import CompleteTopology


def make_world(n_peers=5, s=2, capacity=50, selection="proportional"):
    metrics = MetricsCollector(
        n_peers=n_peers, arrival_rate=1.0, segment_size=s, normalized_capacity=1.0
    )
    metrics.begin_window(0.0)
    registry = SegmentRegistry(metrics, use_decoders=False)
    peers = [Peer(slot, capacity) for slot in range(n_peers)]
    return metrics, registry, peers


def add_abstract_segment(registry, peer, size=2, copies=1, now=0.0):
    state = registry.create(source_peer=peer.slot, size=size, now=now)
    for _ in range(copies):
        block = CodedBlock(segment=state.descriptor, created_at=now)
        peer.add_block(block)
        registry.on_block_added(state, now)
    return state


class TestServerPool:
    def make_pool(self, peers, registry, metrics, n_servers=2, selection="proportional"):
        nonempty = [p for p in peers if not p.is_empty]
        rng = random.Random(0)

        def sample():
            candidates = [p for p in peers if not p.is_empty]
            if not candidates:
                return None
            return candidates[rng.randrange(len(candidates))]

        return ServerPool(
            n_servers=n_servers,
            registry=registry,
            metrics=metrics,
            rng=rng,
            coding_rng=np.random.default_rng(0),
            sample_nonempty_peer=sample,
            rlnc_mode=False,
            segment_selection=selection,
        )

    def test_validates_configuration(self):
        metrics, registry, peers = make_world()
        with pytest.raises(ValueError):
            self.make_pool(peers, registry, metrics, n_servers=0)
        with pytest.raises(ValueError):
            ServerPool(
                n_servers=1,
                registry=registry,
                metrics=metrics,
                rng=random.Random(0),
                coding_rng=None,
                sample_nonempty_peer=lambda: None,
                rlnc_mode=False,
                segment_selection="nope",
            )

    def test_idle_pull_when_network_empty(self):
        metrics, registry, peers = make_world()
        pool = self.make_pool(peers, registry, metrics)
        pool.pull(0, now=0.0)
        assert pool.servers[0].idle_pulls == 1
        assert metrics.idle_pulls.window == 1
        assert metrics.pulls.window == 1

    def test_useful_pull_advances_state(self):
        metrics, registry, peers = make_world()
        state = add_abstract_segment(registry, peers[0], size=2, copies=2)
        pool = self.make_pool(peers, registry, metrics)
        pool.pull(0, now=0.0)
        assert state.collected == 1
        assert pool.servers[0].useful_pulls == 1

    def test_redundant_pull_on_complete_segment(self):
        metrics, registry, peers = make_world()
        state = add_abstract_segment(registry, peers[0], size=1, copies=1)
        pool = self.make_pool(peers, registry, metrics)
        pool.pull(0, now=0.0)
        assert state.is_complete
        pool.pull(1, now=0.1)
        assert pool.servers[1].redundant_pulls == 1
        assert metrics.redundant_pulls.window == 1

    def test_pool_accounting(self):
        metrics, registry, peers = make_world()
        add_abstract_segment(registry, peers[0], size=1, copies=1)
        pool = self.make_pool(peers, registry, metrics)
        for i in range(4):
            pool.pull(i % 2, now=float(i))
        assert pool.total_pulls() == 4
        assert 0.0 < pool.pool_efficiency() <= 1.0
        assert pool.load_balance() == pytest.approx(1.0)

    def test_server_efficiency_property(self):
        server = LoggingServer(server_id=0)
        assert server.efficiency == 0.0
        server.pulls = 4
        server.useful_pulls = 3
        assert server.efficiency == 0.75


class TestGossipProtocol:
    def make_gossip(self, peers, registry, metrics, stored, selection="proportional",
                    tries=32):
        params = Parameters(
            n_peers=len(peers),
            arrival_rate=1.0,
            gossip_rate=1.0,
            deletion_rate=1.0,
            normalized_capacity=0.5,
            segment_size=2,
            n_servers=1,
            segment_selection=selection,
            gossip_target_tries=tries,
        )

        def store(peer, block):
            peer.add_block(block)
            registry.on_block_added(registry.get(block.segment.segment_id), 0.0)
            stored.append((peer.slot, block))

        return GossipProtocol(
            params=params,
            topology=CompleteTopology(len(peers)),
            rng=random.Random(1),
            coding_rng=np.random.default_rng(1),
            get_peer=lambda slot: peers[slot],
            store_block=store,
            registry=registry,
            metrics=metrics,
        )

    def test_empty_sender_is_idle(self):
        metrics, registry, peers = make_world()
        stored = []
        gossip = self.make_gossip(peers, registry, metrics, stored)
        assert not gossip.tick(0, now=0.0)
        assert not stored

    def test_transfer_to_needy_peer(self):
        metrics, registry, peers = make_world()
        add_abstract_segment(registry, peers[0], size=2, copies=2)
        stored = []
        gossip = self.make_gossip(peers, registry, metrics, stored)
        assert gossip.tick(0, now=0.0)
        assert len(stored) == 1
        target_slot, block = stored[0]
        assert target_slot != 0
        assert metrics.gossip_transfers.window == 1

    def test_no_eligible_target_counted(self):
        metrics, registry, peers = make_world(n_peers=2)
        state = add_abstract_segment(registry, peers[0], size=2, copies=2)
        # peer 1 already has s independent blocks of the segment
        for _ in range(2):
            block = CodedBlock(segment=state.descriptor)
            peers[1].add_block(block)
            registry.on_block_added(state, 0.0)
        stored = []
        gossip = self.make_gossip(peers, registry, metrics, stored)
        assert not gossip.tick(0, now=0.0)
        assert metrics.gossip_no_target.window == 1

    def test_full_target_skipped(self):
        metrics, registry, peers = make_world(n_peers=2, capacity=2)
        add_abstract_segment(registry, peers[0], size=2, copies=2)
        # fill peer 1 with an unrelated segment
        add_abstract_segment(registry, peers[1], size=2, copies=2)
        stored = []
        gossip = self.make_gossip(peers, registry, metrics, stored)
        assert not gossip.tick(0, now=0.0)

    def test_single_peer_network_no_target(self):
        metrics, registry, peers = make_world(n_peers=1)
        add_abstract_segment(registry, peers[0], size=2, copies=2)
        stored = []
        gossip = self.make_gossip(peers, registry, metrics, stored)
        assert not gossip.tick(0, now=0.0)

    def test_uniform_selection_draws_distinct_segments(self):
        metrics, registry, peers = make_world(n_peers=6, s=2)
        # segment A: 9 copies; segment B: 1 copy at the same sender
        add_abstract_segment(registry, peers[0], size=2, copies=9)
        state_b = add_abstract_segment(registry, peers[0], size=2, copies=1)
        stored = []
        gossip = self.make_gossip(peers, registry, metrics, stored,
                                  selection="uniform")
        for _ in range(400):
            gossip.tick(0, now=0.0)
        b_transfers = sum(
            1
            for _, block in stored
            if block.segment.segment_id == state_b.segment_id
        )
        share = b_transfers / len(stored)
        assert abs(share - 0.5) < 0.1  # uniform over the two segments
