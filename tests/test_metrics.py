"""Tests for the measurement instrumentation."""

import math

import pytest

from repro.sim.metrics import MetricsCollector, WindowedAverage, WindowedCounter


class TestWindowedAverage:
    def test_constant_value(self):
        avg = WindowedAverage(5.0, now=0.0)
        assert avg.average(10.0) == 5.0

    def test_step_change(self):
        avg = WindowedAverage(0.0, now=0.0)
        avg.update(5.0, 10.0)  # 0 for 5 units, then 10
        assert avg.average(10.0) == pytest.approx(5.0)

    def test_add_delta(self):
        avg = WindowedAverage(2.0, now=0.0)
        avg.add(4.0, 3.0)  # 2 for 4 units, then 5
        assert avg.average(8.0) == pytest.approx((2 * 4 + 5 * 4) / 8)

    def test_reset_discards_history(self):
        avg = WindowedAverage(100.0, now=0.0)
        avg.update(10.0, 1.0)
        avg.reset(10.0)
        assert avg.average(20.0) == pytest.approx(1.0)

    def test_zero_width_window(self):
        avg = WindowedAverage(3.0, now=2.0)
        assert avg.average(2.0) == 3.0

    def test_time_backwards_raises(self):
        avg = WindowedAverage(0.0, now=5.0)
        with pytest.raises(ValueError):
            avg.update(4.0, 1.0)

    def test_value_attribute_tracks_current(self):
        avg = WindowedAverage(0.0, now=0.0)
        avg.add(1.0, 2.0)
        avg.add(2.0, -1.0)
        assert avg.value == 1.0


class TestWindowedCounter:
    def test_window_vs_total(self):
        counter = WindowedCounter()
        counter.increment(False)
        counter.increment(True, 3)
        assert counter.total == 4
        assert counter.window == 3
        counter.reset_window()
        assert counter.total == 4
        assert counter.window == 0


class TestMetricsCollector:
    def make(self, n=10, lam=2.0, s=4, c=1.0):
        collector = MetricsCollector(
            n_peers=n, arrival_rate=lam, segment_size=s, normalized_capacity=c
        )
        collector.set_deletion_rate(1.0)
        return collector

    def test_initial_state_all_empty(self):
        collector = self.make()
        assert collector.empty_peers.value == 10.0
        assert collector.total_blocks.value == 0.0
        assert not collector.in_window

    def test_begin_window_resets(self):
        collector = self.make()
        collector.pulls.increment(True, 5)
        collector.begin_window(10.0)
        assert collector.in_window
        assert collector.pulls.window == 0
        assert collector.pulls.total == 5

    def test_report_throughput_math(self):
        collector = self.make(n=10, lam=2.0)
        collector.begin_window(0.0)
        for _ in range(40):
            collector.pulls.increment(True)
            collector.useful_pulls.increment(True)
        report = collector.report(10.0)
        assert report.throughput == pytest.approx(4.0)
        # demand = 10 * 2 = 20
        assert report.normalized_throughput == pytest.approx(0.2)
        assert report.efficiency == 1.0
        assert report.window == 10.0

    def test_report_efficiency_with_redundant(self):
        collector = self.make()
        collector.begin_window(0.0)
        for _ in range(3):
            collector.pulls.increment(True)
        collector.useful_pulls.increment(True)
        collector.redundant_pulls.increment(True, 2)
        report = collector.report(1.0)
        assert report.efficiency == pytest.approx(1 / 3)
        assert report.redundant_pulls == 2

    def test_delay_accounting(self):
        collector = self.make(s=4)
        collector.begin_window(0.0)
        collector.on_segment_completed(10.0, injected_at=2.0, size=4)
        collector.on_segment_completed(12.0, injected_at=4.0, size=4)
        report = collector.report(20.0)
        assert report.mean_segment_delay == pytest.approx(8.0)
        assert report.mean_block_delay == pytest.approx(2.0)
        assert report.delay_samples == 2
        # goodput: 8 original blocks over 20 time units
        assert report.goodput == pytest.approx(0.4)

    def test_no_delay_samples_reports_none(self):
        collector = self.make()
        collector.begin_window(0.0)
        report = collector.report(5.0)
        assert report.mean_segment_delay is None
        assert report.mean_block_delay is None
        assert report.p50_block_delay is None
        assert report.p95_block_delay is None

    def test_delay_percentiles(self):
        collector = self.make(s=2)
        collector.begin_window(0.0)
        for delay in (2.0, 4.0, 6.0, 8.0, 100.0):
            collector.on_segment_completed(delay, injected_at=0.0, size=2)
        report = collector.report(200.0)
        assert report.p50_block_delay == pytest.approx(6.0 / 2)
        assert report.p95_block_delay > report.p50_block_delay
        assert report.p95_block_delay <= 100.0 / 2
        assert report.delay_samples == 5

    def test_completions_before_window_ignored(self):
        collector = self.make()
        collector.on_segment_completed(1.0, injected_at=0.0, size=4)
        collector.begin_window(2.0)
        report = collector.report(10.0)
        assert report.delay_samples == 0
        assert report.segments_completed == 0

    def test_storage_overhead_derivation(self):
        collector = self.make(n=2, lam=3.0)
        collector.begin_window(0.0)
        collector.total_blocks.update(0.0, 16.0)  # 8 per peer
        report = collector.report(4.0)
        assert report.mean_buffer_occupancy == pytest.approx(8.0)
        # overhead = rho - lambda/gamma = 8 - 3
        assert report.storage_overhead == pytest.approx(5.0)

    def test_storage_overhead_nan_without_gamma(self):
        collector = MetricsCollector(
            n_peers=2, arrival_rate=1.0, segment_size=1, normalized_capacity=1.0
        )
        collector.begin_window(0.0)
        assert math.isnan(collector.report(1.0).storage_overhead)

    def test_saved_blocks_per_peer(self):
        collector = self.make(n=5, s=4)
        collector.begin_window(0.0)
        collector.saved_segments.update(0.0, 10.0)
        report = collector.report(2.0)
        # 10 segments * 4 blocks / 5 peers
        assert report.saved_blocks_per_peer == pytest.approx(8.0)

    def test_as_dict_replaces_none_with_nan(self):
        collector = self.make()
        collector.begin_window(0.0)
        flat = collector.report(1.0).as_dict()
        assert math.isnan(flat["mean_block_delay"])
        assert flat["n_peers"] == 10.0
