"""End-to-end determinism regressions: same seed, same bytes.

The linter (R1/R2) statically forbids the hazards that break run-to-run
reproducibility; these tests pin the dynamic contract itself: two runs from
the same root seed must produce *identical* trace streams and reports, with
and without fault injection.  They also guard the RNG-substream remediation
of the two historical R1 violations (``experiments/robustness.py`` drawing
payload bytes from a module-fresh ``np.random.default_rng`` and
``experiments/ablations.py`` wiring overlays from a local ``random`` import):
those call sites now ride named :class:`SeedSequenceRegistry` substreams, and
the functions must be reproducible from their ``seed`` argument alone.
"""

import json

from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.faults import FaultPlan
from repro.sim.trace import Tracer


def _params(faults=None):
    return Parameters(
        n_peers=40,
        arrival_rate=6.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=3.0,
        segment_size=4,
        n_servers=2,
        mean_lifetime=30.0,
        faults=faults,
    )


def _run_traced(faults, seed):
    """One full run; returns (trace event dicts, report dict)."""
    tracer = Tracer()
    system = CollectionSystem(_params(faults), seed=seed, tracer=tracer)
    report = system.run(warmup=3.0, duration=8.0)
    return [event.as_dict() for event in tracer.events], report.as_dict()


class TestSameSeedSameBytes:
    def test_fault_free_runs_are_identical(self):
        events_a, report_a = _run_traced(None, seed=11)
        events_b, report_b = _run_traced(None, seed=11)
        assert len(events_a) > 100  # the runs actually did something
        assert events_a == events_b
        # byte-level check: the serialized forms match exactly too
        assert json.dumps(events_a) == json.dumps(events_b)
        assert json.dumps(report_a, sort_keys=True) == json.dumps(
            report_b, sort_keys=True
        )

    def test_faulty_runs_are_identical(self):
        plan = FaultPlan(
            gossip_loss_rate=0.1,
            pull_loss_rate=0.05,
            pollution_fraction=0.1,
            burst_rate=0.2,
            burst_fraction=0.2,
            outage_rate=0.1,
            outage_duration=0.5,
        )
        events_a, report_a = _run_traced(plan, seed=11)
        events_b, report_b = _run_traced(plan, seed=11)
        assert len(events_a) > 100
        assert events_a == events_b
        assert json.dumps(report_a, sort_keys=True) == json.dumps(
            report_b, sort_keys=True
        )

    def test_different_seeds_diverge(self):
        """Sanity check: the equality above is not vacuous."""
        events_a, _ = _run_traced(None, seed=11)
        events_b, _ = _run_traced(None, seed=12)
        assert events_a != events_b


class TestRemediatedSubstreams:
    """The two fixed R1 violations must be reproducible from their seed."""

    def test_pollution_audit_payloads_are_seed_stable(self):
        from repro.experiments.robustness import rlnc_pollution_audit

        first = rlnc_pollution_audit(seed=5, pollution_fraction=0.3)
        second = rlnc_pollution_audit(seed=5, pollution_fraction=0.3)
        assert first == second
        rejected, corrupted, decoded = first
        assert corrupted == 0  # pollution detection still holds end to end
        assert decoded > 0

    def test_overlay_wiring_is_seed_stable(self):
        from repro.sim.rng import SeedSequenceRegistry
        from repro.sim.topology import random_regular_topology

        def wire():
            overlay_seeds = SeedSequenceRegistry(17).spawn("overlay-wiring")
            topology = random_regular_topology(
                40, 4, overlay_seeds.python("degree:4")
            )
            return [topology.neighbors(slot) for slot in range(40)]

        assert wire() == wire()
