"""Tests for overlay topologies."""

import random

import pytest

from repro.sim.topology import (
    CompleteTopology,
    ExplicitTopology,
    erdos_renyi_topology,
    random_regular_topology,
)


class TestCompleteTopology:
    def test_degree(self):
        topo = CompleteTopology(5)
        assert topo.degree(0) == 4
        assert topo.n_slots == 5

    def test_neighbors_exclude_self(self):
        topo = CompleteTopology(4)
        assert topo.neighbors(2) == [0, 1, 3]

    def test_sample_neighbor_never_self(self):
        topo = CompleteTopology(6)
        rng = random.Random(0)
        for _ in range(200):
            assert topo.sample_neighbor(3, rng) != 3

    def test_sample_neighbor_uniform(self):
        topo = CompleteTopology(4)
        rng = random.Random(1)
        counts = {0: 0, 2: 0, 3: 0}
        trials = 6000
        for _ in range(trials):
            counts[topo.sample_neighbor(1, rng)] += 1
        for count in counts.values():
            assert abs(count / trials - 1 / 3) < 0.05

    def test_single_peer_has_no_neighbors(self):
        topo = CompleteTopology(1)
        assert topo.sample_neighbor(0, random.Random(0)) is None
        assert topo.neighbors(0) == []

    def test_slot_out_of_range(self):
        topo = CompleteTopology(3)
        with pytest.raises(ValueError):
            topo.neighbors(3)
        with pytest.raises(ValueError):
            topo.degree(-1)


class TestExplicitTopology:
    def test_symmetrized(self):
        topo = ExplicitTopology(3, {0: [1]})
        assert topo.neighbors(1) == [0]
        assert topo.neighbors(0) == [1]
        assert topo.neighbors(2) == []

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            ExplicitTopology(2, {0: [0]})

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ExplicitTopology(2, {0: [5]})
        with pytest.raises(ValueError):
            ExplicitTopology(2, {5: [0]})

    def test_sample_isolated_returns_none(self):
        topo = ExplicitTopology(3, {0: [1]})
        assert topo.sample_neighbor(2, random.Random(0)) is None


class TestErdosRenyi:
    def test_probability_zero_is_empty(self):
        topo = erdos_renyi_topology(10, 0.0, random.Random(0))
        assert all(topo.degree(i) == 0 for i in range(10))

    def test_probability_one_is_complete(self):
        topo = erdos_renyi_topology(6, 1.0, random.Random(0))
        assert all(topo.degree(i) == 5 for i in range(6))

    def test_mean_degree_close_to_np(self):
        n, p = 60, 0.3
        topo = erdos_renyi_topology(n, p, random.Random(5))
        mean_degree = sum(topo.degree(i) for i in range(n)) / n
        assert abs(mean_degree - (n - 1) * p) < 3.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_topology(5, 1.5, random.Random(0))


class TestRandomRegular:
    def test_all_degrees_equal(self):
        topo = random_regular_topology(20, 4, random.Random(1))
        assert all(topo.degree(i) == 4 for i in range(20))

    def test_no_self_loops(self):
        topo = random_regular_topology(12, 3, random.Random(2))
        for slot in range(12):
            assert slot not in topo.neighbors(slot)

    def test_odd_total_stubs_rejected(self):
        with pytest.raises(ValueError):
            random_regular_topology(5, 3, random.Random(0))

    def test_degree_at_least_n_rejected(self):
        with pytest.raises(ValueError):
            random_regular_topology(4, 4, random.Random(0))

    def test_different_seeds_give_different_graphs(self):
        a = random_regular_topology(20, 4, random.Random(1))
        b = random_regular_topology(20, 4, random.Random(2))
        assert any(a.neighbors(i) != b.neighbors(i) for i in range(20))
