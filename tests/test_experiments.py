"""Tests for the experiment harness and CLI (tiny budgets)."""

import json

import pytest

from repro.experiments.base import (
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    budget_for,
    simulate_metrics,
)
from repro.experiments.baseline import FlashCrowdScenario, run_baseline_comparison
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.theorem1 import run_theorem1

TINY = SimBudget(n_peers=30, warmup=3.0, duration=4.0, seeds=(1,), n_servers=2)


class TestSeriesResult:
    def make(self):
        result = SeriesResult(
            name="demo", title="Demo", x_name="x", x_values=[1.0, 2.0]
        )
        result.add_series("y", [0.5, None])
        result.add_note("a note")
        return result

    def test_add_series_length_checked(self):
        result = self.make()
        with pytest.raises(ValueError):
            result.add_series("bad", [1.0])

    def test_duplicate_label_rejected(self):
        result = self.make()
        with pytest.raises(ValueError):
            result.add_series("y", [1.0, 2.0])

    def test_table_contains_values_and_notes(self):
        text = self.make().to_table()
        assert "Demo" in text and "0.5000" in text and "a note" in text
        assert "-" in text  # the None cell

    def test_json_roundtrip(self):
        original = self.make()
        restored = SeriesResult.from_json(original.to_json())
        assert restored.name == original.name
        assert restored.series == original.series
        assert restored.notes == original.notes

    def test_json_is_valid(self):
        payload = json.loads(self.make().to_json())
        assert payload["series"]["y"] == [0.5, None]


class TestBudgets:
    def test_known_qualities(self):
        assert budget_for("fast").n_peers < budget_for("full").n_peers
        with pytest.raises(ValueError):
            budget_for("ultra")


class TestSimulateMetrics:
    def test_returns_requested_metrics(self):
        from repro.core.params import Parameters

        params = Parameters(
            n_peers=TINY.n_peers,
            arrival_rate=4.0,
            gossip_rate=4.0,
            deletion_rate=1.0,
            normalized_capacity=2.0,
            segment_size=2,
            n_servers=TINY.n_servers,
        )
        metrics = simulate_metrics(
            params, TINY, ("normalized_throughput", "mean_buffer_occupancy")
        )
        assert set(metrics) == {"normalized_throughput", "mean_buffer_occupancy"}
        assert 0 < metrics["normalized_throughput"] <= 1


class TestRunners:
    def test_fig3_shape(self):
        result = run_fig3(
            segment_sizes=(1, 4), capacities=(2.0,), budget=TINY
        )
        assert result.x_values == [1.0, 4.0]
        assert set(result.series) == {
            "analytic c=2",
            "sim c=2",
            "capacity c=2",
        }
        # monotone rise toward capacity for the analytic curve
        analytic = result.series["analytic c=2"]
        assert analytic[1] > analytic[0]
        assert all(v <= 2.0 / 20.0 + 1e-9 for v in result.series["capacity c=2"])

    def test_fig3_without_simulation_is_fast(self):
        result = run_fig3(
            segment_sizes=(1, 2), capacities=(4.0,), budget=TINY,
            include_simulation=False,
        )
        assert "sim c=4" not in result.series

    def test_fig4_shape(self):
        result = run_fig4(
            mu_values=(4.0,), scenarios=((2.0, 1), (2.0, 4)), budget=TINY
        )
        assert set(result.series) == {
            "c=2 s=1 static",
            "c=2 s=1 churn",
            "c=2 s=4 static",
            "c=2 s=4 churn",
        }

    def test_fig5_flags_negative_analytic_corner(self):
        result = run_fig5(segment_sizes=(1, 4), capacities=(8.0,), budget=TINY)
        assert any("negative" in note for note in result.notes)

    def test_fig6_saved_decreases(self):
        result = run_fig6(segment_sizes=(1, 8), capacities=(8.0,), budget=TINY)
        analytic = result.series["analytic c=8"]
        assert analytic[0] > analytic[1]

    def test_theorem1_reports_constant_rho(self):
        result = run_theorem1(segment_sizes=(1, 4), budget=TINY)
        closed = result.series["closed-form rho"]
        assert closed[0] == closed[1]
        assert result.series["sim rho"][0] == pytest.approx(closed[0], rel=0.2)

    def test_transient_runs_and_aligns_series(self):
        from repro.experiments.transient import run_transient

        result = run_transient(budget=TINY, n_samples=4)
        assert len(result.x_values) == 4
        for label in (
            "demand",
            "fluid occupancy",
            "sim occupancy",
            "fluid intake",
            "sim intake",
        ):
            assert len(result.series[label]) == 4

    def test_scheduler_ablation_runs(self):
        from repro.experiments.ablations import run_scheduler_ablation

        result = run_scheduler_ablation(
            budget=TINY, policies=("random", "greedy-completion")
        )
        assert len(result.series["goodput"]) == 2

    def test_baseline_comparison_runs(self):
        scenario = FlashCrowdScenario(phase_ends=(4.0, 6.0, 10.0))
        result = run_baseline_comparison(budget=TINY, scenario=scenario)
        assert len(result.x_values) == 3
        assert set(result.series) == {
            "push intake",
            "pull intake",
            "indirect intake",
        }
        assert any("dropped" in note for note in result.notes)

    def test_robustness_runs(self):
        from repro.experiments.robustness import CHANNELS, run_robustness

        result = run_robustness(budget=TINY, severities=(0.0, 0.3))
        assert result.x_values == [0.0, 0.3]
        for channel in CHANNELS:
            delivery = result.series[f"delivery ratio: {channel}"]
            assert len(delivery) == 2
            assert delivery[0] == 1.0  # severity 0 is the shared baseline
        assert any("0 corrupted decodes" in note for note in result.notes)


class TestCli:
    def test_unknown_experiment_rejected(self):
        from repro.cli import run_experiment

        with pytest.raises(ValueError):
            run_experiment("fig99", "fast")

    def test_parser_choices(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["fig3", "--quality", "fast"])
        assert args.experiment == "fig3"
        with pytest.raises(SystemExit):
            parser.parse_args(["not-an-experiment"])

    def test_main_runs_real_experiment_with_tiny_budget(
        self, tmp_path, monkeypatch, capsys
    ):
        """End-to-end through the real theorem1 runner, shrunk via BUDGETS."""
        import repro.experiments.base as base

        monkeypatch.setitem(base.BUDGETS, "fast", TINY)
        from repro.cli import main

        target = tmp_path / "t1.json"
        assert main(["theorem1", "--quality", "fast", "--json", str(target)]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        payload = json.loads(target.read_text())
        assert payload["name"] == "theorem1"
        assert "closed-form rho" in payload["series"]

    def test_main_writes_json(self, tmp_path, monkeypatch, capsys):
        """End-to-end CLI: patch in a tiny runner to keep the test quick."""
        import repro.cli as cli

        def fake_runner(quality="fast"):
            result = SeriesResult(
                name="fig3", title="t", x_name="x", x_values=[1.0]
            )
            result.add_series("y", [2.0])
            return result

        monkeypatch.setitem(cli.RUNNERS, "fig3", fake_runner)
        target = tmp_path / "out.json"
        code = cli.main(["fig3", "--json", str(target)])
        assert code == 0
        assert json.loads(target.read_text())["name"] == "fig3"
        assert "2.0000" in capsys.readouterr().out
