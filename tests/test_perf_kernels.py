"""Equivalence tests for the flat-table GF(256) kernels and the rewritten
incremental decoder.

The hot-path overhaul (mul-table kernels, preallocated decoder, batched
elimination) must be *behaviourally invisible*: every kernel agrees with the
scalar field arithmetic, and the rewritten :class:`IncrementalDecoder`
produces identical innovation verdicts, ranks, coefficient matrices, and
decoded payloads to a straightforward reference implementation on random
block streams — including payload-free, mixed-payload, and singular cases.
"""

import random

import numpy as np
import pytest

from repro.coding import gf256
from repro.coding.gf256 import MUL_TABLE
from repro.coding.linalg import IncrementalDecoder, rank, rref


class TestMulTable:
    def test_exhaustive_agreement_with_scalar_mul(self):
        """All 65536 entries match the log/exp-table scalar multiply."""
        a = np.arange(256, dtype=np.uint8)
        expected = np.array(
            [[gf256.mul(int(x), int(y)) for y in a] for x in a], dtype=np.uint8
        )
        assert np.array_equal(MUL_TABLE, expected)

    def test_zero_row_and_column(self):
        assert not MUL_TABLE[0].any()
        assert not MUL_TABLE[:, 0].any()

    def test_identity_row(self):
        assert np.array_equal(MUL_TABLE[1], np.arange(256, dtype=np.uint8))

    def test_symmetry(self):
        assert np.array_equal(MUL_TABLE, MUL_TABLE.T)


class TestKernelsAgainstScalarOps:
    def setup_method(self):
        self.rng = np.random.default_rng(1234)

    def _vec(self, n):
        return self.rng.integers(0, 256, size=n, dtype=np.uint8)

    def test_vec_scale_matches_scalar(self):
        vector = self._vec(257)
        for scalar in (0, 1, 2, 0x53, 255):
            expected = np.array(
                [gf256.mul(int(v), scalar) for v in vector], dtype=np.uint8
            )
            assert np.array_equal(gf256.vec_scale(vector, scalar), expected)

    def test_vec_scale_out_parameter(self):
        vector = self._vec(64)
        out = np.empty(64, dtype=np.uint8)
        result = gf256.vec_scale(vector, 7, out=out)
        assert result is out
        assert np.array_equal(out, gf256.vec_scale(vector, 7))

    def test_vec_addmul_matches_scalar(self):
        for scalar in (0, 1, 5, 254):
            acc = self._vec(100)
            vector = self._vec(100)
            expected = np.array(
                [
                    int(a) ^ gf256.mul(int(v), scalar)
                    for a, v in zip(acc, vector)
                ],
                dtype=np.uint8,
            )
            gf256.vec_addmul(acc, vector, scalar)
            assert np.array_equal(acc, expected)

    def test_vec_addmul_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf256.vec_addmul(self._vec(4), self._vec(5), 1)

    def test_vec_mul_matches_scalar(self):
        a, b = self._vec(300), self._vec(300)
        expected = np.array(
            [gf256.mul(int(x), int(y)) for x, y in zip(a, b)], dtype=np.uint8
        )
        assert np.array_equal(gf256.vec_mul(a, b), expected)

    def test_vec_addmul_rows_matches_loop(self):
        rows = self.rng.integers(0, 256, size=(9, 40), dtype=np.uint8)
        scalars = self._vec(9)
        expected = self._vec(40)
        acc = expected.copy()
        for row, scalar in zip(rows, scalars):
            gf256.vec_addmul(expected, row, int(scalar))
        gf256.vec_addmul_rows(acc, rows, scalars)
        assert np.array_equal(acc, expected)

    def test_vec_addmul_rows_all_zero_scalars_is_noop(self):
        rows = self.rng.integers(0, 256, size=(4, 8), dtype=np.uint8)
        acc = self._vec(8)
        before = acc.copy()
        gf256.vec_addmul_rows(acc, rows, np.zeros(4, dtype=np.uint8))
        assert np.array_equal(acc, before)

    def test_rows_addmul_matches_loop(self):
        rows = self.rng.integers(0, 256, size=(7, 33), dtype=np.uint8)
        expected = rows.copy()
        vector = self._vec(33)
        scalars = self._vec(7)
        for index in range(7):
            gf256.vec_addmul(expected[index], vector, int(scalars[index]))
        gf256.rows_addmul(rows, vector, scalars)
        assert np.array_equal(rows, expected)

    def test_combine_rows_matches_loop(self):
        rows = self.rng.integers(0, 256, size=(5, 21), dtype=np.uint8)
        scalars = self._vec(5)
        expected = np.zeros(21, dtype=np.uint8)
        for row, scalar in zip(rows, scalars):
            gf256.vec_addmul(expected, row, int(scalar))
        assert np.array_equal(gf256.combine_rows(rows, scalars), expected)

    def test_batched_kernels_reject_misaligned_shapes(self):
        rows = self.rng.integers(0, 256, size=(3, 6), dtype=np.uint8)
        with pytest.raises(ValueError):
            gf256.vec_addmul_rows(self._vec(6), rows, self._vec(2))
        with pytest.raises(ValueError):
            gf256.vec_addmul_rows(self._vec(5), rows, self._vec(3))
        with pytest.raises(ValueError):
            gf256.rows_addmul(rows, self._vec(5), self._vec(3))
        with pytest.raises(ValueError):
            gf256.rows_addmul(rows, self._vec(6), self._vec(4))

    def test_mat_vec_matches_scalar(self):
        matrix = self.rng.integers(0, 256, size=(13, 17), dtype=np.uint8)
        vector = self._vec(17)
        expected = []
        for row in matrix:
            total = 0
            for x, y in zip(row, vector):
                total ^= gf256.mul(int(x), int(y))
            expected.append(total)
        assert np.array_equal(
            gf256.mat_vec(matrix, vector), np.array(expected, dtype=np.uint8)
        )

    def test_mat_mul_matches_mat_vec_columns(self):
        a = self.rng.integers(0, 256, size=(6, 11), dtype=np.uint8)
        b = self.rng.integers(0, 256, size=(11, 9), dtype=np.uint8)
        product = gf256.mat_mul(a, b)
        for col in range(9):
            assert np.array_equal(product[:, col], gf256.mat_vec(a, b[:, col]))

    def test_mat_mul_chunked_path_matches_direct(self, monkeypatch):
        """Shrinking the chunk budget must not change the product."""
        a = self.rng.integers(0, 256, size=(20, 64), dtype=np.uint8)
        b = self.rng.integers(0, 256, size=(64, 20), dtype=np.uint8)
        direct = gf256.mat_mul(a, b)
        monkeypatch.setattr(gf256, "_MAT_MUL_CHUNK_ELEMS", 512)
        assert np.array_equal(gf256.mat_mul(a, b), direct)


class _ReferenceDecoder:
    """Straightforward per-pivot-loop Gauss-Jordan decoder (the seed
    implementation's algorithm, kept deliberately naive) used as the oracle
    for the batched production decoder."""

    def __init__(self, size):
        self.size = size
        self.rows = []  # list of uint8 vectors
        self.payloads = []  # matching optional payload vectors
        self.pivot_cols = []

    def _reduce(self, vector, payload):
        vec = vector.astype(np.uint8).copy()
        data = None if payload is None else payload.astype(np.uint8).copy()
        for row_idx, pivot_col in enumerate(self.pivot_cols):
            factor = int(vec[pivot_col])
            if factor:
                for k in range(len(vec)):
                    vec[k] ^= gf256.mul(int(self.rows[row_idx][k]), factor)
                if data is not None and self.payloads[row_idx] is not None:
                    stored = self.payloads[row_idx]
                    for k in range(len(data)):
                        data[k] ^= gf256.mul(int(stored[k]), factor)
        return vec, data

    def add(self, vector, payload=None):
        vec, data = self._reduce(vector, payload)
        if not vec.any():
            return False
        pivot_col = int(np.nonzero(vec)[0][0])
        pivot_value = int(vec[pivot_col])
        if pivot_value != 1:
            inv = gf256.inv(pivot_value)
            vec = np.array(
                [gf256.mul(int(v), inv) for v in vec], dtype=np.uint8
            )
            if data is not None:
                data = np.array(
                    [gf256.mul(int(v), inv) for v in data], dtype=np.uint8
                )
        for row_idx in range(len(self.rows)):
            factor = int(self.rows[row_idx][pivot_col])
            if factor:
                for k in range(self.size):
                    self.rows[row_idx][k] ^= gf256.mul(int(vec[k]), factor)
                stored = self.payloads[row_idx]
                if stored is not None and data is not None:
                    for k in range(len(data)):
                        stored[k] ^= gf256.mul(int(data[k]), factor)
        self.rows.append(vec)
        self.payloads.append(data)
        self.pivot_cols.append(pivot_col)
        return True

    @property
    def rank(self):
        return len(self.rows)

    def coefficient_matrix(self):
        if not self.rows:
            return np.zeros((0, self.size), dtype=np.uint8)
        return np.stack(self.rows)

    def decode(self):
        if self.rank < self.size:
            raise ValueError("incomplete")
        if any(p is None for p in self.payloads):
            raise ValueError("no payloads")
        order = np.argsort(self.pivot_cols)
        return np.stack([self.payloads[i] for i in order])


def _random_stream(seed, size, payload_mode, n_blocks, span=None):
    """Generate a reproducible coded-block stream.

    *span* restricts coefficient vectors to a linear span of that many
    random basis vectors (to exercise singular/redundant streams);
    *payload_mode* is 'all', 'none', or 'mixed'.
    """
    rng = random.Random(seed)
    payload_len = 5
    basis = None
    if span is not None:
        basis = [
            [rng.randrange(256) for _ in range(size)] for _ in range(span)
        ]
    stream = []
    for index in range(n_blocks):
        if basis is None:
            coeffs = np.array(
                [rng.randrange(256) for _ in range(size)], dtype=np.uint8
            )
        else:
            coeffs = np.zeros(size, dtype=np.uint8)
            for vector in basis:
                gf256.vec_addmul(
                    coeffs,
                    np.array(vector, dtype=np.uint8),
                    rng.randrange(256),
                )
        if payload_mode == "all" or (payload_mode == "mixed" and index % 2):
            payload = np.array(
                [rng.randrange(256) for _ in range(payload_len)],
                dtype=np.uint8,
            )
        else:
            payload = None
        stream.append((coeffs, payload))
    # sprinkle pathological inputs: a zero vector and an exact duplicate
    stream.insert(1, (np.zeros(size, dtype=np.uint8), None))
    stream.append((stream[0][0].copy(), None if stream[0][1] is None else stream[0][1].copy()))
    return stream


class TestDecoderEquivalence:
    @pytest.mark.parametrize("size", [1, 3, 8, 16])
    @pytest.mark.parametrize("payload_mode", ["all", "none", "mixed"])
    def test_random_streams_match_reference(self, size, payload_mode):
        for seed in range(3):
            stream = _random_stream(seed, size, payload_mode, size + 4)
            fast = IncrementalDecoder(size)
            slow = _ReferenceDecoder(size)
            for coeffs, payload in stream:
                # innovation probe must agree and stay pure
                probe = fast.would_be_innovative(coeffs.copy())
                verdict_fast = fast.add(coeffs, payload)
                verdict_slow = slow.add(coeffs, payload)
                assert probe == verdict_slow
                assert verdict_fast == verdict_slow
                assert fast.rank == slow.rank
                assert np.array_equal(
                    fast.coefficient_matrix(), slow.coefficient_matrix()
                )
            if fast.is_complete and payload_mode == "all":
                assert np.array_equal(fast.decode(), slow.decode())

    @pytest.mark.parametrize("span", [1, 2, 4])
    def test_singular_streams_match_reference(self, span):
        """Streams confined to a low-dimensional span never exceed its rank
        and agree with the reference verdict-for-verdict."""
        size = 8
        for seed in range(3):
            stream = _random_stream(seed, size, "none", 10, span=span)
            fast = IncrementalDecoder(size)
            slow = _ReferenceDecoder(size)
            for coeffs, payload in stream:
                assert fast.add(coeffs, payload) == slow.add(coeffs, payload)
            assert fast.rank == slow.rank <= span
            assert np.array_equal(
                fast.coefficient_matrix(), slow.coefficient_matrix()
            )
            with pytest.raises(ValueError, match="not decodable"):
                fast.decode()

    def test_payload_free_complete_segment_refuses_decode(self):
        fast = IncrementalDecoder(3)
        for row in np.eye(3, dtype=np.uint8):
            assert fast.add(row)
        assert fast.is_complete
        with pytest.raises(ValueError, match="carried no payloads"):
            fast.decode()

    def test_full_roundtrip_recovers_originals(self):
        rng = np.random.default_rng(7)
        size, payload_len = 12, 33
        originals = rng.integers(0, 256, size=(size, payload_len), dtype=np.uint8)
        decoder = IncrementalDecoder(size)
        while not decoder.is_complete:
            coeffs = rng.integers(0, 256, size=size, dtype=np.uint8)
            payload = gf256.combine_rows(originals, coeffs)
            decoder.add(coeffs, payload)
        assert np.array_equal(decoder.decode(), originals)


class TestRrefEquivalence:
    def _reference_rref(self, matrix):
        """Seed-style rref with Python pivot search and per-row axpy."""
        work = np.array(matrix, dtype=np.uint8)
        n_rows, n_cols = work.shape
        pivot_cols = []
        row = 0
        for col in range(n_cols):
            if row >= n_rows:
                break
            pivot_row = None
            for candidate in range(row, n_rows):
                if work[candidate, col]:
                    pivot_row = candidate
                    break
            if pivot_row is None:
                continue
            if pivot_row != row:
                work[[row, pivot_row]] = work[[pivot_row, row]]
            pivot_value = int(work[row, col])
            if pivot_value != 1:
                work[row] = gf256.vec_scale(work[row], gf256.inv(pivot_value))
            for other in range(n_rows):
                if other != row and work[other, col]:
                    gf256.vec_addmul(
                        work[other], work[row], int(work[other, col])
                    )
            pivot_cols.append(col)
            row += 1
        return work, pivot_cols

    @pytest.mark.parametrize("shape", [(1, 1), (4, 4), (6, 3), (3, 7), (12, 12)])
    def test_random_matrices_match_reference(self, shape):
        rng = np.random.default_rng(42)
        for trial in range(4):
            matrix = rng.integers(0, 256, size=shape, dtype=np.uint8)
            if trial % 2:
                # force rank deficiency: duplicate and zero some rows
                matrix[-1] = matrix[0]
                matrix[:, -1] = 0
            got, got_pivots = rref(matrix)
            want, want_pivots = self._reference_rref(matrix)
            assert got_pivots == want_pivots
            assert np.array_equal(got, want)
            assert rank(matrix) == len(want_pivots)
