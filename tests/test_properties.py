"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.stats.workload import DiurnalWorkload, FlashCrowdWorkload, PiecewiseWorkload
from repro.util.tables import render_series, render_table


class TestEngineProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_events_always_execute_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run_until(200.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 50.0), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_cancelled_events_never_fire(self, schedule):
        sim = Simulator()
        fired = []
        for index, (delay, cancel) in enumerate(schedule):
            handle = sim.schedule(delay, lambda i=index: fired.append(i))
            if cancel:
                handle.cancel()
        sim.run_until(100.0)
        expected = [i for i, (_, cancel) in enumerate(schedule) if not cancel]
        assert sorted(fired) == expected

    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30), st.floats(0.0, 10.0))
    @settings(max_examples=40)
    def test_run_until_horizon_respected(self, delays, horizon):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run_until(horizon)
        assert all(delay <= horizon for delay in fired)
        assert sim.now == horizon


class TestWorkloadProperties:
    @given(
        st.floats(0.1, 50.0),
        st.floats(0.0, 100.0),
        st.floats(0.01, 50.0),
        st.floats(1.0, 20.0),
    )
    @settings(max_examples=60)
    def test_flash_crowd_rate_bounded_by_max(self, base, start, width, mult):
        workload = FlashCrowdWorkload(base, start, start + width, mult)
        for t in (0.0, start - 0.01, start, start + width / 2, start + width, 1e6):
            rate = workload.rate(t)
            assert 0.0 <= rate <= workload.max_rate + 1e-12

    @given(
        st.floats(0.1, 50.0),
        st.floats(0.0, 1.0),
        st.floats(0.5, 100.0),
        st.floats(0.0, 1000.0),
    )
    @settings(max_examples=60)
    def test_diurnal_rate_nonnegative_and_bounded(self, base, amp, period, t):
        workload = DiurnalWorkload(base, amp, period)
        rate = workload.rate(t)
        assert -1e-9 <= rate <= workload.max_rate + 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 100.0), st.floats(0.0, 50.0)),
            min_size=1,
            max_size=10,
        ).map(lambda steps: sorted(steps, key=lambda p: p[0])),
        st.floats(-10.0, 200.0),
    )
    @settings(max_examples=60)
    def test_piecewise_rate_is_one_of_the_steps(self, steps, t):
        workload = PiecewiseWorkload(steps)
        assert workload.rate(t) in {rate for _, rate in steps}

    @given(st.floats(0.1, 50.0), st.floats(0.0, 40.0), st.floats(0.1, 40.0))
    @settings(max_examples=40)
    def test_mean_rate_between_extremes(self, base, start, width):
        workload = FlashCrowdWorkload(base, start, start + width, 3.0)
        mean = workload.mean_rate(0.0, start + width + 10.0)
        assert base - 1e-9 <= mean <= workload.max_rate + 1e-9


class TestTableProperties:
    header_text = st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=12
    )

    @given(
        st.integers(1, 5),
        st.integers(0, 6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40)
    def test_render_table_is_rectangular(self, n_cols, n_rows, rng):
        headers = [f"col{i}" for i in range(n_cols)]
        rows = [
            [
                rng.choice([None, rng.random() * 100, rng.randint(0, 9), "txt"])
                for _ in range(n_cols)
            ]
            for _ in range(n_rows)
        ]
        table = render_table(headers, rows)
        widths = {len(line) for line in table.splitlines()}
        assert len(widths) == 1

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_render_series_contains_all_values(self, xs):
        ys = [x * 2 for x in xs]
        table = render_series("x", xs, [("y", ys)])
        assert table.count("\n") == len(xs) + 1  # header + rule + rows


class TestRandomSeedProperties:
    @given(st.integers(0, 2**31), st.text(min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_named_substreams_are_reproducible(self, seed, name):
        from repro.sim.rng import SeedSequenceRegistry

        a = SeedSequenceRegistry(seed).python(name).random()
        b = SeedSequenceRegistry(seed).python(name).random()
        assert a == b

    @given(st.integers(0, 2**31))
    @settings(max_examples=20)
    def test_small_simulations_always_consistent(self, seed):
        from repro.core.params import Parameters
        from repro.core.system import CollectionSystem

        params = Parameters(
            n_peers=8,
            arrival_rate=3.0,
            gossip_rate=3.0,
            deletion_rate=1.0,
            normalized_capacity=1.0,
            segment_size=2,
            n_servers=1,
        )
        system = CollectionSystem(params, seed=seed)
        system.run_until(3.0)
        system.consistency_check()
