"""Tests for protocol parameter validation and derived quantities."""

import math

import pytest

from repro.core.params import (
    MODE_ABSTRACT,
    MODE_RLNC,
    Parameters,
    SELECTION_PROPORTIONAL,
    SELECTION_UNIFORM,
)


def make(**overrides):
    defaults = dict(
        n_peers=100,
        arrival_rate=20.0,
        gossip_rate=10.0,
        deletion_rate=1.0,
        normalized_capacity=8.0,
        segment_size=10,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


class TestValidation:
    def test_valid_defaults(self):
        params = make()
        assert params.mode == MODE_ABSTRACT
        assert params.segment_selection == SELECTION_PROPORTIONAL

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_peers", 0),
            ("n_peers", -5),
            ("arrival_rate", 0.0),
            ("arrival_rate", -1.0),
            ("gossip_rate", -1.0),
            ("deletion_rate", 0.0),
            ("normalized_capacity", 0.0),
            ("segment_size", 0),
            ("n_servers", 0),
            ("mean_lifetime", 0.0),
            ("mean_lifetime", -2.0),
            ("payload_bytes", -1),
            ("gossip_target_tries", 0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            make(**{field: value})

    def test_zero_gossip_rate_allowed(self):
        assert make(gossip_rate=0.0).gossip_rate == 0.0

    def test_more_servers_than_peers_rejected(self):
        with pytest.raises(ValueError):
            make(n_peers=4, n_servers=5)

    def test_buffer_below_segment_rejected(self):
        with pytest.raises(ValueError):
            make(segment_size=10, buffer_capacity=5)

    def test_payload_requires_rlnc(self):
        with pytest.raises(ValueError):
            make(payload_bytes=32)
        assert make(payload_bytes=32, mode=MODE_RLNC).payload_bytes == 32

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make(mode="quantum")

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            make(segment_selection="by-vibes")

    def test_frozen(self):
        with pytest.raises(Exception):
            make().n_peers = 5


class TestDerived:
    def test_segment_arrival_rate(self):
        assert make(arrival_rate=20.0, segment_size=10).segment_arrival_rate == 2.0

    def test_per_server_rate(self):
        params = make(n_peers=100, normalized_capacity=8.0, n_servers=4)
        assert params.per_server_rate == 200.0
        assert params.aggregate_capacity == 800.0

    def test_capacity_ratio(self):
        assert make(normalized_capacity=8.0, arrival_rate=20.0).capacity_ratio == 0.4

    def test_occupancy_bounds(self):
        params = make(arrival_rate=20.0, gossip_rate=10.0, deletion_rate=2.0)
        assert params.occupancy_upper_bound == 15.0
        assert params.storage_overhead_bound == 5.0

    def test_auto_buffer_capacity_clears_occupancy(self):
        params = make()
        assert params.effective_buffer_capacity > params.occupancy_upper_bound
        assert params.effective_buffer_capacity >= 3 * params.segment_size

    def test_explicit_buffer_capacity_respected(self):
        assert make(buffer_capacity=64).effective_buffer_capacity == 64

    def test_churn_enabled(self):
        assert not make().churn_enabled
        assert not make(mean_lifetime=math.inf).churn_enabled
        assert make(mean_lifetime=5.0).churn_enabled

    def test_is_coded(self):
        assert not make(segment_size=1).is_coded
        assert make(segment_size=2).is_coded

    def test_capacity_assumption(self):
        assert make(normalized_capacity=8.0, gossip_rate=10.0).satisfies_capacity_assumption
        assert not make(normalized_capacity=12.0, gossip_rate=10.0).satisfies_capacity_assumption

    def test_with_changes(self):
        params = make()
        changed = params.with_changes(segment_size=5)
        assert changed.segment_size == 5
        assert params.segment_size == 10
        with pytest.raises(ValueError):
            params.with_changes(segment_size=0)

    def test_describe_mentions_key_symbols(self):
        text = make(mean_lifetime=5.0).describe()
        for token in ("N=100", "s=10", "L=5", "mode=abstract"):
            assert token in text
        assert "static" in make().describe()
