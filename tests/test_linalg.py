"""Tests for GF(2^8) linear algebra and the incremental decoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import gf256
from repro.coding.linalg import (
    IncrementalDecoder,
    invert,
    is_invertible,
    rank,
    rref,
    solve,
)


def random_matrix(seed, rows, cols):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


class TestRref:
    def test_identity_is_fixed_point(self):
        identity = np.eye(4, dtype=np.uint8)
        reduced, pivots = rref(identity)
        assert np.array_equal(reduced, identity)
        assert pivots == [0, 1, 2, 3]

    def test_zero_matrix(self):
        reduced, pivots = rref(np.zeros((3, 3), dtype=np.uint8))
        assert not reduced.any()
        assert pivots == []

    def test_input_not_mutated(self):
        matrix = random_matrix(1, 3, 3)
        copy = matrix.copy()
        rref(matrix)
        assert np.array_equal(matrix, copy)

    def test_pivot_columns_are_unit(self):
        matrix = random_matrix(2, 4, 6)
        reduced, pivots = rref(matrix)
        for row_index, col in enumerate(pivots):
            column = reduced[:, col]
            assert column[row_index] == 1
            assert column.sum() == 1  # single nonzero entry

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            rref(np.array([[300]]))


class TestRank:
    def test_rank_of_identity(self):
        assert rank(np.eye(5, dtype=np.uint8)) == 5

    def test_rank_of_duplicated_rows(self):
        row = np.array([1, 2, 3], dtype=np.uint8)
        matrix = np.stack([row, row, gf256.vec_scale(row, 7)])
        assert rank(matrix) == 1

    def test_rank_bounded_by_dims(self):
        matrix = random_matrix(3, 2, 5)
        assert rank(matrix) <= 2

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25)
    def test_random_square_matrices_usually_full_rank(self, seed):
        # Over GF(256) a random 4x4 matrix is singular with probability
        # ~1/255 — assert rank is never above n and sanity check det-like
        # behavior via invertibility consistency.
        matrix = random_matrix(seed, 4, 4)
        r = rank(matrix)
        assert 0 <= r <= 4
        assert is_invertible(matrix) == (r == 4)


class TestSolveInvert:
    def test_solve_identity(self):
        rhs = np.array([7, 8, 9], dtype=np.uint8)
        assert np.array_equal(solve(np.eye(3, dtype=np.uint8), rhs), rhs)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25)
    def test_solve_recovers_solution(self, seed):
        matrix = random_matrix(seed, 4, 4)
        if not is_invertible(matrix):
            return
        x = random_matrix(seed + 1, 4, 1)[:, 0]
        b = gf256.mat_vec(matrix, x)
        assert np.array_equal(solve(matrix, b), x)

    def test_solve_singular_raises(self):
        singular = np.zeros((2, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            solve(singular, np.array([1, 2], dtype=np.uint8))

    def test_solve_non_square_raises(self):
        with pytest.raises(ValueError):
            solve(np.zeros((2, 3), dtype=np.uint8), np.zeros(2, dtype=np.uint8))

    def test_solve_rhs_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve(np.eye(3, dtype=np.uint8), np.zeros(2, dtype=np.uint8))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_invert_roundtrip(self, seed):
        matrix = random_matrix(seed, 3, 3)
        if not is_invertible(matrix):
            return
        inverse = invert(matrix)
        product = gf256.mat_mul(matrix, inverse)
        assert np.array_equal(product, np.eye(3, dtype=np.uint8))

    def test_invert_singular_raises(self):
        with pytest.raises(ValueError):
            invert(np.zeros((3, 3), dtype=np.uint8))


class TestIncrementalDecoder:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            IncrementalDecoder(0)

    def test_unit_vectors_complete(self):
        decoder = IncrementalDecoder(3)
        for index in range(3):
            unit = np.zeros(3, dtype=np.uint8)
            unit[index] = 1
            assert decoder.add(unit)
        assert decoder.is_complete
        assert decoder.rank == 3

    def test_duplicate_is_redundant(self):
        decoder = IncrementalDecoder(3)
        vector = np.array([1, 2, 3], dtype=np.uint8)
        assert decoder.add(vector)
        assert not decoder.add(vector)
        assert not decoder.add(gf256.vec_scale(vector, 9))
        assert decoder.rank == 1

    def test_zero_vector_is_redundant(self):
        decoder = IncrementalDecoder(2)
        assert not decoder.add(np.zeros(2, dtype=np.uint8))

    def test_would_be_innovative_is_pure(self):
        decoder = IncrementalDecoder(2)
        vector = np.array([1, 1], dtype=np.uint8)
        assert decoder.would_be_innovative(vector)
        assert decoder.rank == 0
        decoder.add(vector)
        assert not decoder.would_be_innovative(vector)

    def test_shape_mismatch_raises(self):
        decoder = IncrementalDecoder(3)
        with pytest.raises(ValueError):
            decoder.add(np.zeros(2, dtype=np.uint8))

    def test_decode_without_payloads_raises(self):
        decoder = IncrementalDecoder(1)
        decoder.add(np.array([1], dtype=np.uint8))
        with pytest.raises(ValueError):
            decoder.decode()

    def test_decode_incomplete_raises(self):
        decoder = IncrementalDecoder(2)
        decoder.add(np.array([1, 0], dtype=np.uint8), np.array([5], dtype=np.uint8))
        with pytest.raises(ValueError):
            decoder.decode()

    def test_payload_length_mismatch_raises(self):
        decoder = IncrementalDecoder(2)
        decoder.add(np.array([1, 0], dtype=np.uint8), np.array([5, 6], dtype=np.uint8))
        with pytest.raises(ValueError):
            decoder.add(
                np.array([0, 1], dtype=np.uint8), np.array([5], dtype=np.uint8)
            )

    @given(st.integers(0, 2**32 - 1), st.integers(1, 8), st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_decode_recovers_originals_from_random_combinations(
        self, seed, size, payload_len
    ):
        rng = np.random.default_rng(seed)
        originals = rng.integers(0, 256, size=(size, payload_len), dtype=np.uint8)
        decoder = IncrementalDecoder(size)
        attempts = 0
        while not decoder.is_complete:
            attempts += 1
            assert attempts < 50 * size, "decoder failed to fill up"
            coeffs = rng.integers(0, 256, size=size, dtype=np.uint8)
            payload = np.zeros(payload_len, dtype=np.uint8)
            for j in range(size):
                if coeffs[j]:
                    gf256.vec_addmul(payload, originals[j], int(coeffs[j]))
            decoder.add(coeffs, payload)
        assert np.array_equal(decoder.decode(), originals)

    def test_rank_never_exceeds_size(self):
        rng = np.random.default_rng(7)
        decoder = IncrementalDecoder(4)
        for _ in range(40):
            decoder.add(rng.integers(0, 256, size=4, dtype=np.uint8))
        assert decoder.rank == 4
        assert decoder.is_complete
