"""Integration checks for the shipped results archive (results/*.json).

The archive is produced by ``repro all --quality fast --json results/`` and
serves as the regression baseline for `compare_results`.  These tests keep
it loadable and self-consistent without re-running the experiments.
"""

import pathlib

import pytest

from repro.experiments.base import SeriesResult
from repro.experiments.regression import compare_archives, compare_results

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

archives = sorted(RESULTS_DIR.glob("*.json")) if RESULTS_DIR.exists() else []


@pytest.mark.skipif(not archives, reason="results archive not generated")
class TestResultsArchive:
    def test_every_archive_loads(self):
        for path in archives:
            result = SeriesResult.from_json(path.read_text())
            assert result.name == path.stem
            assert result.x_values, path
            assert result.series, path

    def test_archives_compare_equal_to_themselves(self):
        for path in archives:
            result = SeriesResult.from_json(path.read_text())
            report = compare_results(result, result, rel_tolerance=0.0)
            assert report.matches, report.summary()

    def test_compare_archives_end_to_end(self):
        loaded = {
            path.stem: SeriesResult.from_json(path.read_text())
            for path in archives
        }
        reports = compare_archives(loaded, loaded)
        assert all(report.matches for report in reports.values())

    def test_figure_archives_present(self):
        names = {path.stem for path in archives}
        for required in ("fig3", "fig4", "fig5", "fig6", "theorem1", "baseline"):
            assert required in names, f"missing archive for {required}"
