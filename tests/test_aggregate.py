"""Tests for operator-side telemetry analytics."""

import random

import pytest

from repro.stats.aggregate import (
    FieldSummary,
    OutageReport,
    compare_cohorts,
    detect_outage,
    fleet_health,
    group_by_peer,
    summarize_peer,
    _percentile,
)
from repro.stats.records import StatsRecord, synthesize_records


def record(peer_id=1, **overrides):
    defaults = dict(
        timestamp=0.0,
        peer_id=peer_id,
        session_id=1,
        buffer_level=15.0,
        download_rate=800.0,
        upload_rate=300.0,
        loss_fraction=0.01,
        playback_delay=1.0,
        neighbor_count=20,
        rebuffering=False,
    )
    defaults.update(overrides)
    return StatsRecord(**defaults)


class TestPercentile:
    def test_single_value(self):
        assert _percentile([5.0], 50.0) == 5.0

    def test_median_of_pair(self):
        assert _percentile([1.0, 3.0], 50.0) == 2.0

    def test_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(data, 0.0) == 1.0
        assert _percentile(data, 100.0) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _percentile([], 50.0)
        with pytest.raises(ValueError):
            _percentile([1.0], 150.0)


class TestFieldSummary:
    def test_basic_stats(self):
        summary = FieldSummary.from_values([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.p50 == 2.0
        assert summary.minimum == 1.0 and summary.maximum == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FieldSummary.from_values([])


class TestPeerHealth:
    def test_summarize_healthy_peer(self):
        records = [record(timestamp=float(i)) for i in range(5)]
        health = summarize_peer(1, records)
        assert health.records == 5
        assert health.first_seen == 0.0 and health.last_seen == 4.0
        assert health.rebuffering_fraction == 0.0
        assert health.health_score > 0.8
        assert not health.is_degraded

    def test_degraded_peer_scores_low(self):
        records = [
            record(buffer_level=0.5, loss_fraction=0.4, rebuffering=True)
            for _ in range(4)
        ]
        health = summarize_peer(1, records)
        assert health.is_degraded
        assert health.health_score < 0.3

    def test_wrong_peer_rejected(self):
        with pytest.raises(ValueError):
            summarize_peer(1, [record(peer_id=2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_peer(1, [])


class TestFleet:
    def make_fleet(self):
        rng = random.Random(0)
        records = []
        for peer_id in range(8):
            records.extend(
                synthesize_records(
                    rng,
                    peer_id=peer_id,
                    session_id=1,
                    count=10,
                    degraded=(peer_id % 4 == 0),
                )
            )
        return records

    def test_group_by_peer(self):
        grouped = group_by_peer(self.make_fleet())
        assert set(grouped) == set(range(8))
        assert all(len(records) == 10 for records in grouped.values())

    def test_fleet_health_sorted_triage_first(self):
        profiles = fleet_health(self.make_fleet())
        scores = [p.health_score for p in profiles]
        assert scores == sorted(scores)

    def test_detect_outage_finds_degraded_cohort(self):
        report = detect_outage(self.make_fleet())
        assert isinstance(report, OutageReport)
        degraded_ids = {p.peer_id for p in report.degraded}
        assert degraded_ids == {0, 4}
        assert report.degraded_fraction == pytest.approx(0.25)
        assert report.loss_gap() > 0.1

    def test_outage_report_handles_uniform_fleet(self):
        rng = random.Random(1)
        healthy_only = synthesize_records(rng, 1, 1, 20, degraded=False)
        report = detect_outage(healthy_only)
        assert not report.degraded
        assert report.loss_gap() is None
        assert report.degraded_fraction == 0.0


class TestCohorts:
    def test_compare_cohorts(self):
        rng = random.Random(2)
        departed = synthesize_records(rng, 1, 1, 30, degraded=True)
        survivors = synthesize_records(rng, 2, 1, 30, degraded=False)
        comparison = compare_cohorts(departed, survivors)
        loss_departed, loss_survivors = comparison["loss_fraction"]
        assert loss_departed > loss_survivors
        buffer_departed, buffer_survivors = comparison["buffer_level"]
        assert buffer_departed < buffer_survivors
        assert set(comparison) == {
            "buffer_level",
            "loss_fraction",
            "download_rate",
            "playback_delay",
            "rebuffering",
        }

    def test_empty_cohort_rejected(self):
        with pytest.raises(ValueError):
            compare_cohorts([], [record()])
