"""Cross-model agreement: the four fidelity levels must tell one story.

DESIGN.md §4 promises that the ODE limit, the bipartite graph process, the
abstract event simulator, and the full-RLNC simulator validate each other.
These tests pin that agreement with explicit tolerances at one mid-size
configuration per comparison (kept small enough for CI).
"""

import pytest

from repro.analysis.bipartite import BipartiteProcess
from repro.analysis.ode import CollectionODE
from repro.analysis.theorems import (
    theorem1_storage,
    theorem2_throughput,
    theorem2_throughput_s1,
)
from repro.core.params import Parameters
from repro.core.system import CollectionSystem

LAM, MU, GAMMA, C = 10.0, 8.0, 1.0, 4.0


def simulate(s, n_peers=150, seed=1, **overrides):
    params = Parameters(
        n_peers=n_peers,
        arrival_rate=LAM,
        gossip_rate=MU,
        deletion_rate=GAMMA,
        normalized_capacity=C,
        segment_size=s,
        n_servers=3,
        **overrides,
    )
    return CollectionSystem(params, seed=seed).run(warmup=12.0, duration=15.0)


class TestThroughputAgreement:
    def test_sim_matches_ode_coded(self):
        steady = CollectionODE(LAM, MU, GAMMA, 8, C).steady_state()
        predicted = theorem2_throughput(steady, LAM, C, 8).normalized_throughput
        report = simulate(8)
        assert report.normalized_throughput == pytest.approx(predicted, rel=0.06)

    def test_sim_matches_closed_form_uncoded(self):
        predicted = theorem2_throughput_s1(LAM, MU, GAMMA, C).normalized_throughput
        report = simulate(1)
        assert report.normalized_throughput == pytest.approx(predicted, rel=0.06)

    def test_bipartite_matches_ode(self):
        steady = CollectionODE(LAM, MU, GAMMA, 8, C).steady_state()
        predicted = theorem2_throughput(steady, LAM, C, 8).normalized_throughput
        process = BipartiteProcess(
            n_peers=200,
            arrival_rate=LAM,
            gossip_rate=MU,
            deletion_rate=GAMMA,
            segment_size=8,
            normalized_capacity=C,
            seed=2,
        )
        report = process.run(12.0, 15.0)
        assert report.normalized_throughput == pytest.approx(predicted, rel=0.06)

    def test_rlnc_close_to_abstract(self):
        """Real GF(2^8) coding loses only a little to non-innovative draws."""
        abstract = simulate(4, n_peers=50, seed=3)
        rlnc = simulate(4, n_peers=50, seed=3, mode="rlnc")
        assert rlnc.normalized_throughput <= abstract.normalized_throughput + 0.02
        assert rlnc.normalized_throughput > 0.6 * abstract.normalized_throughput


class TestOccupancyAgreement:
    def test_all_models_agree_on_rho(self):
        closed = theorem1_storage(LAM, MU, GAMMA).occupancy
        steady = CollectionODE(LAM, MU, GAMMA, 4, C).steady_state()
        assert steady.e == pytest.approx(closed, rel=0.02)

        report = simulate(4)
        assert report.mean_buffer_occupancy == pytest.approx(closed, rel=0.08)

        process = BipartiteProcess(
            n_peers=200,
            arrival_rate=LAM,
            gossip_rate=MU,
            deletion_rate=GAMMA,
            segment_size=4,
            normalized_capacity=C,
            seed=4,
        )
        bp_report = process.run(12.0, 12.0)
        assert bp_report.mean_occupancy == pytest.approx(closed, rel=0.08)

    def test_empty_fraction_agrees(self):
        lam, mu = 1.0, 1.5  # a sparse regime where z0 is substantial
        closed = theorem1_storage(lam, mu, GAMMA)
        params = Parameters(
            n_peers=200,
            arrival_rate=lam,
            gossip_rate=mu,
            deletion_rate=GAMMA,
            normalized_capacity=0.5,
            segment_size=1,
            n_servers=2,
        )
        report = CollectionSystem(params, seed=5).run(15.0, 20.0)
        assert report.empty_peer_fraction == pytest.approx(closed.z0, abs=0.05)


class TestDistributionAgreement:
    def test_peer_degrees_are_poisson_like(self):
        """Theorem 1's z_i = z0 rho^i / i! against a simulated snapshot."""
        from repro.analysis.theorems import poisson_degree_distribution

        lam, mu = 3.0, 2.0  # rho = 5: distribution fits in a short range
        params = Parameters(
            n_peers=400,
            arrival_rate=lam,
            gossip_rate=mu,
            deletion_rate=GAMMA,
            normalized_capacity=1.0,
            segment_size=1,
            n_servers=2,
        )
        system = CollectionSystem(params, seed=6)
        system.run_until(25.0)
        observed = system.rescaled_peer_degrees()
        storage = theorem1_storage(lam, mu, GAMMA)
        predicted = poisson_degree_distribution(
            storage.occupancy, storage.z0, len(observed) - 1
        )
        # total-variation distance between snapshot and Poisson prediction
        tv = 0.5 * sum(
            abs(o - p) for o, p in zip(observed, predicted)
        )
        assert tv < 0.12

    def test_segment_degree_means_agree(self):
        """Mean segment degree e / (segments per peer): ODE vs simulator."""
        steady = CollectionODE(LAM, MU, GAMMA, 4, C).steady_state()
        ode_mean_degree = steady.e / steady.segments_per_peer

        system = CollectionSystem(
            Parameters(
                n_peers=150,
                arrival_rate=LAM,
                gossip_rate=MU,
                deletion_rate=GAMMA,
                normalized_capacity=C,
                segment_size=4,
                n_servers=3,
            ),
            seed=7,
        )
        system.run_until(20.0)
        histogram = system.segment_degree_histogram()
        total_segments = sum(histogram.values())
        total_edges = sum(d * c for d, c in histogram.items())
        sim_mean_degree = total_edges / total_segments
        assert sim_mean_degree == pytest.approx(ode_mean_degree, rel=0.15)
