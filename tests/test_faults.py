"""Tests for the fault-injection subsystem (plan, injector, degradation)."""

import math
import random

import pytest

from repro.coding.block import make_abstract_blocks
from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.faults import FaultInjector, FaultPlan, corrupt_block
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.trace import (
    KIND_BURST,
    KIND_DROP,
    KIND_GOSSIP,
    KIND_OUTAGE,
    KIND_POLLUTED,
    KIND_RECOVER,
    Tracer,
)


def params(faults=None, **overrides):
    defaults = dict(
        n_peers=40,
        arrival_rate=6.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=3.0,
        segment_size=4,
        n_servers=2,
    )
    defaults.update(overrides)
    return Parameters(faults=faults, **defaults)


def make_injector(plan, n_slots=20, seed=0, tracer=None):
    sim = Simulator()
    metrics = MetricsCollector(
        n_peers=n_slots,
        arrival_rate=1.0,
        segment_size=1,
        normalized_capacity=1.0,
    )
    injector = FaultInjector(
        plan=plan,
        sim=sim,
        rng=random.Random(seed),
        n_slots=n_slots,
        metrics=metrics,
        tracer=tracer,
    )
    return sim, metrics, injector


class FakeHolding:
    def __init__(self, polluted_count=0):
        self.polluted_count = polluted_count


class TestFaultPlan:
    def test_default_plan_is_null(self):
        plan = FaultPlan()
        assert plan.is_null
        assert not plan.has_outages
        assert plan.outage_duty_cycle == 0.0
        assert plan.describe() == "no faults"

    @pytest.mark.parametrize(
        "knob", ["gossip_loss_rate", "pull_loss_rate", "pollution_fraction"]
    )
    def test_probabilities_validated(self, knob):
        with pytest.raises(ValueError):
            FaultPlan(**{knob: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(**{knob: -0.1})

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(outage_windows=((2.0, 1.0),))  # end <= start
        with pytest.raises(ValueError):
            FaultPlan(outage_windows=((-1.0, 2.0),))  # negative start
        with pytest.raises(ValueError):
            FaultPlan(outage_windows=((0.0, math.inf),))  # non-finite
        with pytest.raises(ValueError):
            FaultPlan(outage_windows=((0.0, 3.0), (2.0, 4.0)))  # overlap
        with pytest.raises(ValueError):
            FaultPlan(outage_windows=((5.0, 6.0), (1.0, 2.0)))  # unsorted

    def test_malformed_window_entries_name_the_offender(self):
        with pytest.raises(ValueError, match=r"outage_windows\[1\]"):
            FaultPlan(outage_windows=((0.0, 1.0), (2.0, 3.0, 4.0)))
        with pytest.raises(ValueError, match=r"outage_windows\[0\]"):
            FaultPlan(outage_windows=((1.0,),))
        with pytest.raises(ValueError, match="pair of numbers"):
            FaultPlan(outage_windows=((0.0, "soon"),))
        with pytest.raises(ValueError, match=r"outage_windows\[0\]"):
            FaultPlan(outage_windows=("window",))

    def test_window_error_messages_locate_bad_values(self):
        with pytest.raises(ValueError, match=r"outage_windows\[2\]"):
            FaultPlan(
                outage_windows=((0.0, 1.0), (2.0, 3.0), (5.0, 4.0))
            )
        with pytest.raises(ValueError, match="window 1 .* window 0 ends"):
            FaultPlan(outage_windows=((0.0, 3.0), (2.0, 4.0)))

    def test_windows_and_renewal_mutually_exclusive(self):
        with pytest.raises(ValueError):
            FaultPlan(
                outage_windows=((1.0, 2.0),),
                outage_rate=0.5,
                outage_duration=1.0,
            )

    def test_renewal_needs_duration(self):
        with pytest.raises(ValueError):
            FaultPlan(outage_rate=0.5)

    def test_bursts_need_fraction(self):
        with pytest.raises(ValueError):
            FaultPlan(burst_rate=1.0)

    def test_duty_cycle_round_trip(self):
        plan = FaultPlan.renewal_outages(duty_cycle=0.3, duration=2.0)
        assert plan.outage_duty_cycle == pytest.approx(0.3)
        assert plan.outage_duration == 2.0
        assert not plan.is_null

    def test_renewal_outages_zero_duty_is_null(self):
        assert FaultPlan.renewal_outages(0.0, 2.0).is_null

    def test_duty_cycle_nan_for_windows(self):
        plan = FaultPlan(outage_windows=((1.0, 2.0),))
        assert math.isnan(plan.outage_duty_cycle)

    def test_describe_names_active_channels(self):
        text = FaultPlan(
            gossip_loss_rate=0.1,
            pollution_fraction=0.2,
            burst_rate=1.0,
            burst_fraction=0.1,
        ).describe()
        assert "loss" in text and "pollution" in text and "bursts" in text

    def test_has_faults_parameter_property(self):
        assert not params().has_faults
        assert not params(faults=FaultPlan()).has_faults
        assert params(faults=FaultPlan(pull_loss_rate=0.1)).has_faults

    def test_parameters_reject_non_plan(self):
        with pytest.raises(ValueError):
            params(faults="lossy")


class TestFaultInjectorUnit:
    def test_null_plan_draws_and_schedules_nothing(self):
        sim, _, injector = make_injector(FaultPlan())
        injector.start()
        assert not injector.polluters
        assert not injector.drop_gossip()
        assert not injector.drop_pull()
        assert sim.pending == 0  # bitwise neutrality: no clocks armed

    def test_double_start_raises(self):
        _, _, injector = make_injector(FaultPlan())
        injector.start()
        with pytest.raises(RuntimeError):
            injector.start()

    def test_start_before_bind_raises_when_outages_active(self):
        _, _, injector = make_injector(
            FaultPlan(outage_windows=((1.0, 2.0),))
        )
        with pytest.raises(RuntimeError):
            injector.start()

    def test_start_before_bind_raises_when_bursts_active(self):
        _, _, injector = make_injector(
            FaultPlan(burst_rate=1.0, burst_fraction=0.2)
        )
        with pytest.raises(RuntimeError):
            injector.start()

    def test_stop_cancels_pending_fault_events(self):
        sim, _, injector = make_injector(
            FaultPlan(outage_windows=((1.0, 2.0), (3.0, 4.0)))
        )
        injector.bind(lambda: None, lambda e: None, lambda s: None)
        injector.start()
        assert sim.pending == 4
        injector.stop()
        sim.run_until(10.0)
        assert injector.outages_started == 0

    def test_loss_extremes(self):
        _, _, always = make_injector(
            FaultPlan(gossip_loss_rate=1.0, pull_loss_rate=1.0)
        )
        assert all(always.drop_gossip() for _ in range(50))
        assert all(always.drop_pull() for _ in range(50))

    def test_polluter_sampling_size(self):
        _, _, injector = make_injector(
            FaultPlan(pollution_fraction=0.25), n_slots=20
        )
        assert len(injector.polluters) == 5
        assert all(0 <= slot < 20 for slot in injector.polluters)
        # tiny fractions still nominate at least one polluter
        _, _, tiny = make_injector(FaultPlan(pollution_fraction=0.01), n_slots=20)
        assert len(tiny.polluters) == 1

    def test_pollution_propagates_through_contaminated_holdings(self):
        _, _, injector = make_injector(
            FaultPlan(pollution_fraction=0.25), n_slots=20
        )
        polluter = next(iter(injector.polluters))
        honest = next(
            s for s in range(20) if s not in injector.polluters
        )
        clean = FakeHolding(polluted_count=0)
        dirty = FakeHolding(polluted_count=2)
        assert injector.pollutes(polluter, clean)
        assert not injector.pollutes(honest, clean)
        # an honest peer re-encoding over junk emits junk
        assert injector.pollutes(honest, dirty)

    def test_maybe_pollute_corrupts_in_place(self):
        _, _, injector = make_injector(
            FaultPlan(pollution_fraction=1.0), n_slots=4
        )
        from repro.coding.block import SegmentDescriptor

        descriptor = SegmentDescriptor(
            segment_id=0, source_peer=0, size=1, injected_at=0.0
        )
        block = make_abstract_blocks(descriptor, 1, 0.0)[0]
        assert not block.polluted
        assert injector.maybe_pollute(0, FakeHolding(), block)
        assert block.polluted

    def test_corrupt_block_zeroes_coefficients(self):
        import numpy as np

        from repro.coding.block import SegmentDescriptor

        descriptor = SegmentDescriptor(
            segment_id=0, source_peer=0, size=2, injected_at=0.0
        )
        block = make_abstract_blocks(descriptor, 1, 0.0)[0]
        block.coefficients = np.array([3, 7], dtype=np.uint8)
        corrupt_block(block)
        assert block.polluted
        assert not block.coefficients.any()

    def test_burst_size_bounds(self):
        _, _, injector = make_injector(
            FaultPlan(burst_rate=1.0, burst_fraction=0.1), n_slots=20
        )
        assert injector.burst_size() == 2
        _, _, everyone = make_injector(
            FaultPlan(burst_rate=1.0, burst_fraction=1.0), n_slots=20
        )
        assert everyone.burst_size() == 20

    def test_outage_window_machinery(self):
        tracer = Tracer()
        sim, metrics, injector = make_injector(
            FaultPlan(outage_windows=((2.0, 5.0),)), tracer=tracer
        )
        paused, resumed = [], []
        injector.bind(
            pause_servers=lambda: paused.append(sim.now),
            resume_servers=resumed.append,
            kill_slots=lambda s: None,
        )
        injector.start()
        sim.run_until(3.0)
        assert injector.servers_down
        sim.run_until(10.0)
        assert not injector.servers_down
        assert paused == [2.0]
        assert resumed == [3.0]  # elapsed downtime handed to the resume hook
        assert injector.outages_started == 1
        assert tracer.counts == {KIND_OUTAGE: 1, KIND_RECOVER: 1}
        assert tracer.of_kind(KIND_RECOVER)[0].detail["downtime"] == 3.0


def run_faulty(plan, seed=3, tracer=None, warmup=2.0, duration=6.0, **overrides):
    system = CollectionSystem(
        params(faults=plan, **overrides), seed=seed, tracer=tracer
    )
    report = system.run(warmup, duration)
    return system, report


class TestFaultsEndToEnd:
    def test_null_plan_is_bitwise_neutral(self):
        """A FaultPlan() run replays the exact trace of a no-plan run."""

        def trace(plan):
            tracer = Tracer()
            CollectionSystem(
                params(faults=plan), seed=7, tracer=tracer
            ).run(2.0, 4.0)
            return [event.as_dict() for event in tracer.events]

        baseline = trace(None)
        assert trace(FaultPlan()) == baseline
        assert len(baseline) > 100  # the runs actually did something

    def test_total_pull_loss_collects_nothing(self):
        system, report = run_faulty(FaultPlan(pull_loss_rate=1.0))
        assert report.useful_pulls == 0
        assert report.normalized_goodput == 0.0
        assert report.transfers_dropped > 0
        assert all(s.useful_pulls == 0 for s in system.servers.servers)
        system.consistency_check()

    def test_total_gossip_loss_stops_replication(self):
        tracer = Tracer(kinds=[KIND_GOSSIP, KIND_DROP])
        system, report = run_faulty(
            FaultPlan(gossip_loss_rate=1.0), tracer=tracer
        )
        assert KIND_GOSSIP not in tracer.counts  # nothing ever delivered
        assert tracer.counts[KIND_DROP] > 0
        assert report.transfers_dropped > 0
        # the tracer sees lifetime drops; the metrics total must agree
        assert system.metrics.transfers_dropped.total == tracer.counts[KIND_DROP]

    def test_partial_loss_still_collects(self):
        _, report = run_faulty(FaultPlan(pull_loss_rate=0.3))
        assert report.useful_pulls > 0
        assert report.transfers_dropped > 0

    def test_full_pollution_rejects_everything(self):
        tracer = Tracer(kinds=[KIND_POLLUTED])
        system, report = run_faulty(
            FaultPlan(pollution_fraction=1.0), tracer=tracer
        )
        assert report.useful_pulls == 0
        assert report.blocks_rejected_polluted > 0
        assert (
            tracer.counts[KIND_POLLUTED]
            == system.metrics.blocks_rejected_polluted.total
        )
        system.consistency_check()

    def test_rlnc_pollution_never_corrupts_a_decode(self):
        from repro.experiments.robustness import rlnc_pollution_audit

        rejected, corrupted, decoded = rlnc_pollution_audit(
            seed=5, pollution_fraction=0.3
        )
        assert rejected > 0
        assert corrupted == 0
        assert decoded > 0

    def test_deterministic_outage_pauses_pulls_and_integrates_downtime(self):
        plan = FaultPlan(outage_windows=((3.0, 5.0),))
        system = CollectionSystem(params(faults=plan), seed=2)
        system.metrics.begin_window(0.0)
        system.run_until(3.0)
        during = system.metrics.pulls.total
        system.run_until(4.9)
        assert system.faults.servers_down
        assert system.metrics.pulls.total == during  # pull clocks paused
        system.run_until(8.0)
        assert not system.faults.servers_down
        assert system.metrics.pulls.total > during  # resumed (plus catch-up)
        report = system.metrics.report(8.0)
        assert report.outage_time == pytest.approx(2.0)

    def test_outage_report_window_overlap_only(self):
        # measurement window [2, 8], outage (3, 5): overlap is exactly 2.0
        _, report = run_faulty(FaultPlan(outage_windows=((3.0, 5.0),)))
        assert report.outage_time == pytest.approx(2.0)
        assert report.useful_pulls > 0

    def test_renewal_outages_accumulate_downtime(self):
        plan = FaultPlan.renewal_outages(duty_cycle=0.4, duration=1.0)
        system, report = run_faulty(plan, duration=12.0)
        assert system.faults.outages_started > 1
        assert report.outage_time > 0.0

    def test_bursts_force_correlated_departures(self):
        tracer = Tracer(kinds=[KIND_BURST])
        plan = FaultPlan(burst_rate=1.5, burst_fraction=0.2)
        system, report = run_faulty(plan, tracer=tracer, mean_lifetime=5.0)
        assert system.faults.bursts_fired > 0
        assert report.burst_departures > 0
        # every burst kills exactly burst_size slots (40 * 0.2 = 8)
        assert (
            system.metrics.burst_departures.total
            == 8 * system.faults.bursts_fired
        )
        assert tracer.counts[KIND_BURST] == system.faults.bursts_fired
        system.consistency_check()

    def test_degradation_counters_reported(self):
        plan = FaultPlan(
            gossip_loss_rate=0.2,
            pull_loss_rate=0.2,
            pollution_fraction=0.2,
            outage_windows=((3.0, 4.0),),
            burst_rate=0.8,
            burst_fraction=0.1,
        )
        system, report = run_faulty(plan, mean_lifetime=10.0)
        data = report.as_dict()
        assert data["transfers_dropped"] > 0
        assert data["blocks_rejected_polluted"] > 0
        assert data["burst_departures"] > 0
        assert data["outage_time"] == pytest.approx(1.0)
        system.consistency_check()
        system.shutdown()
        # shutdown cancelled every recurring clock: advancing time fires no
        # further pulls, bursts, or outages (pending TTL expiries may drain)
        pulls = system.metrics.pulls.total
        bursts = system.faults.bursts_fired
        outages = system.faults.outages_started
        system.run_until(system.sim.now + 10.0)
        assert system.metrics.pulls.total == pulls
        assert system.faults.bursts_fired == bursts
        assert system.faults.outages_started == outages

    def test_fault_free_report_keeps_counters_zero(self):
        _, report = run_faulty(None)
        data = report.as_dict()
        assert data["transfers_dropped"] == 0
        assert data["blocks_rejected_polluted"] == 0
        assert data["burst_departures"] == 0
        assert data["outage_time"] == 0.0


class TestFaultEdgeProperties:
    """Chaos-motivated edge cases: extreme-but-valid plan corners."""

    def test_full_pollution_fraction_nominates_everyone(self):
        _, _, injector = make_injector(
            FaultPlan(pollution_fraction=1.0), n_slots=12
        )
        assert injector.polluters == frozenset(range(12))
        assert all(injector.is_polluter(slot) for slot in range(12))

    def test_outage_window_starting_at_time_zero(self):
        """Servers may be down from the very first event."""
        plan = FaultPlan(outage_windows=((0.0, 2.0),))
        system = CollectionSystem(params(faults=plan), seed=2)
        system.metrics.begin_window(0.0)
        system.run_until(1.0)
        assert system.faults.servers_down
        assert system.metrics.pulls.total == 0  # nothing pulled while down
        system.run_until(6.0)
        assert not system.faults.servers_down
        assert system.metrics.pulls.total > 0
        report = system.metrics.report(6.0)
        assert report.outage_time == pytest.approx(2.0)
        system.consistency_check()

    def test_burst_can_exceed_live_population(self):
        """burst_fraction=1.0 kills every slot, live or already empty."""
        plan = FaultPlan(burst_rate=1.5, burst_fraction=1.0)
        system, report = run_faulty(plan, mean_lifetime=4.0)
        assert system.faults.burst_size() == system.params.n_peers
        assert system.faults.bursts_fired > 0
        assert report.burst_departures > 0
        system.consistency_check()

    def test_null_plan_neutral_under_monitor_hooks(self):
        """Monitors installed on a null-plan run change zero events."""
        from repro.chaos.monitors import MonitorSuite, runtime_monitors

        def trace(plan, monitored):
            tracer = Tracer()
            system = CollectionSystem(
                params(faults=plan), seed=7, tracer=tracer
            )
            if monitored:
                suite = MonitorSuite(
                    system, every=3, monitors=runtime_monitors(system)
                )
                with suite:
                    system.run(2.0, 4.0)
                    suite.check_now()
                assert suite.checks_run > 10
            else:
                system.run(2.0, 4.0)
            return [event.as_dict() for event in tracer.events]

        baseline = trace(None, monitored=False)
        assert trace(FaultPlan(), monitored=True) == baseline
        assert len(baseline) > 100
