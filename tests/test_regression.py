"""Tests for the experiment-result regression comparator."""

import math

import pytest

from repro.experiments.base import SeriesResult
from repro.experiments.regression import (
    ComparisonReport,
    compare_archives,
    compare_results,
)


def result(name="fig3", xs=(1.0, 2.0), **series):
    out = SeriesResult(name=name, title="t", x_name="x", x_values=list(xs))
    if not series:
        series = {"y": [1.0, 2.0]}
    for label, values in series.items():
        out.add_series(label, list(values))
    return out


class TestCompareResults:
    def test_identical_results_match(self):
        report = compare_results(result(), result())
        assert report.matches
        assert report.points_compared == 2
        assert "match" in report.summary()

    def test_within_tolerance_matches(self):
        baseline = result(y=[1.0, 2.0])
        current = result(y=[1.04, 2.08])
        assert compare_results(baseline, current, rel_tolerance=0.05).matches

    def test_beyond_tolerance_diverges(self):
        baseline = result(y=[1.0, 2.0])
        current = result(y=[1.2, 2.0])
        report = compare_results(baseline, current, rel_tolerance=0.05)
        assert not report.matches
        assert len(report.diverging_points) == 1
        diff = report.diverging_points[0]
        assert diff.series == "y" and diff.x == 1.0
        assert "MISMATCH" in report.summary()

    def test_absolute_floor_absorbs_tiny_values(self):
        baseline = result(y=[1e-6, 2.0])
        current = result(y=[5e-4, 2.0])
        assert compare_results(baseline, current, abs_floor=1e-3).matches

    def test_per_series_tolerance(self):
        baseline = result(a=[1.0, 1.0], b=[1.0, 1.0])
        current = result(a=[1.3, 1.0], b=[1.3, 1.0])
        report = compare_results(
            baseline,
            current,
            rel_tolerance=0.05,
            series_tolerances={"a": 0.5},
        )
        labels = {d.series for d in report.diverging_points}
        assert labels == {"b"}

    def test_none_matches_none_only(self):
        baseline = result(y=[None, 2.0])
        ok = result(y=[None, 2.0])
        bad = result(y=[1.0, 2.0])
        assert compare_results(baseline, ok).matches
        report = compare_results(baseline, bad)
        assert not report.matches
        assert report.diverging_points[0].baseline is None

    def test_nan_treated_as_missing(self):
        baseline = result(y=[math.nan, 2.0])
        current = result(y=[None, 2.0])
        assert compare_results(baseline, current).matches

    def test_structural_name_change(self):
        report = compare_results(result(name="fig3"), result(name="fig4"))
        assert not report.matches
        assert any("name" in e for e in report.structural_errors)

    def test_structural_axis_change(self):
        report = compare_results(result(xs=(1.0, 2.0)), result(xs=(1.0, 3.0)))
        assert any("x-axis" in e for e in report.structural_errors)

    def test_structural_series_change(self):
        baseline = result(a=[1.0, 2.0])
        current = result(b=[1.0, 2.0])
        report = compare_results(baseline, current)
        assert any("removed" in e for e in report.structural_errors)
        assert any("added" in e for e in report.structural_errors)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_results(result(), result(), rel_tolerance=-0.1)

    def test_json_roundtrip_is_regression_stable(self):
        original = result(y=[0.123456, None])
        restored = SeriesResult.from_json(original.to_json())
        assert compare_results(original, restored, rel_tolerance=0.0).matches


class TestCompareArchives:
    def test_full_archive(self):
        baselines = {"fig3": result(name="fig3"), "fig4": result(name="fig4")}
        currents = {"fig3": result(name="fig3"), "fig5": result(name="fig5")}
        reports = compare_archives(baselines, currents)
        assert set(reports) == {"fig3", "fig4", "fig5"}
        assert reports["fig3"].matches
        assert not reports["fig4"].matches  # missing from current
        assert not reports["fig5"].matches  # missing from baseline

    def test_report_dataclass(self):
        report = ComparisonReport(name="x")
        assert report.matches
        report.structural_errors.append("boom")
        assert not report.matches
