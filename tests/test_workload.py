"""Tests for workload rate profiles."""

import math

import pytest

from repro.stats.workload import (
    ConstantWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    PiecewiseWorkload,
    ShutoffWorkload,
    TraceWorkload,
    Workload,
)


class TestConstant:
    def test_rate_everywhere(self):
        w = ConstantWorkload(4.0)
        assert w.rate(0.0) == 4.0
        assert w.rate(1e6) == 4.0
        assert w.max_rate == 4.0

    def test_mean_rate(self):
        assert ConstantWorkload(4.0).mean_rate(0, 10) == 4.0

    def test_mean_rate_bad_interval(self):
        with pytest.raises(ValueError):
            ConstantWorkload(4.0).mean_rate(5, 5)

    def test_zero_rate_allowed(self):
        assert ConstantWorkload(0.0).rate(1.0) == 0.0

    def test_peak_to_average(self):
        assert ConstantWorkload(4.0).peak_to_average(0, 10) == 1.0


class TestFlashCrowd:
    def make(self):
        return FlashCrowdWorkload(
            base_rate=2.0, burst_start=10.0, burst_end=15.0, multiplier=5.0
        )

    def test_profile(self):
        w = self.make()
        assert w.rate(5.0) == 2.0
        assert w.rate(10.0) == 10.0
        assert w.rate(14.999) == 10.0
        assert w.rate(15.0) == 2.0
        assert w.max_rate == 10.0

    def test_mean_rate_exact(self):
        w = self.make()
        # over [0, 20): 15 units at 2 plus 5 units at 10
        assert w.mean_rate(0, 20) == pytest.approx((15 * 2 + 5 * 10) / 20)

    def test_mean_rate_outside_burst(self):
        w = self.make()
        assert w.mean_rate(0, 10) == pytest.approx(2.0)

    def test_peak_to_average(self):
        w = self.make()
        assert w.peak_to_average(0, 20) == pytest.approx(10.0 / 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdWorkload(2.0, 5.0, 5.0, 2.0)  # empty window
        with pytest.raises(ValueError):
            FlashCrowdWorkload(2.0, 5.0, 6.0, 0.5)  # multiplier < 1


class TestDiurnal:
    def test_oscillation(self):
        w = DiurnalWorkload(base_rate=4.0, amplitude=0.5, period=24.0)
        assert w.rate(6.0) == pytest.approx(6.0)  # peak at quarter period
        assert w.rate(18.0) == pytest.approx(2.0)  # trough
        assert w.max_rate == 6.0

    def test_mean_over_period(self):
        w = DiurnalWorkload(base_rate=4.0, amplitude=0.5, period=24.0)
        assert w.mean_rate(0, 24) == pytest.approx(4.0, abs=0.01)

    def test_amplitude_validated(self):
        with pytest.raises(ValueError):
            DiurnalWorkload(4.0, 1.5, 24.0)


class TestPiecewise:
    def test_steps(self):
        w = PiecewiseWorkload([(0.0, 1.0), (10.0, 3.0), (20.0, 0.0)])
        assert w.rate(5.0) == 1.0
        assert w.rate(10.0) == 3.0
        assert w.rate(25.0) == 0.0
        assert w.max_rate == 3.0

    def test_before_first_step(self):
        w = PiecewiseWorkload([(5.0, 2.0)])
        assert w.rate(0.0) == 2.0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseWorkload([(10.0, 1.0), (0.0, 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseWorkload([])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseWorkload([(0.0, -1.0)])


class TestShutoff:
    def test_cutoff(self):
        w = ShutoffWorkload(3.0, cutoff=10.0)
        assert w.rate(9.999) == 3.0
        assert w.rate(10.0) == 0.0
        assert w.max_rate == 3.0

    def test_mean_rate_spans_cutoff(self):
        w = ShutoffWorkload(3.0, cutoff=10.0)
        assert w.mean_rate(0, 20) == pytest.approx(1.5, abs=0.01)

    def test_peak_to_average_infinite_after_cutoff(self):
        w = ShutoffWorkload(3.0, cutoff=0.0)
        assert math.isinf(w.peak_to_average(1, 2))


class TestDiurnalClosedForm:
    def test_matches_numeric_quadrature(self):
        w = DiurnalWorkload(base_rate=4.0, amplitude=0.7, period=24.0)
        for t0, t1 in [(0.0, 24.0), (3.0, 11.5), (0.0, 5.0), (17.0, 40.0)]:
            numeric = Workload.mean_rate(w, t0, t1, resolution=8192)
            assert w.mean_rate(t0, t1) == pytest.approx(numeric, abs=1e-5)

    def test_full_period_mean_is_exactly_base(self):
        w = DiurnalWorkload(base_rate=4.0, amplitude=0.5, period=24.0)
        assert w.mean_rate(0.0, 24.0) == pytest.approx(4.0, abs=1e-12)
        assert w.mean_rate(6.0, 30.0) == pytest.approx(4.0, abs=1e-12)

    def test_bad_interval_rejected(self):
        w = DiurnalWorkload(base_rate=4.0, amplitude=0.5, period=24.0)
        with pytest.raises(ValueError):
            w.mean_rate(5.0, 5.0)


class TestTrace:
    def make(self, **overrides):
        kwargs = dict(
            base_rate=4.0,
            amplitude=0.6,
            period=24.0,
            session_rate=0.5,
            mean_session=4.0,
            boost_per_session=0.5,
            peak_boost=2.0,
            horizon=48.0,
            seed=7,
        )
        kwargs.update(overrides)
        return TraceWorkload(**kwargs)

    def test_deterministic_for_same_seed(self):
        a, b = self.make(), self.make()
        times = [i * 0.37 for i in range(130)]
        assert [a.rate(t) for t in times] == [b.rate(t) for t in times]

    def test_different_seeds_differ(self):
        a, b = self.make(), self.make(seed=8)
        times = [i * 0.37 for i in range(130)]
        assert [a.rate(t) for t in times] != [b.rate(t) for t in times]

    def test_rate_respects_thinning_envelope(self):
        w = self.make()
        assert w.max_rate == pytest.approx(4.0 * 1.6 * 3.0)
        for i in range(481):
            t = i * 0.1
            assert 0.0 < w.rate(t) <= w.max_rate

    def test_sessions_boost_the_diurnal_base(self):
        w = self.make()
        diurnal = DiurnalWorkload(4.0, 0.6, 24.0)
        boosted = [
            t * 0.25
            for t in range(192)
            if w.active_sessions(t * 0.25) > 0
        ]
        assert boosted  # the realization has active sessions somewhere
        for t in boosted:
            assert w.rate(t) > diurnal.rate(t)

    def test_no_sessions_reduces_to_diurnal(self):
        w = self.make(session_rate=0.0)
        diurnal = DiurnalWorkload(4.0, 0.6, 24.0)
        for i in range(100):
            t = i * 0.4
            assert w.rate(t) == pytest.approx(diurnal.rate(t))

    def test_validation(self):
        with pytest.raises(ValueError, match="session_shape"):
            self.make(session_shape=1.0)
        with pytest.raises(ValueError, match="horizon"):
            self.make(horizon=0.0)
        with pytest.raises(ValueError, match="mean_session"):
            self.make(mean_session=0.0)
