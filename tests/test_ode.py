"""Tests for the ODE systems of Sec. 3 and their steady-state solver."""

import numpy as np
import pytest

from repro.analysis.ode import CollectionODE, ODEConfig, SegmentDegreeODE


def model(s=1, lam=8.0, mu=6.0, gamma=1.0, c=2.0, **config):
    return CollectionODE(
        arrival_rate=lam,
        gossip_rate=mu,
        deletion_rate=gamma,
        segment_size=s,
        normalized_capacity=c,
        config=ODEConfig(**config) if config else None,
    )


class TestConfiguration:
    def test_auto_truncations_scale_with_parameters(self):
        small = model(s=1, lam=2.0, mu=2.0)
        large = model(s=1, lam=40.0, mu=20.0)
        assert large.B > small.B
        assert large.i_max > small.i_max

    def test_segment_size_drives_minimums(self):
        m = model(s=30)
        assert m.B >= 90
        assert m.i_max >= 90

    def test_explicit_truncations(self):
        m = model(s=2, z_max=40, i_max=50)
        assert m.B == 40 and m.i_max == 50

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ODEConfig(t_end=-1.0)
        with pytest.raises(ValueError):
            ODEConfig(z_max=0)

    def test_from_parameters(self):
        from repro.core.params import Parameters

        params = Parameters(
            n_peers=10,
            arrival_rate=8.0,
            gossip_rate=6.0,
            deletion_rate=1.0,
            normalized_capacity=2.0,
            segment_size=4,
        )
        m = CollectionODE.from_parameters(params)
        assert m.s == 4 and m.lam == 8.0


class TestConservationLaws:
    def test_z_mass_conserved_by_rhs(self):
        """sum_i dz_i/dt = 0: peers are neither created nor destroyed."""
        m = model(s=4)
        rng = np.random.default_rng(0)
        y = m.initial_state()
        # a random-ish valid state: normalized z plus arbitrary m mass
        z = rng.random(m.B + 1)
        z /= z.sum()
        y[: m.B + 1] = z
        y[m.B + 1 :] = rng.random(y.size - m.B - 1) * 0.1
        dz = m.rhs(0.0, y)[: m.B + 1]
        assert abs(dz.sum()) < 1e-10

    def test_m_mass_balance(self):
        """sum dm/dt = injection - extinction exactly."""
        m = model(s=2)
        rng = np.random.default_rng(1)
        y = m.initial_state()
        z = rng.random(m.B + 1)
        z /= z.sum()
        y[: m.B + 1] = z
        m_rows = rng.random((m.i_max, m.s + 1)) * 0.05
        y[m.B + 1 :] = m_rows.reshape(-1)
        dm = m.rhs(0.0, y)[m.B + 1 :].reshape(m.i_max, m.s + 1)
        injection = m.lam / m.s * z[: m.B - m.s + 1].sum()
        extinction = m_rows[0, :].sum() * m.gamma  # degree-1 rows dying
        assert dm.sum() == pytest.approx(injection - extinction, rel=1e-9)

    def test_empty_network_is_rhs_zero_except_injection(self):
        m = model(s=3)
        y = m.initial_state()
        dy = m.rhs(0.0, y)
        dz = dy[: m.B + 1]
        # only injection moves z: z0 decreases, z_s increases
        assert dz[0] == pytest.approx(-m.lam / m.s)
        assert dz[m.s] == pytest.approx(m.lam / m.s)


class TestSteadyState:
    def test_z_sums_to_one(self):
        steady = model(s=1).steady_state()
        assert steady.z.sum() == pytest.approx(1.0, abs=1e-6)
        assert (steady.z >= -1e-9).all()

    def test_occupancy_matches_theorem1(self):
        # rho = (1 - z0) mu/gamma + lambda/gamma with z0 ~ e^-rho ~ 0
        steady = model(s=1, lam=8.0, mu=6.0, gamma=1.0).steady_state()
        assert steady.e == pytest.approx(14.0, rel=0.01)

    def test_residual_is_small(self):
        steady = model(s=2).steady_state()
        assert steady.residual < 1e-6

    def test_w_is_row_sum_of_m(self):
        steady = model(s=3).steady_state()
        assert np.allclose(steady.w, steady.m.sum(axis=1))

    def test_m_nonnegative(self):
        steady = model(s=4).steady_state()
        assert (steady.m >= 0).all()

    def test_tail_mass_negligible(self):
        steady = model(s=2).steady_state()
        assert steady.tail_mass < 1e-6 * max(steady.w.max(), 1.0)

    def test_edge_density_consistent_between_sides(self):
        """sum i*w_i (segment side) equals sum i*z_i (peer side)."""
        steady = model(s=2).steady_state()
        degrees = np.arange(steady.w.shape[0], dtype=float)
        from_segments = float(degrees @ steady.w)
        assert from_segments == pytest.approx(steady.e, rel=0.01)

    def test_gossip_free_network(self):
        """mu = 0: blocks never replicate; segment degree <= s."""
        steady = model(s=2, mu=0.0).steady_state()
        assert steady.e == pytest.approx(8.0, rel=0.02)  # lambda/gamma
        assert steady.w[3:].sum() < 1e-8

    def test_occupancy_independent_of_s(self):
        """Theorem 1: rho does not depend on the segment size."""
        occupancies = [
            model(s=s).steady_state().e for s in (1, 2, 4, 8)
        ]
        for occupancy in occupancies[1:]:
            assert occupancy == pytest.approx(occupancies[0], rel=0.05)


class TestTransient:
    def test_transient_approaches_steady_state(self):
        m = model(s=2, i_max=40)
        steady = m.steady_state()
        y, _ = m.integrate(60.0, method="RK45")
        z_transient = y[: m.B + 1]
        assert np.allclose(z_transient, steady.z, atol=5e-3)

    def test_integration_failure_surfaces(self):
        m = model(s=1)
        with pytest.raises((RuntimeError, ValueError)):
            m.integrate(float("nan"))


class TestSegmentDegreeODE:
    def test_matches_coupled_system_row_sums(self):
        """Independent integration of Eq. (8) must agree with the m row
        sums of the coupled system — the w = sum_j m^j identity."""
        coupled = model(s=2, lam=6.0, mu=4.0, c=1.5)
        steady = coupled.steady_state()
        z0 = steady.z0
        standalone = SegmentDegreeODE(
            arrival_rate=6.0,
            gossip_rate=4.0,
            deletion_rate=1.0,
            segment_size=2,
            z0=z0,
            e=steady.e,
            i_max=coupled.i_max,
            injection_fraction=float(
                steady.z[: coupled.B - coupled.s + 1].sum()
            ),
        )
        w_standalone = standalone.steady_state(t_end=300.0)
        assert np.allclose(w_standalone, steady.w, atol=2e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentDegreeODE(1.0, 1.0, 1.0, 1, z0=2.0, e=1.0, i_max=10)
        with pytest.raises(ValueError):
            SegmentDegreeODE(1.0, 1.0, 1.0, 1, z0=0.5, e=-1.0, i_max=10)
        with pytest.raises(ValueError):
            SegmentDegreeODE(
                1.0, 1.0, 1.0, 1, z0=0.5, e=1.0, i_max=10, injection_fraction=2.0
            )
