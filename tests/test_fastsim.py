"""Tests for the vectorized fast engine (state, steppers, sharding).

Three contracts are exercised here:

- **Engine fidelity** — same-seed fast and event runs agree
  *distributionally* (the fast engine is a mean-field closure, not an
  event-for-event replay) on the steady-state observables within a
  documented tolerance, and the exact aggregate-clock path (tau=0)
  agrees with the tau-leap path.
- **Invariant safety** — array-level conservation monitors stay clean
  under the full fault/adversary channel set.
- **Shard determinism** — ``run_shard`` payloads are pure (JSON
  round-trippable) and ``merge_shard_payloads`` is order-blind, so a
  sharded run is byte-identical for any worker count.
"""

import json

import numpy as np

import pytest

from repro.core.params import ENGINE_FAST, Parameters
from repro.core.system import CollectionSystem
from repro.experiments import (
    SimBudget,
    budget_as_dict,
    budget_from_dict,
    override_budget,
    plan_scale,
)
from repro.experiments.base import simulate_cell
from repro.fastsim import (
    FastCollectionSystem,
    merge_shard_payloads,
    run_shard,
    shard_parameters,
)
from repro.fastsim.shard import shard_seed
from repro.fastsim.system import DelayAccumulator
from repro.faults import FaultPlan
from repro.adversary import AdversaryPlan


def params(**overrides):
    defaults = dict(
        n_peers=250,
        arrival_rate=6.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=3.0,
        segment_size=4,
        n_servers=2,
    )
    defaults.update(overrides)
    return Parameters(**defaults)


def rel_close(a, b, tolerance):
    scale = max(abs(a), abs(b), 1e-12)
    return abs(a - b) / scale <= tolerance


class TestBudgetPlumbing:
    def test_engine_field_validated(self):
        with pytest.raises(ValueError, match="engine"):
            SimBudget(
                n_peers=10, warmup=1.0, duration=1.0, seeds=(1,),
                engine="warp",
            )

    def test_tau_field_validated(self):
        with pytest.raises(ValueError, match="tau"):
            SimBudget(
                n_peers=10, warmup=1.0, duration=1.0, seeds=(1,), tau=-0.5,
            )
        with pytest.raises(ValueError, match="tau"):
            SimBudget(
                n_peers=10, warmup=1.0, duration=1.0, seeds=(1,),
                tau=float("inf"),
            )

    def test_budget_dict_roundtrip_carries_engine(self):
        budget = SimBudget(
            n_peers=10, warmup=1.0, duration=2.0, seeds=(1, 2),
            engine=ENGINE_FAST, tau=0.25,
        )
        restored = budget_from_dict(budget_as_dict(budget))
        assert restored == budget

    def test_budget_from_legacy_dict_defaults_to_event(self):
        # manifests journaled before the fast engine carry no engine/tau
        legacy = budget_as_dict(
            SimBudget(n_peers=10, warmup=1.0, duration=2.0, seeds=(1,))
        )
        legacy.pop("engine")
        legacy.pop("tau")
        restored = budget_from_dict(legacy)
        assert restored.engine == "event"
        assert restored.tau == 0.01

    def test_override_budget_engine_tau(self):
        base = SimBudget(n_peers=10, warmup=1.0, duration=2.0, seeds=(1,))
        bumped = override_budget(base, engine=ENGINE_FAST, tau=0.1)
        assert bumped.engine == ENGINE_FAST
        assert bumped.tau == 0.1
        assert override_budget(base).engine == base.engine

    def test_simulate_cell_rejects_workload_on_fast_engine(self):
        fast = params(n_peers=40, engine=ENGINE_FAST, tau=0.05)
        with pytest.raises(ValueError, match="workload"):
            simulate_cell(
                fast, 1.0, 2.0, ["efficiency"], seed=1, workload=object()
            )

    def test_simulate_cell_dispatches_to_fast_engine(self):
        fast = params(n_peers=60, engine=ENGINE_FAST, tau=0.05)
        cell = simulate_cell(
            fast, 2.0, 6.0, ["efficiency", "normalized_throughput"], seed=1
        )
        assert 0.0 < cell["efficiency"] <= 1.0
        assert cell["normalized_throughput"] > 0.0


class TestFastSystemValidation:
    def test_rejects_rlnc_mode(self):
        with pytest.raises(ValueError, match="mode"):
            FastCollectionSystem(params(mode="rlnc"))

    def test_rejects_uniform_selection(self):
        with pytest.raises(ValueError, match="segment_selection"):
            FastCollectionSystem(params(segment_selection="uniform"))

    def test_rejects_nonzero_gossip_latency(self):
        with pytest.raises(ValueError, match="gossip_latency"):
            FastCollectionSystem(params(gossip_latency=0.5))

    def test_rejects_bad_stats_stride(self):
        with pytest.raises(ValueError, match="stats_stride"):
            FastCollectionSystem(params(), stats_stride=0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError, match="warmup"):
            FastCollectionSystem(params(n_peers=20)).run(-1.0, 2.0)

    def test_parameters_reject_fast_engine_with_rlnc(self):
        with pytest.raises(ValueError, match="engine"):
            params(mode="rlnc", engine=ENGINE_FAST)


class TestEngineFidelity:
    """Distributional fast-vs-event agreement (the mean-field contract)."""

    #: relative tolerance on steady-state observables at N=250; the fast
    #: engine is a mean-field closure, so residual disagreement is
    #: finite-size noise plus the tau discretization (docs/PERFORMANCE.md).
    TOLERANCE = 0.20

    def run_pair(self, seed=3, **overrides):
        p_fast = params(engine=ENGINE_FAST, tau=0.05, **overrides)
        p_event = params(**overrides)
        fast = FastCollectionSystem(p_fast, seed=seed).run(8.0, 16.0)
        event = CollectionSystem(p_event, seed=seed).run(8.0, 16.0)
        return fast, event

    def test_honest_steady_state_agrees(self):
        fast, event = self.run_pair()
        assert rel_close(fast.efficiency, event.efficiency, self.TOLERANCE)
        assert rel_close(
            fast.normalized_throughput,
            event.normalized_throughput,
            self.TOLERANCE,
        )
        assert rel_close(
            fast.mean_block_delay, event.mean_block_delay, self.TOLERANCE
        )

    def test_churn_occupancy_agrees(self):
        fast, event = self.run_pair(mean_lifetime=6.0)
        assert fast.departures > 0
        assert rel_close(
            fast.mean_buffer_occupancy,
            event.mean_buffer_occupancy,
            self.TOLERANCE,
        )

    def test_tau_leap_agrees_with_exact_clocks(self):
        p_tau = params(n_peers=150, engine=ENGINE_FAST, tau=0.05)
        p_exact = params(n_peers=150, engine=ENGINE_FAST, tau=0.0)
        leaped = FastCollectionSystem(p_tau, seed=5).run(6.0, 12.0)
        exact = FastCollectionSystem(p_exact, seed=5).run(6.0, 12.0)
        assert exact.engine_events_fired > 0
        assert rel_close(leaped.efficiency, exact.efficiency, 0.15)
        assert rel_close(
            leaped.mean_block_delay, exact.mean_block_delay, 0.15
        )

    def test_monitors_clean_under_all_channels(self):
        # every fault/adversary kernel firing on one session; the
        # array-level conservation monitors must stay silent.
        p = params(
            n_peers=200,
            engine=ENGINE_FAST,
            tau=0.05,
            mean_lifetime=8.0,
            faults=FaultPlan(
                gossip_loss_rate=0.1,
                pull_loss_rate=0.1,
                pollution_fraction=0.1,
                burst_rate=0.3,
                burst_fraction=0.05,
                outage_rate=0.2,
                outage_duration=0.5,
            ),
            adversary=AdversaryPlan(
                liar_fraction=0.05,
                freerider_fraction=0.05,
                polluter_fraction=0.05,
                sybil_rate=0.3,
                sybil_fraction=0.05,
            ),
        )
        system = FastCollectionSystem(p, seed=11)
        report = system.run(4.0, 10.0)
        system.consistency_check()
        assert report.departures > 0
        assert report.transfers_dropped > 0
        assert report.pulls_captured > 0
        assert report.sybil_conversions > 0
        assert report.outage_time > 0


class TestDelayAccumulator:
    def test_mean_and_percentiles(self):
        acc = DelayAccumulator()
        acc.add(np.array([1.0, 2.0, 3.0, 4.0]))
        assert acc.mean() == pytest.approx(2.5)
        p50 = acc.percentile(50.0)
        p95 = acc.percentile(95.0)
        assert p50 is not None and p95 is not None
        assert p50 <= p95
        assert 1.0 <= p50 <= 4.0

    def test_empty_accumulator_reports_none(self):
        acc = DelayAccumulator()
        assert acc.mean() is None
        assert acc.percentile(50.0) is None

    def test_merge_counts_equals_single_pass(self):
        one = DelayAccumulator()
        one.add(np.array([0.5, 1.5, 2.5, 7.0]))
        split_a, split_b = DelayAccumulator(), DelayAccumulator()
        split_a.add(np.array([0.5, 1.5]))
        split_b.add(np.array([2.5, 7.0]))
        folded = DelayAccumulator()
        for part in (split_a, split_b):
            folded.merge_counts(part.counts, part.count, part.total)
        assert folded.count == one.count
        assert folded.total == pytest.approx(one.total)
        assert folded.percentile(50.0) == pytest.approx(one.percentile(50.0))


class TestSharding:
    def test_shard_parameters_partition(self):
        p = params(n_peers=103, n_servers=4)
        parts = shard_parameters(p, 4)
        assert [q.n_peers for q in parts] == [26, 26, 26, 25]
        assert sum(q.n_peers for q in parts) == 103
        assert all(q.n_servers == 4 for q in parts)

    def test_shard_parameters_validation(self):
        with pytest.raises(ValueError, match="shards"):
            shard_parameters(params(), 0)
        with pytest.raises(ValueError, match="n_peers"):
            shard_parameters(params(n_peers=3), 4)

    def test_shard_seeds_are_distinct(self):
        seeds = {shard_seed(7, i) for i in range(8)}
        assert len(seeds) == 8

    def test_payload_is_json_pure(self):
        p = params(n_peers=80, engine=ENGINE_FAST, tau=0.05)
        payload = run_shard(p, 3, 0, 2, 2.0, 6.0)
        restored = json.loads(json.dumps(payload))
        assert restored == payload
        assert payload["monitors_clean"] is True
        assert payload["n_peers"] == 40

    def test_merge_is_order_blind(self):
        p = params(n_peers=120, engine=ENGINE_FAST, tau=0.05)
        payloads = [run_shard(p, 3, i, 3, 2.0, 6.0) for i in range(3)]
        forward = merge_shard_payloads(payloads)
        backward = merge_shard_payloads(list(reversed(payloads)))
        assert forward == backward
        assert forward["n_peers"] == 120
        assert forward["shards"] == 3
        assert forward["monitors_clean"] is True
        assert forward["engine_events_fired"] == sum(
            q["events_applied"] for q in payloads
        )

    def test_single_shard_merge_matches_direct_run(self):
        p = params(n_peers=100, engine=ENGINE_FAST, tau=0.05)
        merged = merge_shard_payloads([run_shard(p, 9, 0, 1, 2.0, 6.0)])
        direct = FastCollectionSystem(
            shard_parameters(p, 1)[0], shard_seed(9, 0)
        ).run(2.0, 6.0)
        assert merged["efficiency"] == pytest.approx(direct.efficiency)
        assert merged["normalized_throughput"] == pytest.approx(
            direct.normalized_throughput
        )
        assert merged["useful_pulls"] == direct.useful_pulls

    def test_merge_rejects_window_mismatch(self):
        p = params(n_peers=80, engine=ENGINE_FAST, tau=0.05)
        a = run_shard(p, 3, 0, 2, 2.0, 6.0)
        b = run_shard(p, 3, 1, 2, 2.0, 4.0)
        with pytest.raises(ValueError, match="window"):
            merge_shard_payloads([a, b])

    def test_merge_rejects_schema_mismatch(self):
        p = params(n_peers=80, engine=ENGINE_FAST, tau=0.05)
        a = run_shard(p, 3, 0, 1, 2.0, 4.0)
        stale = dict(a, schema=0)
        with pytest.raises(ValueError, match="schema"):
            merge_shard_payloads([stale])

    def test_merge_requires_payloads(self):
        with pytest.raises(ValueError, match="payload"):
            merge_shard_payloads([])


class TestScalePlan:
    BUDGET = SimBudget(
        n_peers=120, warmup=2.0, duration=5.0, seeds=(1,),
        engine=ENGINE_FAST, tau=0.05,
    )

    def test_grid_shape(self):
        plan = plan_scale(
            n_values=(64, 128), segment_sizes=(4,), shards=2,
            budget=self.BUDGET,
        )
        assert len(plan.tasks) == 2 * 1 * 1 * 2
        ids = [task.task_id for task in plan.tasks]
        assert len(set(ids)) == len(ids)
        assert "N=64:s=4:seed=1:shard=00of02" in ids

    def test_rejects_oversharded_population(self):
        with pytest.raises(ValueError, match="shards"):
            plan_scale(n_values=(3,), shards=4, budget=self.BUDGET)

    def test_serial_run_produces_flat_series(self):
        result = plan_scale(
            n_values=(80, 160), segment_sizes=(4,), shards=2,
            budget=self.BUDGET,
        ).run_serial()
        assert result.x_values == [80.0, 160.0]
        assert "efficiency s=4" in result.series
        assert "throughput s=4" in result.series
        assert any("monitors clean" in note for note in result.notes)
