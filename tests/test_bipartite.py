"""Tests for the bipartite graph process (the Sec. 3 operations, finite N)."""

import pytest

from repro.analysis.bipartite import BipartiteProcess
from repro.analysis.theorems import theorem1_storage


def process(**overrides):
    defaults = dict(
        n_peers=120,
        arrival_rate=6.0,
        gossip_rate=6.0,
        deletion_rate=1.0,
        segment_size=3,
        normalized_capacity=2.0,
        seed=0,
    )
    defaults.update(overrides)
    return BipartiteProcess(**defaults)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            process(n_peers=0)
        with pytest.raises(ValueError):
            process(deletion_rate=0.0)
        with pytest.raises(ValueError):
            process(buffer_capacity=2, segment_size=5)

    def test_auto_buffer_capacity(self):
        p = process()
        assert p.B > (6.0 + 6.0) / 1.0  # above natural occupancy


class TestDynamics:
    def test_consistency_through_time(self):
        p = process()
        for _ in range(4):
            p.run_until(p.now + 2.0)
            p.consistency_check()

    def test_run_backwards_rejected(self):
        p = process()
        p.run_until(1.0)
        with pytest.raises(ValueError):
            p.run_until(0.5)

    def test_determinism(self):
        a = process(seed=3).run(3.0, 5.0)
        b = process(seed=3).run(3.0, 5.0)
        assert a == b

    def test_degree_distribution_sums_to_one(self):
        p = process()
        p.run_until(6.0)
        z = p.peer_degree_distribution()
        assert sum(z) == pytest.approx(1.0)

    def test_edges_match_histograms(self):
        p = process()
        p.run_until(6.0)
        seg_hist = p.segment_degree_histogram()
        from_segments = sum(d * c for d, c in seg_hist.items())
        assert from_segments == p.edge_count
        matrix = p.collection_matrix()
        edges_from_matrix = sum(
            d * sum(row.values()) for d, row in matrix.items()
        )
        assert edges_from_matrix == p.edge_count
        segments_from_matrix = sum(
            sum(row.values()) for row in matrix.values()
        )
        assert segments_from_matrix == sum(seg_hist.values())


class TestAgainstTheory:
    def test_occupancy_matches_theorem1(self):
        p = process(n_peers=200)
        report = p.run(8.0, 12.0)
        expected = theorem1_storage(6.0, 6.0, 1.0).occupancy
        assert report.mean_occupancy == pytest.approx(expected, rel=0.05)

    def test_throughput_matches_ode(self):
        from repro.analysis.ode import CollectionODE
        from repro.analysis.theorems import theorem2_throughput

        p = process(n_peers=250, segment_size=4, seed=7)
        report = p.run(10.0, 12.0)
        steady = CollectionODE(6.0, 6.0, 1.0, 4, 2.0).steady_state()
        predicted = theorem2_throughput(steady, 6.0, 2.0, 4)
        assert report.normalized_throughput == pytest.approx(
            predicted.normalized_throughput, rel=0.08
        )

    def test_throughput_increases_with_s(self):
        low = process(segment_size=1, seed=5).run(8.0, 10.0)
        high = process(segment_size=8, seed=5).run(8.0, 10.0)
        assert high.normalized_throughput > low.normalized_throughput

    def test_efficiency_bounds(self):
        report = process().run(5.0, 8.0)
        assert 0.0 < report.efficiency <= 1.0
        assert report.useful_pulls <= report.pulls


class TestMeasurement:
    def test_run_arguments_validated(self):
        with pytest.raises(ValueError):
            process().run(-1.0, 1.0)
        with pytest.raises(ValueError):
            process().run(1.0, 0.0)

    def test_window_excludes_warmup(self):
        p = process(seed=9)
        report = p.run(4.0, 6.0)
        assert report.window == pytest.approx(6.0)
        # pulls in the window should be about c*N*duration
        expected_pulls = 2.0 * 120 * 6.0
        assert report.pulls == pytest.approx(expected_pulls, rel=0.15)
