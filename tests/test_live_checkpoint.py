"""Checkpoint journal coverage: bit-for-bit restore, atomicity, SIGKILL.

Three layers, matching the recovery chain:

1. **Snapshot property** (hypothesis): a partially filled
   ``SegmentDecoder`` snapshots and restores bit-identically, and the
   restored decoder *behaves* identically — same innovative/redundant
   verdicts on the same future blocks, same decode output.
2. **File round-trip**: ``write_checkpoint``/``load_checkpoint`` preserve
   every field; torn files, foreign formats, and rank-inconsistent
   journals raise ``CheckpointError`` instead of resurrecting garbage.
3. **SIGKILL the server**: a supervised multi-process swarm loses its
   collector to a real SIGKILL mid-window and still completes the
   window after restart — restored rank and zero hash failures included.
"""

import asyncio
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.block import SegmentDescriptor
from repro.coding.rlnc import SegmentDecoder, encode_from_source
from repro.core.params import Parameters
from repro.faults.plan import FaultPlan
from repro.live.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    ServerCheckpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.live.supervisor import run_supervised_swarm


def _segment(size, segment_id=7):
    return SegmentDescriptor(
        segment_id=segment_id,
        source_peer=3,
        size=size,
        injected_at=1.25,
        generation=0,
    )


def _source_rows(rng, size, payload_bytes):
    return np.array(
        [
            [rng.randrange(256) for _ in range(payload_bytes)]
            for _ in range(size)
        ],
        dtype=np.uint8,
    )


class TestSnapshotProperty:
    @given(
        size=st.integers(min_value=1, max_value=6),
        payload_bytes=st.integers(min_value=1, max_value=24),
        fill=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_partial_decoder_restores_bit_identically(
        self, size, payload_bytes, fill, seed
    ):
        rng = random.Random(seed)
        segment = _segment(size)
        rows = _source_rows(rng, size, payload_bytes)
        original = SegmentDecoder(segment)
        for _ in range(min(fill, size - 1) if size > 1 else 0):
            original.offer(
                encode_from_source(segment, rows, rng, created_at=0.5), 1.0
            )

        snap = original.snapshot()
        restored = SegmentDecoder.from_snapshot(snap)

        # Bit-for-bit: re-snapshotting the restored decoder reproduces
        # the snapshot exactly (matrix bytes, pivots, bookkeeping).
        assert restored.snapshot() == snap
        assert restored.rank == original.rank
        assert restored.offered == original.offered
        assert restored.redundant == original.redundant

        # Behavioral identity: both decoders must give the same verdict
        # on the same future blocks and decode to the same payloads.
        future = [
            encode_from_source(segment, rows, rng, created_at=2.0)
            for _ in range(2 * size)
        ]
        for block in future:
            assert original.offer(block, 3.0) == restored.offer(block, 3.0)
        assert original.rank == restored.rank
        assert original.is_complete and restored.is_complete
        np.testing.assert_array_equal(original.decode(), restored.decode())
        np.testing.assert_array_equal(restored.decode(), rows)


def _checkpoint_fixture(rng, n_decoders=3):
    decoders = []
    total_rank = 0
    for index in range(n_decoders):
        segment = _segment(size=2 + index, segment_id=10 + index)
        rows = _source_rows(rng, segment.size, 16)
        decoder = SegmentDecoder(segment)
        for _ in range(segment.size - 1):
            decoder.offer(encode_from_source(segment, rows, rng), 4.0)
        total_rank += decoder.rank
        decoders.append(decoder.snapshot())
    return ServerCheckpoint(
        seed=11,
        restarts=2,
        time_scale=2.0,
        epoch=1234.5,
        marked_at=6.25,
        next_slot=40,
        written_at=9.75,
        completed=(1, 2, 5),
        digests={1: "aa" * 8, 2: "bb" * 8, 5: "cc" * 8, 10: "dd" * 8},
        counters={"blocks_received": 17, "segments_completed": 3},
        delay_samples=(0.5, 1.25, 2.0),
        servers_down={
            "value": 0.0,
            "last_time": 9.0,
            "integral": 1.5,
            "window_start": 6.25,
        },
        total_rank=total_rank,
        decoders=tuple(decoders),
    )


class TestJournalFile:
    def test_round_trip_preserves_every_field(self, tmp_path):
        state = _checkpoint_fixture(random.Random(3))
        path = tmp_path / "server.ckpt"
        write_checkpoint(path, state)
        assert load_checkpoint(path) == state

    def test_rewrite_replaces_atomically(self, tmp_path):
        rng = random.Random(4)
        path = tmp_path / "server.ckpt"
        write_checkpoint(path, _checkpoint_fixture(rng, n_decoders=1))
        newer = _checkpoint_fixture(rng, n_decoders=3)
        write_checkpoint(path, newer)
        assert load_checkpoint(path) == newer
        # the temp file was renamed, not left behind
        assert [entry.name for entry in tmp_path.iterdir()] == ["server.ckpt"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_truncated_tail_raises(self, tmp_path):
        state = _checkpoint_fixture(random.Random(5))
        path = tmp_path / "server.ckpt"
        write_checkpoint(path, state)
        blob = path.read_bytes()
        for cut in (len(blob) - 1, len(blob) // 2, 3):
            torn = tmp_path / "torn.ckpt"
            torn.write_bytes(blob[:cut])
            with pytest.raises(CheckpointError):
                load_checkpoint(torn)

    def test_foreign_format_tag_raises(self, tmp_path):
        state = _checkpoint_fixture(random.Random(6))
        path = tmp_path / "server.ckpt"
        write_checkpoint(path, state)
        blob = path.read_bytes().replace(
            CHECKPOINT_FORMAT.encode(), b"repro-live-ckpt-v0"
        )
        path.write_bytes(blob)
        with pytest.raises(CheckpointError, match="refusing to restore"):
            load_checkpoint(path)

    def test_rank_inconsistent_journal_raises(self, tmp_path):
        state = _checkpoint_fixture(random.Random(7))
        tampered = ServerCheckpoint(
            **{
                **{
                    field: getattr(state, field)
                    for field in state.__dataclass_fields__
                },
                "total_rank": state.total_rank + 1,
            }
        )
        path = tmp_path / "server.ckpt"
        write_checkpoint(path, tampered)
        with pytest.raises(CheckpointError, match="rank check failed"):
            load_checkpoint(path)

    def test_garbage_bytes_raise_not_crash(self, tmp_path):
        path = tmp_path / "server.ckpt"
        path.write_bytes(b"\xff" * 64)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestServerSigkill:
    def test_supervised_swarm_survives_server_sigkill(self):
        """SIGKILL the collector mid-window; the window still completes.

        The supervisor respawns the server, the server restores its
        decoder pool from the journal (the restore path raises on any
        rank mismatch, so completion implies zero rank lost), every peer
        reconnects, and the report covers the same measurement window.
        """
        params = Parameters(
            n_peers=8,
            arrival_rate=0.5,
            gossip_rate=2.0,
            deletion_rate=0.25,
            normalized_capacity=1.0,
            segment_size=2,
            n_servers=2,
            mode="rlnc",
            payload_bytes=32,
            faults=FaultPlan(
                process_faults=(("kill-server", 4.0, 0.0, 0.0),),
                process_restart_latency=1.0,
            ),
        )
        report = asyncio.run(run_supervised_swarm(
            params, seed=1, warmup=2.0, duration=6.0,
            time_scale=2.0, peer_procs=2,
        ))
        assert report["supervised"] is True
        assert report["server_restarts"] >= 1
        assert report["hash_failures"] == 0
        assert report["segments_completed"] > 0
        assert report["hash_verified"] == report["segments_completed"]
        executed = report["process_faults_executed"]
        assert any(event["kind"] == "kill-server" for event in executed)
        assert report["peers_reporting"] == params.n_peers
