"""Smoke tests: every example script runs end-to-end (shrunk parameters).

The examples are the library's front door; a refactor that breaks one
should fail CI, not a reader.  Each example is loaded as a module and its
``main()`` executed with module-level knobs patched down to test size.
"""

import importlib.util
import pathlib

import pytest

from repro.core.params import Parameters

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def shrink(params: Parameters, **extra) -> Parameters:
    changes = dict(n_peers=30, n_servers=2)
    changes.update(extra)
    return params.with_changes(**changes)


class TestExamplesRun:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.PARAMS = shrink(module.PARAMS)
        module.main()
        out = capsys.readouterr().out
        assert "normalized session throughput" in out
        assert "theory" in out

    def test_flash_crowd(self, capsys):
        module = load_example("flash_crowd")
        module.PARAMS = shrink(module.PARAMS)
        module.N_PEERS = 30
        module.PHASES = [("steady ", 4.0), ("burst  ", 2.0), ("drain  ", 4.0)]
        module.main()
        out = capsys.readouterr().out
        assert "push" in out and "indirect" in out
        assert "dropped" in out

    def test_churn_postmortem(self, capsys):
        module = load_example("churn_postmortem")
        module.PARAMS = shrink(module.PARAMS, n_peers=20)
        module.main()
        out = capsys.readouterr().out
        assert "departed" in out
        assert "OK" in out  # record integrity check

    def test_segment_size_tuning(self, capsys):
        module = load_example("segment_size_tuning")
        module.CANDIDATES = (1, 5, 20)
        module.main()
        out = capsys.readouterr().out
        assert "recommended segment size" in out
        assert "simulation spot check" in out

    def test_fault_drill(self, capsys):
        module = load_example("fault_drill")
        module.PARAMS = shrink(module.PARAMS)
        module.WARMUP = 2.0
        module.DURATION = 8.0
        module.main()
        out = capsys.readouterr().out
        assert "transfers dropped" in out
        assert "server downtime" in out
        assert "consistency check: OK" in out

    def test_live_swarm(self, capsys):
        module = load_example("live_swarm")
        module.PARAMS = shrink(module.PARAMS, n_peers=12)
        module.WARMUP = 2.0
        module.DURATION = 5.0
        module.TIME_SCALE = 4.0
        module.SIM_WINDOW = (6.0, 12.0)
        module.main()
        out = capsys.readouterr().out
        assert "live swarm:" in out
        assert "hash-verified" in out
        assert "cross-validation" in out

    def test_trace_segment_life(self, capsys):
        module = load_example("trace_segment_life")
        module.PARAMS = shrink(module.PARAMS)
        module.main()
        out = capsys.readouterr().out
        assert "traced" in out
        assert "life of segment" in out


class TestExamplesAreListed:
    def test_readme_mentions_every_example(self):
        readme = (EXAMPLES_DIR.parent / "README.md").read_text()
        for path in EXAMPLES_DIR.glob("*.py"):
            assert path.name in readme, f"{path.name} missing from README"
