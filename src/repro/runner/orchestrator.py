"""Sweep orchestration: plan -> pool -> journal -> byte-identical merge.

:func:`execute_run` is the one entry point: it builds the task grid from a
:class:`RunSpec`, figures out which cells still need to run (all of them
for a fresh run; the journal's complement for ``--resume``), executes them
on the :class:`WorkerPool`, journals every completion, and finally merges
*all* payloads — journaled and fresh alike — through the experiment's own
``merge`` in task-grid order.

The determinism argument, in one paragraph: each task reconstructs its
entire RNG state from ``(params, seed)`` or a named substream, so *where*
and *when* it runs cannot change its payload; payloads are JSON-normalized
identically whether they stayed in memory or round-tripped through the
journal; and the merge consumes them keyed by task id in the plan's
declared order, never completion order.  Serial execution *is* the same
plan with a trivial executor, so ``--workers 4``, ``--workers 1``, a
resumed run, and ``run_X()`` in-process all produce byte-identical
``SeriesResult`` JSON.  ``docs/RUNNER.md`` spells this out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, TextIO

from repro.experiments.base import SeriesResult
from repro.runner.journal import JournalError, RunJournal
from repro.runner.pool import WorkerPool
from repro.runner.spec import RunSpec
from repro.runner.telemetry import (
    KIND_RUN_COMPLETE,
    KIND_RUN_RESUME,
    KIND_RUN_START,
    KIND_RUN_STOPPED,
    RunnerTelemetry,
)

#: Default parent directory for run journals.
DEFAULT_RUNS_DIR = Path("runs")


@dataclass
class RunOutcome:
    """What :func:`execute_run` produced.

    ``result`` is ``None`` exactly when the run stopped early
    (``stop_after``) with cells still missing; ``completed_tasks`` counts
    journaled cells across *all* sessions of the run.
    """

    run_id: str
    run_dir: Path
    result: Optional[SeriesResult]
    completed_tasks: int
    total_tasks: int
    executed_this_session: int
    resumed_tasks: int

    @property
    def complete(self) -> bool:
        return self.result is not None


def make_run_id(experiment: str, runs_dir: Path) -> str:
    """Pick a fresh, human-sortable run id under *runs_dir*."""
    for counter in itertools.count(1):
        candidate = f"{experiment}-{counter:03d}"
        if not (runs_dir / candidate).exists():
            return candidate
    raise AssertionError("unreachable")  # pragma: no cover


def execute_run(
    spec: RunSpec,
    workers: int = 1,
    runs_dir: Path = DEFAULT_RUNS_DIR,
    run_id: Optional[str] = None,
    resume: Optional[str] = None,
    task_timeout: Optional[float] = None,
    retries: int = 2,
    stop_after: Optional[int] = None,
    progress: bool = False,
    stream: Optional[TextIO] = None,
) -> RunOutcome:
    """Execute (or resume) one sweep; see the module docstring.

    ``resume`` names an existing run id under *runs_dir* whose journal
    supplies already-completed cells; the manifest fingerprint must match
    *spec*.  ``stop_after`` ends the session after that many cells
    complete in it — the checkpoint half of the checkpoint/resume tests.
    """
    plan = spec.build_plan()
    task_ids = plan.task_ids()

    if resume is not None:
        run_dir = runs_dir / resume
        journal = RunJournal.load(run_dir)
        journal.check_resumable(spec, task_ids)
        completed = journal.completed_payloads()
        unknown = sorted(set(completed) - set(task_ids))
        if unknown:
            raise JournalError(
                f"journal {resume} holds {len(unknown)} task(s) not in "
                f"this plan (first: {unknown[0]!r})"
            )
    else:
        chosen = run_id or make_run_id(spec.experiment, runs_dir)
        run_dir = runs_dir / chosen
        journal = RunJournal.create(
            run_dir,
            spec,
            task_ids,
            execution={
                "workers": workers,
                "task_timeout": task_timeout,
                "retries": retries,
            },
        )
        completed = {}

    pending = [task_id for task_id in task_ids if task_id not in completed]
    index_of = {task_id: i for i, task_id in enumerate(task_ids)}

    telemetry = RunnerTelemetry(
        total_tasks=len(task_ids),
        already_done=len(completed),
        workers=workers,
        sink=journal.append_event,
        progress=progress,
        stream=stream,
    )
    telemetry.emit(
        KIND_RUN_RESUME if resume is not None else KIND_RUN_START,
        run_id=run_dir.name,
        experiment=spec.experiment,
        total_tasks=len(task_ids),
        already_done=len(completed),
        pending=len(pending),
        workers=workers,
    )

    payloads: Dict[str, Dict[str, Any]] = dict(completed)

    def on_task_done(
        task_id: str, payload: Dict[str, Any], attempts: int, elapsed: float
    ) -> None:
        journal.record_task(
            index_of[task_id], task_id, payload, attempts, elapsed
        )

    executed = 0
    if pending:
        pool = WorkerPool(
            spec,
            n_workers=workers,
            telemetry=telemetry,
            task_timeout=task_timeout,
            retries=retries,
            on_task_done=on_task_done,
        )
        try:
            pool_result = pool.run(pending, stop_after=stop_after)
        finally:
            telemetry.close_line()
        payloads.update(pool_result.payloads)
        executed = len(pool_result.payloads)

    if len(payloads) < len(task_ids):
        telemetry.emit(
            KIND_RUN_STOPPED,
            run_id=run_dir.name,
            completed=len(payloads),
            total=len(task_ids),
        )
        return RunOutcome(
            run_id=run_dir.name,
            run_dir=run_dir,
            result=None,
            completed_tasks=len(payloads),
            total_tasks=len(task_ids),
            executed_this_session=executed,
            resumed_tasks=len(completed),
        )

    result = plan.merge(payloads)
    journal.write_result(result.to_json())
    telemetry.emit(
        KIND_RUN_COMPLETE,
        run_id=run_dir.name,
        total=len(task_ids),
        executed=executed,
        resumed=len(completed),
    )
    return RunOutcome(
        run_id=run_dir.name,
        run_dir=run_dir,
        result=result,
        completed_tasks=len(payloads),
        total_tasks=len(task_ids),
        executed_this_session=executed,
        resumed_tasks=len(completed),
    )
