"""Crash-isolated worker pool for task-grid execution.

One OS process per worker, one dedicated duplex pipe per worker — the
parent always knows exactly which task a worker holds, which is what the
stock ``ProcessPoolExecutor`` cannot tell you and why it cannot kill a
hung task.  The protocol is deliberately tiny:

parent -> worker   ``task_id`` (str) to execute, or ``None`` to shut down
worker -> parent   ``("ok", task_id, payload, meta)`` or
                   ``("err", task_id, msg)``

``meta`` carries host-side telemetry about the execution (currently the
worker's ``ru_maxrss`` high-water mark).  It feeds the journal's
``task-done`` events and NEVER the payload — payloads stay pure functions
of the task cell so merges remain byte-identical across hosts.

Fault handling, all targeted at the single offending worker:

- **crash** (worker process dies mid-task — segfault, ``os._exit``,
  OOM-kill): the parent sees EOF on that worker's pipe, requeues the
  task, and respawns the worker;
- **timeout** (task exceeds ``task_timeout``): the parent terminates the
  worker, requeues the task, respawns;
- **error** (the task raised): the worker survives and reports the
  exception; the task is requeued.

Each task gets at most ``retries`` re-executions; exhausting them raises
:class:`TaskFailedError` with the failure history.  Workers rebuild the
task grid from the :class:`RunSpec` handshake, so nothing unpicklable
ever crosses a pipe and the pool works under both fork and spawn start
methods.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.runner.spec import RunSpec
from repro.runner.telemetry import (
    KIND_TASK_DISPATCH,
    KIND_TASK_DONE,
    KIND_TASK_RETRY,
    KIND_TASK_FAILED,
    KIND_WORKER_CRASH,
    KIND_WORKER_SPAWN,
    KIND_WORKER_TIMEOUT,
    RunnerTelemetry,
)

#: Seconds between liveness/timeout sweeps while waiting on worker pipes.
_POLL_INTERVAL = 0.1
#: Seconds to wait for a worker to exit after a polite shutdown request.
_JOIN_GRACE = 2.0


class TaskFailedError(Exception):
    """A task exhausted its retry budget; carries the failure history."""

    def __init__(self, task_id: str, history: List[str]) -> None:
        detail = "; ".join(history)
        super().__init__(
            f"task {task_id!r} failed after {len(history)} attempt(s): "
            f"{detail}"
        )
        self.task_id = task_id
        self.history = history


def _worker_meta() -> Dict[str, Any]:
    """Host-side execution telemetry attached to each ``ok`` message.

    ``ru_maxrss`` is the worker process's lifetime peak resident set (KiB
    on Linux) — a high-water mark, so for a worker running several tasks
    each report is the max over the tasks so far.  Platforms without
    ``resource`` (Windows) report no meta.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return {}
    return {
        "max_rss_kb": int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        ),
    }


def worker_main(
    spec_json: str, conn: "multiprocessing.connection.Connection[Any, Any]"
) -> None:
    """Worker entry point: rebuild the plan, then serve task requests."""
    spec = RunSpec.from_json(spec_json)
    plan = spec.build_plan()
    tasks = {task.task_id: task for task in plan.tasks}
    while True:
        request = conn.recv()
        if request is None:
            conn.close()
            return
        task_id = str(request)
        try:
            task = tasks[task_id]
            payload = task.run()
        except BaseException as exc:  # report, survive, await next task
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            conn.send(("err", task_id, f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("ok", task_id, payload, _worker_meta()))


@dataclass
class _Worker:
    """Parent-side handle of one pool worker."""

    index: int
    process: BaseProcess
    conn: "multiprocessing.connection.Connection[Any, Any]"
    current_task: Optional[str] = None
    started_at: float = 0.0
    attempt: int = 0


@dataclass
class PoolResult:
    """What one pool session produced."""

    payloads: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)
    stopped_early: bool = False


class WorkerPool:
    """Execute task ids on crash-isolated workers; see module docstring.

    ``on_task_done(task_id, payload, attempts, elapsed)`` fires in the
    parent as each task completes (journaling hook); ``stop_after`` ends
    the session cleanly once that many tasks have completed *in this
    session* — the deterministic stand-in for an operator's Ctrl-C that
    the checkpoint/resume tests drive.
    """

    def __init__(
        self,
        spec: RunSpec,
        n_workers: int,
        telemetry: RunnerTelemetry,
        task_timeout: Optional[float] = None,
        retries: int = 2,
        on_task_done: Optional[
            Callable[[str, Dict[str, Any], int, float], None]
        ] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._spec_json = spec.to_json()
        self.n_workers = n_workers
        self.task_timeout = task_timeout
        self.retries = retries
        self._telemetry = telemetry
        self._on_task_done = on_task_done
        self._context = multiprocessing.get_context()
        self._workers: List[_Worker] = []
        self._next_worker_index = 0

    # ---- worker lifecycle ------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        index = self._next_worker_index
        self._next_worker_index += 1
        process = self._context.Process(
            target=worker_main,
            args=(self._spec_json, child_conn),
            name=f"repro-runner-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(index=index, process=process, conn=parent_conn)
        self._telemetry.emit(KIND_WORKER_SPAWN, worker=index)
        return worker

    def _kill_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(_JOIN_GRACE)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(_JOIN_GRACE)

    def _shutdown(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + _JOIN_GRACE
        for worker in self._workers:
            worker.process.join(max(deadline - time.monotonic(), 0.0))
        for worker in self._workers:
            self._kill_worker(worker)
        self._workers = []

    # ---- failure bookkeeping --------------------------------------------

    def _register_failure(
        self,
        queue: Deque[str],
        attempts: Dict[str, int],
        history: Dict[str, List[str]],
        task_id: str,
        reason: str,
    ) -> None:
        history.setdefault(task_id, []).append(reason)
        if attempts[task_id] > self.retries:
            self._telemetry.emit(
                KIND_TASK_FAILED, task=task_id, reason=reason
            )
            raise TaskFailedError(task_id, history[task_id])
        self._telemetry.emit(KIND_TASK_RETRY, task=task_id, reason=reason)
        queue.appendleft(task_id)

    # ---- main loop -------------------------------------------------------

    def run(
        self,
        task_ids: List[str],
        stop_after: Optional[int] = None,
    ) -> PoolResult:
        """Execute *task_ids*; returns payloads keyed by task id."""
        queue: Deque[str] = deque(task_ids)
        attempts: Dict[str, int] = {task_id: 0 for task_id in task_ids}
        history: Dict[str, List[str]] = {}
        result = PoolResult()
        if not task_ids:
            return result

        self._workers = [
            self._spawn_worker()
            for _ in range(min(self.n_workers, len(task_ids)))
        ]
        try:
            while True:
                stopping = (
                    stop_after is not None
                    and len(result.payloads) >= stop_after
                )
                if stopping:
                    result.stopped_early = bool(queue) or any(
                        w.current_task is not None for w in self._workers
                    )
                    break
                if not queue and all(
                    w.current_task is None for w in self._workers
                ):
                    break

                # Dispatch to every idle worker while tasks remain.
                for worker in list(self._workers):
                    if worker.current_task is None and queue:
                        task_id = queue.popleft()
                        attempts[task_id] += 1
                        worker.current_task = task_id
                        worker.attempt = attempts[task_id]
                        worker.started_at = time.monotonic()
                        try:
                            worker.conn.send(task_id)
                        except (OSError, ValueError):
                            # Worker died before accepting work.
                            self._replace_crashed(
                                worker, queue, attempts, history,
                                "worker rejected dispatch",
                            )
                            continue
                        self._telemetry.emit(
                            KIND_TASK_DISPATCH,
                            task=task_id,
                            worker=worker.index,
                            attempt=worker.attempt,
                        )

                busy = [w for w in self._workers if w.current_task is not None]
                if not busy:
                    continue
                ready = multiprocessing.connection.wait(
                    [w.conn for w in busy], timeout=_POLL_INTERVAL
                )
                ready_set = set(ready)
                for worker in list(self._workers):
                    if worker.current_task is None:
                        continue
                    if worker.conn in ready_set:
                        self._collect(worker, queue, attempts, history, result)
                    elif self._timed_out(worker):
                        self._replace_timed_out(
                            worker, queue, attempts, history
                        )
                    elif not worker.process.is_alive():
                        # Died without final output reaching the pipe.
                        self._replace_crashed(
                            worker, queue, attempts, history,
                            "worker process died",
                        )
        finally:
            self._shutdown()
        result.attempts = attempts
        return result

    def _timed_out(self, worker: _Worker) -> bool:
        if self.task_timeout is None:
            return False
        return (time.monotonic() - worker.started_at) > self.task_timeout

    def _collect(
        self,
        worker: _Worker,
        queue: Deque[str],
        attempts: Dict[str, int],
        history: Dict[str, List[str]],
        result: PoolResult,
    ) -> None:
        task_id = worker.current_task
        assert task_id is not None
        try:
            message: Tuple[Any, ...] = worker.conn.recv()
        except (EOFError, OSError):
            # Pipe broke between wait() and recv(): a mid-task crash.
            self._replace_crashed(
                worker, queue, attempts, history,
                "worker pipe closed mid-task",
            )
            return
        worker.current_task = None
        status, reported_id, body = message[0], message[1], message[2]
        meta: Dict[str, Any] = dict(message[3]) if len(message) > 3 else {}
        elapsed = time.monotonic() - worker.started_at
        if status == "ok":
            result.payloads[reported_id] = dict(body)
            self._telemetry.emit(
                KIND_TASK_DONE,
                task=reported_id,
                worker=worker.index,
                attempt=attempts[reported_id],
                elapsed_seconds=elapsed,
                peak_rss_kb=meta.get("max_rss_kb"),
            )
            if self._on_task_done is not None:
                self._on_task_done(
                    reported_id, dict(body), attempts[reported_id], elapsed
                )
        else:
            self._register_failure(
                queue, attempts, history, reported_id, str(body)
            )

    def _replace_timed_out(
        self,
        worker: _Worker,
        queue: Deque[str],
        attempts: Dict[str, int],
        history: Dict[str, List[str]],
    ) -> None:
        """Kill a hung worker, requeue its task, spawn a replacement."""
        task_id = worker.current_task
        assert task_id is not None
        self._telemetry.emit(
            KIND_WORKER_TIMEOUT,
            worker=worker.index,
            task=task_id,
            timeout_seconds=self.task_timeout,
        )
        self._kill_worker(worker)
        self._workers.remove(worker)
        self._workers.append(self._spawn_worker())
        self._register_failure(
            queue, attempts, history, task_id,
            f"timed out after {self.task_timeout}s",
        )

    def _replace_crashed(
        self,
        worker: _Worker,
        queue: Deque[str],
        attempts: Dict[str, int],
        history: Dict[str, List[str]],
        reason: str,
    ) -> None:
        """Reap a dead worker, requeue its task, spawn a replacement."""
        task_id = worker.current_task
        assert task_id is not None
        exit_code = worker.process.exitcode
        self._telemetry.emit(
            KIND_WORKER_CRASH,
            worker=worker.index,
            task=task_id,
            exitcode=exit_code,
        )
        self._kill_worker(worker)
        self._workers.remove(worker)
        self._workers.append(self._spawn_worker())
        self._register_failure(
            queue, attempts, history, task_id,
            f"{reason} (exitcode {exit_code})",
        )
