"""Synthetic task grids: deterministic micro-plans for tests and benches.

Real experiment cells take seconds; exercising the pool's fault paths
(crashes, hangs, retries, resume) with them would make the test suite
crawl.  A synthetic plan is a grid of trivial arithmetic cells that can be
told, per task, to misbehave exactly once:

``options["fail"]`` maps task ids to a directive:

- ``"kill-once"``  — hard-exit the worker process mid-task (crash
  isolation path; the parent sees EOF on the pipe);
- ``"raise-once"`` — raise inside the task (error-report path; the worker
  survives);
- ``"hang-once"``  — sleep far past any sane task timeout (timeout path);
- ``"raise-always"`` — raise on every attempt (retry-exhaustion path).

The ``*-once`` modes need crash-surviving state ("have I already failed?")
that lives *outside* the worker, since the whole point is that the worker
dies: a marker file under ``options["marker_dir"]``, created just before
misbehaving.  The retried attempt sees the marker and succeeds — exactly
one failure per directive, deterministically.

Payloads are pure functions of the task index, so the merged series is
byte-identical no matter which workers died along the way — the property
every fault-tolerance test asserts.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    SeriesResult,
    SimBudget,
    SimTask,
)

#: The one synthetic experiment name (prefix-routed by RunSpec.build_plan).
SYNTHETIC_GRID = "synthetic-grid"


def _cell_value(index: int) -> float:
    """Deterministic per-cell arithmetic (cheap, order-free)."""
    return float(index * index + 3 * index + 1)


def _misbehave(directive: str, task_id: str, marker_dir: str) -> None:
    """Carry out one failure directive (possibly not returning)."""
    once = directive.endswith("-once")
    if once:
        marker = Path(marker_dir) / f"{task_id}.failed"
        if marker.exists():
            return  # already failed once; behave this time
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.write_text(directive)
    if directive.startswith("kill"):
        os._exit(137)
    if directive.startswith("hang"):
        time.sleep(3600.0)
    raise RuntimeError(f"synthetic failure directive {directive!r}")


def _run_cell(
    index: int, task_id: str, options: Mapping[str, Any]
) -> Payload:
    fail = options.get("fail", {})
    directive = fail.get(task_id)
    if directive is not None:
        marker_dir = str(options.get("marker_dir", ""))
        if directive.endswith("-once") and not marker_dir:
            raise ValueError(
                f"directive {directive!r} for {task_id!r} needs "
                "options['marker_dir'] for its crash-surviving marker"
            )
        _misbehave(str(directive), task_id, marker_dir)
    sleep_seconds = float(options.get("sleep_seconds", 0.0))
    if sleep_seconds > 0.0:
        time.sleep(sleep_seconds)
    return {"value": _cell_value(index), "index": index}


def build_synthetic_plan(
    name: str, budget: SimBudget, options: Mapping[str, Any]
) -> ExperimentPlan:
    """Build a synthetic grid of ``options['n_tasks']`` trivial cells."""
    if name != SYNTHETIC_GRID:
        raise ValueError(
            f"unknown synthetic experiment {name!r} "
            f"(only {SYNTHETIC_GRID!r} exists)"
        )
    n_tasks = int(options.get("n_tasks", 8))
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")

    def make_thunk(index: int, task_id: str) -> SimTask:
        def thunk() -> Payload:
            return _run_cell(index, task_id, options)

        return SimTask(task_id=task_id, thunk=thunk)

    tasks: List[SimTask] = [
        make_thunk(index, f"cell={index:04d}") for index in range(n_tasks)
    ]

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name=SYNTHETIC_GRID,
            title="synthetic runner grid (test/bench harness)",
            x_name="cell",
            x_values=[float(i) for i in range(n_tasks)],
        )
        values: List[float] = []
        for index in range(n_tasks):
            payload = payloads[f"cell={index:04d}"]
            values.append(float(payload["value"]))
        result.add_series("value", values)
        return result

    return ExperimentPlan(SYNTHETIC_GRID, tasks, merge)


def synthetic_options(
    n_tasks: int,
    sleep_seconds: float = 0.0,
    fail: Optional[Mapping[str, str]] = None,
    marker_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
) -> Dict[str, Any]:
    """Convenience builder of a JSON-clean synthetic options mapping."""
    options: Dict[str, Any] = {"n_tasks": int(n_tasks)}
    if sleep_seconds:
        options["sleep_seconds"] = float(sleep_seconds)
    if fail:
        options["fail"] = dict(fail)
    if marker_dir is not None:
        options["marker_dir"] = str(marker_dir)
    return options
