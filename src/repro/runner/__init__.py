"""Parallel sweep runner: sharded, checkpointed, byte-identical execution.

The subsystem that turns "reproduce a figure" into "drive arbitrary-scale
sweeps" (ROADMAP: sharding/batching/async).  Layers, bottom up:

``spec``          :class:`RunSpec` — a self-contained, JSON-serializable
                  sweep description; workers rebuild the task grid from it
                  alone, never from process globals.
``journal``       :class:`RunJournal` — the ``runs/<run-id>/`` directory:
                  manifest, atomic per-task payload files, telemetry
                  stream, final result.  The substrate of ``--resume``.
``telemetry``     :class:`RunnerTelemetry` — registered event kinds (the
                  :mod:`repro.sim.trace` discipline), live counters,
                  worker utilization, ETA, a one-line progress display.
``pool``          :class:`WorkerPool` — one process + one pipe per worker;
                  per-task timeouts, bounded retries, and crash isolation
                  with targeted kill-and-respawn.
``orchestrator``  :func:`execute_run` — grid -> pool -> journal -> merge,
                  byte-identical to serial execution by construction.
``synthetic``     misbehaving micro-plans for the fault-path tests and
                  the task-throughput benchmark.

Entry points: ``repro run <experiment> --workers N [--resume RUN_ID]`` on
the command line, or :func:`execute_run` programmatically.  See
``docs/RUNNER.md`` for the task model and the determinism argument.
"""

from repro.runner.journal import JournalError, RunJournal, task_slug
from repro.runner.orchestrator import (
    DEFAULT_RUNS_DIR,
    RunOutcome,
    execute_run,
    make_run_id,
)
from repro.runner.pool import PoolResult, TaskFailedError, WorkerPool
from repro.runner.spec import RunSpec, SYNTHETIC_PREFIX
from repro.runner.synthetic import (
    SYNTHETIC_GRID,
    build_synthetic_plan,
    synthetic_options,
)
from repro.runner.telemetry import RUNNER_EVENT_KINDS, RunnerTelemetry

__all__ = [
    "JournalError",
    "RunJournal",
    "task_slug",
    "DEFAULT_RUNS_DIR",
    "RunOutcome",
    "execute_run",
    "make_run_id",
    "PoolResult",
    "TaskFailedError",
    "WorkerPool",
    "RunSpec",
    "SYNTHETIC_PREFIX",
    "SYNTHETIC_GRID",
    "build_synthetic_plan",
    "synthetic_options",
    "RUNNER_EVENT_KINDS",
    "RunnerTelemetry",
]
