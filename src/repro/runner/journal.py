"""Run-directory journal: durable record of a sweep's progress.

Layout of one run directory (``runs/<run-id>/``)::

    manifest.json        spec + fingerprint + task-id list + status
    tasks/00042-<slug>.json   one file per completed task (atomic)
    events.jsonl         runner telemetry event stream (append-only)
    result.json          merged SeriesResult (written once, at completion)

Every write that other code may read back (manifest, task payloads,
result) goes through an atomic temp-file + ``os.replace`` dance, so a
``kill -9`` mid-write never leaves a torn JSON file: a task either exists
completely or not at all, which is exactly the property ``--resume``
relies on to re-execute only missing cells.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.runner.spec import RunSpec

#: Manifest status values over a run's lifecycle.
STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"

_SLUG_RE = re.compile(r"[^A-Za-z0-9._=-]+")
_SLUG_MAX = 80


def task_slug(task_id: str) -> str:
    """Filesystem-safe slug of a task id (human-debuggable file names)."""
    slug = _SLUG_RE.sub("_", task_id).strip("_")
    return slug[:_SLUG_MAX] or "task"


def _atomic_write(path: Path, text: str) -> None:
    """Write *text* to *path* so readers never observe a partial file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class JournalError(Exception):
    """A run directory is missing, torn, or belongs to a different spec."""


class RunJournal:
    """Reader/writer for one run directory."""

    def __init__(self, run_dir: Path) -> None:
        self.run_dir = run_dir
        self.tasks_dir = run_dir / "tasks"
        self.manifest_path = run_dir / "manifest.json"
        self.events_path = run_dir / "events.jsonl"
        self.result_path = run_dir / "result.json"

    # ---- creation / loading ---------------------------------------------

    @classmethod
    def create(
        cls,
        run_dir: Path,
        spec: RunSpec,
        task_ids: List[str],
        execution: Optional[Mapping[str, Any]] = None,
    ) -> "RunJournal":
        """Initialize a fresh run directory with its manifest."""
        if run_dir.exists() and any(run_dir.iterdir()):
            raise JournalError(
                f"run directory {run_dir} already exists and is not empty "
                "(pass --resume to continue it, or choose another --run-id)"
            )
        journal = cls(run_dir)
        journal.tasks_dir.mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, Any] = {
            "run_id": run_dir.name,
            "spec": spec.to_dict(),
            "fingerprint": spec.fingerprint(task_ids),
            "task_ids": list(task_ids),
            "n_tasks": len(task_ids),
            "status": STATUS_RUNNING,
            "execution": dict(execution or {}),
        }
        journal.write_manifest(manifest)
        return journal

    @classmethod
    def load(cls, run_dir: Path) -> "RunJournal":
        """Open an existing run directory (its manifest must parse)."""
        journal = cls(run_dir)
        journal.manifest()  # validates existence + JSON
        return journal

    def manifest(self) -> Dict[str, Any]:
        """Read the manifest, raising :class:`JournalError` if absent."""
        try:
            loaded = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            raise JournalError(
                f"{self.run_dir} is not a run directory (no manifest.json)"
            ) from None
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"torn manifest in {self.run_dir}: {exc}"
            ) from None
        result: Dict[str, Any] = loaded
        return result

    def write_manifest(self, manifest: Mapping[str, Any]) -> None:
        """Atomically (re)write the manifest."""
        _atomic_write(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )

    def check_resumable(self, spec: RunSpec, task_ids: List[str]) -> None:
        """Refuse to resume a journal created by a different spec/grid."""
        manifest = self.manifest()
        expected = spec.fingerprint(task_ids)
        found = manifest.get("fingerprint")
        if found != expected:
            raise JournalError(
                f"cannot resume {self.run_dir.name}: its manifest "
                f"fingerprint {str(found)[:12]}... does not match this "
                f"spec's {expected[:12]}... — the run was created with a "
                "different experiment, budget, seeds, or task grid"
            )

    # ---- task payloads ---------------------------------------------------

    def _task_path(self, index: int, task_id: str) -> Path:
        return self.tasks_dir / f"{index:05d}-{task_slug(task_id)}.json"

    def record_task(
        self,
        index: int,
        task_id: str,
        payload: Mapping[str, Any],
        attempts: int,
        elapsed: float,
    ) -> None:
        """Atomically journal one completed task."""
        body = {
            "task_id": task_id,
            "index": index,
            "attempts": attempts,
            "elapsed_seconds": elapsed,
            "payload": payload,
        }
        _atomic_write(
            self._task_path(index, task_id),
            json.dumps(body, sort_keys=True, allow_nan=False) + "\n",
        )

    def iter_task_records(self) -> Iterator[Dict[str, Any]]:
        """Yield every journaled task record (unordered)."""
        if not self.tasks_dir.is_dir():
            return
        for path in sorted(self.tasks_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except json.JSONDecodeError:
                # A torn file cannot exist via the atomic protocol; if one
                # appears (e.g. a foreign file), skip it — the task will
                # simply re-run.
                continue
            if isinstance(record, dict) and "task_id" in record:
                yield record

    def completed_payloads(self) -> Dict[str, Dict[str, Any]]:
        """Map task_id -> journaled payload for every completed task."""
        payloads: Dict[str, Dict[str, Any]] = {}
        for record in self.iter_task_records():
            payloads[str(record["task_id"])] = dict(record["payload"])
        return payloads

    # ---- events / result -------------------------------------------------

    def append_event(self, event: Mapping[str, Any]) -> None:
        """Append one telemetry event to ``events.jsonl``."""
        with self.events_path.open("a") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")

    def write_result(self, result_json: str) -> None:
        """Atomically write the merged result and mark the run complete."""
        _atomic_write(self.result_path, result_json + "\n")
        manifest = self.manifest()
        manifest["status"] = STATUS_COMPLETE
        self.write_manifest(manifest)
