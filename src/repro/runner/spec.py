"""Run specification: everything a worker needs to rebuild a task grid.

A :class:`RunSpec` is the *complete* description of one sweep: the
experiment name, the fully-resolved simulation budget, and any extra
builder options.  Workers reconstruct the :class:`ExperimentPlan` from the
spec alone — they never consult the quality presets (which tests are free
to monkeypatch in the parent) or any other process-global state, so a task
executes identically in the parent, in a pool worker, and in a resumed run
days later.

The spec's :func:`fingerprint` (a SHA-256 over the canonical spec JSON
plus the plan's task-id list) is stored in the run manifest and checked on
``--resume``: a journal can only be resumed by the spec that created it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.experiments.base import (
    ExperimentPlan,
    SimBudget,
    budget_as_dict,
    budget_from_dict,
)

#: Experiment-name prefix routed to the synthetic-plan registry (test and
#: benchmark harness plans) instead of the real figure runners.
SYNTHETIC_PREFIX = "synthetic-"

#: Experiment-name prefix routed to the chaos-campaign plan builder
#: (randomized fault-space trials; see repro.chaos).
CHAOS_PREFIX = "chaos-"


@dataclass(frozen=True)
class RunSpec:
    """Self-contained, JSON-serializable description of one sweep.

    ``budget`` is the *resolved* budget mapping (see
    :func:`repro.experiments.base.budget_as_dict`), never a preset name;
    ``options`` carries extra keyword arguments for the plan builder and
    must be JSON-serializable.
    """

    experiment: str
    quality: str
    budget: Mapping[str, Any]
    options: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        experiment: str,
        quality: str,
        budget: SimBudget,
        options: Optional[Mapping[str, Any]] = None,
    ) -> "RunSpec":
        """Build a spec from an in-memory budget (normalizing to JSON)."""
        payload: Dict[str, Any] = {
            "experiment": experiment,
            "quality": quality,
            "budget": budget_as_dict(budget),
            "options": dict(options or {}),
        }
        normalized: Dict[str, Any] = json.loads(
            json.dumps(payload, sort_keys=True, allow_nan=False)
        )
        return cls(
            experiment=str(normalized["experiment"]),
            quality=str(normalized["quality"]),
            budget=dict(normalized["budget"]),
            options=dict(normalized["options"]),
        )

    def sim_budget(self) -> SimBudget:
        """The resolved :class:`SimBudget` this spec's tasks run under."""
        return budget_from_dict(self.budget)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (stable key order when dumped)."""
        return {
            "experiment": self.experiment,
            "quality": self.quality,
            "budget": dict(self.budget),
            "options": dict(self.options),
        }

    def to_json(self) -> str:
        """Canonical JSON encoding (the worker handshake payload)."""
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return cls.from_dict(payload)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from a manifest/handshake mapping."""
        return cls(
            experiment=str(payload["experiment"]),
            quality=str(payload["quality"]),
            budget=dict(payload["budget"]),
            options=dict(payload.get("options", {})),
        )

    def build_plan(self) -> ExperimentPlan:
        """Reconstruct the task grid this spec describes.

        Experiment names under ``synthetic-`` resolve through
        :mod:`repro.runner.synthetic`; everything else resolves through
        :data:`repro.experiments.PLAN_BUILDERS`.  Imports are deferred so
        pool workers pay the import cost once, lazily, and so this module
        never participates in an import cycle with the experiments
        package.
        """
        if self.experiment.startswith(SYNTHETIC_PREFIX):
            from repro.runner.synthetic import build_synthetic_plan

            return build_synthetic_plan(
                self.experiment, self.sim_budget(), dict(self.options)
            )
        if self.experiment.startswith(CHAOS_PREFIX):
            from repro.chaos.campaign import build_chaos_plan

            return build_chaos_plan(
                self.experiment, self.sim_budget(), dict(self.options)
            )
        from repro.experiments import PLAN_BUILDERS

        builder = PLAN_BUILDERS.get(self.experiment)
        if builder is None:
            raise ValueError(
                f"unknown experiment {self.experiment!r}; choose from "
                f"{sorted(PLAN_BUILDERS)}"
            )
        plan: ExperimentPlan = builder(
            quality=self.quality, budget=self.sim_budget(), **self.options
        )
        return plan

    def fingerprint(self, task_ids: List[str]) -> str:
        """SHA-256 binding this spec to its plan's exact task grid."""
        canonical = json.dumps(
            {"spec": self.to_dict(), "task_ids": list(task_ids)},
            sort_keys=True,
            allow_nan=False,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
