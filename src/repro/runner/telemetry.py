"""Runner telemetry: structured events, live counters, and a progress line.

Mirrors the :mod:`repro.sim.trace` discipline — every event kind emitted by
the orchestrator/pool is declared up front in :data:`RUNNER_EVENT_KINDS`,
so a typo'd kind fails loudly at the emission site instead of producing a
stream nothing downstream matches.  Events are appended to the run
journal's ``events.jsonl`` (when attached) and folded into live counters
that drive the single-line progress display.

Wall-clock use is deliberate and allowed here: the runner orchestrates the
deterministic simulation, it is not part of it (the R2 determinism
contract covers ``core``/``sim``/``faults``; timing never feeds a result
payload).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, FrozenSet, Optional, TextIO

#: Event kind constants (KIND_* mirrors sim/trace.py's naming).
KIND_RUN_START = "run-start"
KIND_RUN_RESUME = "run-resume"
KIND_TASK_DISPATCH = "task-dispatch"
KIND_TASK_DONE = "task-done"
KIND_TASK_RETRY = "task-retry"
KIND_TASK_FAILED = "task-failed"
KIND_WORKER_SPAWN = "worker-spawn"
KIND_WORKER_CRASH = "worker-crash"
KIND_WORKER_TIMEOUT = "worker-timeout"
KIND_RUN_STOPPED = "run-stopped"
KIND_RUN_COMPLETE = "run-complete"

#: The closed registry of event kinds the runner may emit.
RUNNER_EVENT_KINDS: FrozenSet[str] = frozenset({
    KIND_RUN_START,
    KIND_RUN_RESUME,
    KIND_TASK_DISPATCH,
    KIND_TASK_DONE,
    KIND_TASK_RETRY,
    KIND_TASK_FAILED,
    KIND_WORKER_SPAWN,
    KIND_WORKER_CRASH,
    KIND_WORKER_TIMEOUT,
    KIND_RUN_STOPPED,
    KIND_RUN_COMPLETE,
})


def _format_eta(seconds: float) -> str:
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.0f}s"


class RunnerTelemetry:
    """Counters + event sink for one sweep execution.

    ``sink`` (usually :meth:`RunJournal.append_event`) receives every
    event as a JSON-ready mapping; ``stream`` (usually stderr) receives
    the redrawn progress line when ``progress`` is enabled.
    """

    def __init__(
        self,
        total_tasks: int,
        already_done: int = 0,
        workers: int = 1,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        progress: bool = False,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total_tasks = total_tasks
        self.already_done = already_done
        self.workers = workers
        self.done = 0
        self.dispatched = 0
        self.running = 0
        self.retried = 0
        self.crashes = 0
        self.timeouts = 0
        self._sink = sink
        self._progress = progress
        self._stream: TextIO = stream if stream is not None else sys.stderr
        self._started = time.monotonic()
        self._busy_seconds = 0.0
        self._line_open = False

    # ---- events ----------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event: validate the kind, count it, sink it."""
        if kind not in RUNNER_EVENT_KINDS:
            raise ValueError(
                f"unregistered runner event kind {kind!r}; declare it in "
                "RUNNER_EVENT_KINDS"
            )
        if kind == KIND_TASK_DISPATCH:
            self.dispatched += 1
            self.running += 1
        elif kind == KIND_TASK_DONE:
            self.done += 1
            self.running = max(0, self.running - 1)
            self._busy_seconds += float(fields.get("elapsed_seconds", 0.0))
        elif kind == KIND_TASK_RETRY:
            self.retried += 1
            self.running = max(0, self.running - 1)
        elif kind == KIND_WORKER_CRASH:
            self.crashes += 1
        elif kind == KIND_WORKER_TIMEOUT:
            self.timeouts += 1
        if self._sink is not None:
            event = {"kind": kind, "t": time.time()}
            event.update(fields)
            self._sink(event)
        if self._progress:
            self._redraw()

    # ---- progress line ---------------------------------------------------

    def utilization(self) -> float:
        """Fraction of wall-clock x workers spent inside tasks."""
        wall = max(time.monotonic() - self._started, 1e-9)
        return min(self._busy_seconds / (wall * max(self.workers, 1)), 1.0)

    def eta_seconds(self) -> Optional[float]:
        """Naive remaining-time estimate from the observed task rate."""
        if self.done == 0:
            return None
        wall = max(time.monotonic() - self._started, 1e-9)
        remaining = self.total_tasks - self.already_done - self.done
        if remaining <= 0:
            return 0.0
        return remaining * (wall / self.done)

    def progress_line(self) -> str:
        """One-line summary: done/total, running, retries, util, ETA."""
        completed = self.already_done + self.done
        parts = [
            f"[runner] {completed}/{self.total_tasks} tasks",
            f"{self.running} running",
        ]
        if self.retried:
            parts.append(f"{self.retried} retried")
        parts.append(f"util {self.utilization():.0%}")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"eta {_format_eta(eta)}")
        return "  ".join(parts)

    def _redraw(self) -> None:
        self._stream.write("\r\x1b[2K" + self.progress_line())
        self._stream.flush()
        self._line_open = True

    def close_line(self) -> None:
        """Terminate the progress line so later output starts clean."""
        if self._line_open:
            self._stream.write("\n")
            self._stream.flush()
            self._line_open = False
