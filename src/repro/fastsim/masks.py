"""Vectorized fault/adversary decisions for the fast engine.

These classes are the batch counterparts of
:class:`repro.faults.injector.FaultInjector` and
:class:`repro.adversary.injector.AdversaryInjector`.  Two compatibility
contracts are load-bearing and tested (``tests/test_fastsim_masks.py``):

- **Set/size decisions are bitwise-identical.**  The polluter slot set,
  the adversary role sets, and burst sizing use the *same formulas on the
  same ``random.Random`` substream draws* as the scalar injectors, so a
  fast-engine run and an event-engine run with the same seed pick the
  same misbehaving slots.
- **Per-event decisions apply the same rule to the same uniforms.**  A
  scalar injector decides ``u < p`` per transfer; the mask methods decide
  the identical predicate over a vector of uniforms (property-tested by
  replaying one uniform stream through both implementations).

Zero-knob neutrality holds exactly as for the scalar injectors: every
query short-circuits on the plan knob *before* touching any RNG, so a
null channel consumes no randomness (lint rule R7 proves this on the
decision methods below, same as for the injectors).
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.adversary.plan import TARGET_LOW_DEGREE, AdversaryPlan
from repro.faults.plan import FaultPlan
from repro.sim.rng import exponential


class FastFaultMasks:
    """Batch fault-channel decisions over one :class:`FaultPlan`.

    Args:
        plan: The fault configuration.
        py_rng: Dedicated ``random.Random`` substream — consumed by the
            same formulas as the scalar injector (polluter set, burst
            slots, renewal outage gaps).
        np_rng: Dedicated numpy substream for the vectorized per-transfer
            loss draws.
        n_slots: Number of peer slots.
    """

    def __init__(
        self,
        plan: FaultPlan,
        py_rng: random.Random,
        np_rng: np.random.Generator,
        n_slots: int,
    ) -> None:
        self.plan = plan
        self._py_rng = py_rng
        self._np_rng = np_rng
        self._n_slots = n_slots
        self.polluters: FrozenSet[int] = self._sample_polluters()

    def _sample_polluters(self) -> FrozenSet[int]:
        """Identical formula and draw to FaultInjector._sample_polluters."""
        fraction = self.plan.pollution_fraction
        if fraction <= 0.0:
            return frozenset()
        count = min(self._n_slots, max(1, round(fraction * self._n_slots)))
        return frozenset(self._py_rng.sample(range(self._n_slots), count))

    def polluter_mask(self) -> np.ndarray:
        """Boolean slot mask of the configured polluters."""
        mask = np.zeros(self._n_slots, dtype=bool)
        if self.polluters:
            mask[np.fromiter(self.polluters, dtype=np.int64)] = True
        return mask

    # -- hot-path queries (zero-knob cases must not touch the RNG) ----------

    def gossip_loss_mask(self, count: int) -> Optional[np.ndarray]:
        """Per-transfer loss decisions for *count* gossip deliveries.

        Returns None (no transfer lost, no RNG touched) when the knob is
        off — the vector form of ``p > 0.0 and rng.random() < p``.
        """
        p = self.plan.gossip_loss_rate
        if p > 0.0:
            return self._np_rng.random(count) < p
        return None

    def pull_loss_mask(self, count: int) -> Optional[np.ndarray]:
        """Per-pull transfer-loss decisions for *count* server pulls."""
        p = self.plan.pull_loss_rate
        if p > 0.0:
            return self._np_rng.random(count) < p
        return None

    # -- burst/outage event support ----------------------------------------

    def burst_size(self) -> int:
        """Identical formula to FaultInjector.burst_size."""
        return min(
            self._n_slots,
            max(1, round(self.plan.burst_fraction * self._n_slots)),
        )

    def burst_slots(self) -> List[int]:
        """Slots killed by one burst event (same draw as the injector)."""
        return self._py_rng.sample(range(self._n_slots), self.burst_size())

    def outage_timeline(self, horizon: float) -> Tuple[Tuple[float, float], ...]:
        """Materialize the outage schedule over ``[0, horizon]``.

        Deterministic windows pass through (clipped); the renewal process
        is pre-drawn here — onset gaps are Exp(outage_rate) measured from
        the previous recovery, exactly the injector's renewal structure.
        A plan with no outage channel returns () without touching the RNG.
        """
        plan = self.plan
        if plan.outage_windows:
            clipped = [
                (start, min(end, horizon))
                for start, end in plan.outage_windows
                if start < horizon
            ]
            return tuple(clipped)
        if plan.outage_rate > 0.0:
            windows = []
            t = 0.0
            while True:
                t += exponential(self._py_rng, plan.outage_rate)
                if t >= horizon:
                    break
                end = min(t + plan.outage_duration, horizon)
                windows.append((t, end))
                t = end
            return tuple(windows)
        return ()


class FastAdversaryMasks:
    """Batch adversary decisions over one :class:`AdversaryPlan`.

    Role assignment reproduces AdversaryInjector._sample_roles draw for
    draw (one ``sample(range(n), n)`` permutation carved into disjoint
    liar/free-rider/polluter prefixes), so same-seed fast and event runs
    agree on who misbehaves.  Sybil conversions are identity-scoped and
    live in the system's role arrays (cleared on churn), not here.
    """

    def __init__(
        self,
        plan: AdversaryPlan,
        py_rng: random.Random,
        np_rng: np.random.Generator,
        n_slots: int,
    ) -> None:
        self.plan = plan
        self._py_rng = py_rng
        self._np_rng = np_rng
        self._n_slots = n_slots
        liars, freeriders, polluters = self._sample_roles()
        self.liars: FrozenSet[int] = liars
        self.freeriders: FrozenSet[int] = freeriders
        self.polluters: FrozenSet[int] = polluters

    def _sample_roles(
        self,
    ) -> Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
        """Identical formula and draws to AdversaryInjector._sample_roles."""
        plan = self.plan
        n = self._n_slots
        if plan.static_fraction <= 0.0:
            return frozenset(), frozenset(), frozenset()
        order = self._py_rng.sample(range(n), n)
        counts = []
        remaining = n
        for fraction in (
            plan.liar_fraction,
            plan.freerider_fraction,
            plan.polluter_fraction,
        ):
            count = 0
            if fraction > 0.0:
                count = min(remaining, max(1, round(fraction * n)))
            counts.append(count)
            remaining -= count
        liar_end = counts[0]
        freerider_end = liar_end + counts[1]
        polluter_end = freerider_end + counts[2]
        return (
            frozenset(order[:liar_end]),
            frozenset(order[liar_end:freerider_end]),
            frozenset(order[freerider_end:polluter_end]),
        )

    def role_mask(self, slots: FrozenSet[int]) -> np.ndarray:
        """Boolean slot mask of one role set."""
        mask = np.zeros(self._n_slots, dtype=bool)
        if slots:
            mask[np.fromiter(slots, dtype=np.int64)] = True
        return mask

    @property
    def targets_low_degree(self) -> bool:
        """True when strategic polluters steer at low-degree segments."""
        return (
            bool(self.polluters)
            and self.plan.polluter_targeting == TARGET_LOW_DEGREE
        )

    # -- liar advertisement capture -----------------------------------------

    def capture_probability(self, attractor_count: int) -> float:
        """P(one pull is captured) given *attractor_count* advertisers.

        The injector's arithmetic verbatim: ``A·k / (A·k + (N − k))``.
        """
        k = attractor_count
        if k <= 0:
            return 0.0
        weight = self.plan.liar_inflation * k
        honest = self._n_slots - k
        return weight / (weight + honest)

    def capture_mask(self, count: int, attractor_count: int) -> Optional[np.ndarray]:
        """Per-pull capture decisions; None when nobody advertises."""
        p = self.capture_probability(attractor_count)
        if p > 0.0:
            return self._np_rng.random(count) < p
        return None

    def capture_attractors(
        self, count: int, attractors: np.ndarray
    ) -> np.ndarray:
        """Uniformly sample the capturing slot for *count* captured pulls."""
        picks = self._np_rng.integers(0, len(attractors), size=count)
        return attractors[picks]

    # -- sybil bursts --------------------------------------------------------

    def sybil_burst_size(self) -> int:
        """Identical formula to AdversaryInjector.sybil_burst_size."""
        return min(
            self._n_slots,
            max(1, round(self.plan.sybil_fraction * self._n_slots)),
        )

    def sybil_slots(self) -> List[int]:
        """Slots converted by one sybil burst (same draw as the injector)."""
        return self._py_rng.sample(range(self._n_slots), self.sybil_burst_size())
