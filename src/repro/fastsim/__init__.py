"""Vectorized fast path for the abstract-mode simulation.

The event-exact engine (:mod:`repro.core.system`) pays one Python object
per peer and one heap event per protocol action, which caps practical
session sizes in the low tens of thousands of peers.  This package is the
struct-of-arrays rewrite of the *abstract* fidelity mode: peer buffers,
per-segment degrees/collected counts, TTL state and churn state live in
flat numpy columns, and the five Poisson channels (injection, gossip,
server pulls, TTL expiry, churn) advance in vectorized batch steps.

Two steppers share the same batch kernels:

- **tau-leaping** (``tau > 0``): each channel fires ``Poisson(rate·tau)``
  times per step, with event times jittered uniformly inside the step
  (exact for a Poisson process conditional on the count);
- **exact** (``tau == 0``): an aggregate-clock Gillespie simulation on the
  event engine's own :class:`~repro.sim.engine.Simulator` /
  :class:`~repro.sim.engine.PoissonProcess` machinery, firing the same
  kernels one event at a time at exact event times.

Fidelity contract: the fast engine simulates the paper's *mean-field
closure* of the protocol — segment selection for gossip emissions and
server pulls uses the network-wide block composition rather than the
chosen peer's private buffer, and gossip-target eligibility reduces to
buffer room.  This is the same idealization under which Sec. 3 derives
the ODE system, so agreement with the event engine is *distributional*
(tested at KS level on delay/overhead curves in ``tests/test_fastsim.py``),
not event-for-event.  Conservation laws, buffer caps and accounting
identities hold exactly and are enforced by the array-level invariant
checks in :meth:`FastCollectionSystem.consistency_check`.
"""

from repro.fastsim.masks import FastAdversaryMasks, FastFaultMasks
from repro.fastsim.shard import (
    merge_shard_payloads,
    run_shard,
    shard_parameters,
)
from repro.fastsim.state import FastState
from repro.fastsim.system import FastCollectionSystem

__all__ = [
    "FastAdversaryMasks",
    "FastCollectionSystem",
    "FastFaultMasks",
    "FastState",
    "merge_shard_payloads",
    "run_shard",
    "shard_parameters",
]
