"""Peer-partition sharding of one giant fast-engine session.

The paper's protocol is peer-symmetric and all per-peer rates are
normalized (λ, μ, γ, c are *per peer per unit time*), so a session of
``N`` peers factorizes into ``W`` independent sessions of ``N/W`` peers
with the same normalized parameters — the populations never interact
through anything but the (linear) aggregate statistics.  That makes the
scale-out embarrassingly parallel: each shard runs on its own worker
with its own derived seed, returns a *pure* payload of sufficient
statistics, and :func:`merge_shard_payloads` folds them into one
flat report deterministically.

Merge contract (what the ``scale-smoke`` CI job asserts): payloads are
JSON-round-trippable, contain **no host-dependent values** (no wall
times, no RSS — those ride the runner's telemetry channel), and the
merge sorts by shard index first, so the merged report is byte-identical
regardless of worker count or completion order.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence

from repro.core.params import Parameters
from repro.fastsim.system import DelayAccumulator, FastCollectionSystem
from repro.sim.rng import SeedSequenceRegistry

#: Payload schema version (bump on incompatible payload changes).
PAYLOAD_SCHEMA = 1

#: Window counters serialized into shard payloads, by collector attribute
#: name.  Includes the channels fastsim never fires (always 0) so the
#: payload shape matches MetricsReport field for field.
COUNTER_NAMES = (
    "pulls",
    "useful_pulls",
    "redundant_pulls",
    "idle_pulls",
    "segments_completed",
    "injected_segments",
    "injected_blocks",
    "blocked_injections",
    "gossip_transfers",
    "gossip_no_target",
    "gossip_undeliverable",
    "blocks_expired",
    "blocks_lost_to_churn",
    "departures",
    "segments_lost",
    "transfers_dropped",
    "blocks_rejected_polluted",
    "burst_departures",
    "gossip_suppressed",
    "pulls_captured",
    "junk_blocks_served",
    "pulls_quarantine_rejected",
    "slots_quarantined",
    "false_quarantines",
    "sybil_conversions",
)

#: Time-weighted averages serialized into shard payloads.  The first four
#: are population totals (merge by sum); servers_down is an indicator
#: (merge by mean).
AVERAGE_NAMES = (
    "total_blocks",
    "empty_peers",
    "saved_segments",
    "decodable_segments",
    "servers_down",
)


def shard_parameters(params: Parameters, shards: int) -> List[Parameters]:
    """Split *params* into per-shard parameter sets (peer partition).

    The remainder of ``n_peers / shards`` is spread over the first
    shards, so shard sizes differ by at most one peer.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if params.n_peers < shards:
        raise ValueError(
            f"cannot split n_peers={params.n_peers} into {shards} shards"
        )
    base, remainder = divmod(params.n_peers, shards)
    out = []
    for index in range(shards):
        size = base + (1 if index < remainder else 0)
        out.append(
            params.with_changes(
                n_peers=size,
                n_servers=min(params.n_servers, size),
            )
        )
    return out


def shard_seed(seed: int, shard_index: int) -> int:
    """Derived root seed of one shard (independent named substream)."""
    return SeedSequenceRegistry(seed).spawn(f"shard:{shard_index}").root_seed


def run_shard(
    params: Parameters,
    seed: int,
    shard_index: int,
    shards: int,
    warmup: float,
    duration: float,
) -> Dict[str, Any]:
    """Run one shard of the partitioned session; return its payload.

    The payload is a pure function of ``(params, seed, shard_index,
    shards, warmup, duration)``: plain ints/floats/lists only, nothing
    host-dependent, so it survives a JSON round trip byte-identically.
    An invariant breach is *reported* (``monitors_clean: False``) rather
    than raised, so a sharded run surfaces the failure in the merged
    result instead of killing the worker pool.
    """
    shard_params = shard_parameters(params, shards)[shard_index]
    system = FastCollectionSystem(shard_params, shard_seed(seed, shard_index))
    monitors_clean = True
    violation = ""
    from repro.chaos.monitors import InvariantViolation

    try:
        system.run(warmup, duration)
    except InvariantViolation as error:
        monitors_clean = False
        violation = str(error)
    now = system.now
    metrics = system.metrics
    window = max(now - metrics._window_start, 0.0)
    return {
        "schema": PAYLOAD_SCHEMA,
        "shard": shard_index,
        "shards": shards,
        "n_peers": shard_params.n_peers,
        "arrival_rate": params.arrival_rate,
        "segment_size": params.segment_size,
        "normalized_capacity": params.normalized_capacity,
        "deletion_rate": params.deletion_rate,
        "window": window,
        "counters": {
            name: int(getattr(metrics, name).window) for name in COUNTER_NAMES
        },
        "averages": {
            name: float(getattr(metrics, name).average(now))
            for name in AVERAGE_NAMES
        },
        "delays": {
            "counts": [int(c) for c in system.delays.counts],
            "count": int(system.delays.count),
            "total": float(system.delays.total),
        },
        "events_applied": int(system.events_applied),
        "monitors_clean": monitors_clean,
        "violation": violation,
    }


def merge_shard_payloads(payloads: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold shard payloads into one flat merged report.

    Deterministic and order-blind: payloads are sorted by shard index
    before any floating-point accumulation, so the result is
    byte-identical however the shards were scheduled.  Keys mirror
    :class:`~repro.sim.metrics.MetricsReport` plus ``shards`` and
    ``monitors_clean``.
    """
    if not payloads:
        raise ValueError("merge_shard_payloads needs at least one payload")
    ordered = sorted(payloads, key=lambda p: p["shard"])
    first = ordered[0]
    for payload in ordered:
        if payload["schema"] != PAYLOAD_SCHEMA:
            raise ValueError(
                f"shard {payload['shard']} has payload schema "
                f"{payload['schema']}, expected {PAYLOAD_SCHEMA}"
            )
        if payload["window"] != first["window"]:
            raise ValueError(
                f"shard {payload['shard']} measured window "
                f"{payload['window']}, shard {first['shard']} measured "
                f"{first['window']}; shards must share the horizon"
            )
    n_peers = sum(p["n_peers"] for p in ordered)
    window = float(first["window"])
    arrival_rate = float(first["arrival_rate"])
    segment_size = int(first["segment_size"])
    deletion_rate = float(first["deletion_rate"])

    counters = {
        name: sum(p["counters"][name] for p in ordered)
        for name in COUNTER_NAMES
    }
    sums = {
        name: math.fsum(p["averages"][name] for p in ordered)
        for name in AVERAGE_NAMES
    }
    delays = DelayAccumulator()
    for payload in ordered:
        blob = payload["delays"]
        delays.merge_counts(blob["counts"], blob["count"], blob["total"])

    pulls = counters["pulls"]
    useful = counters["useful_pulls"]
    demand = n_peers * arrival_rate
    throughput = useful / window if window > 0 else 0.0
    goodput = (
        delays.count * segment_size / window if window > 0 else 0.0
    )
    occupancy = sums["total_blocks"] / n_peers
    mean_segment = delays.mean()
    p50 = delays.percentile(50.0)
    p95 = delays.percentile(95.0)
    merged: Dict[str, Any] = {
        "n_peers": n_peers,
        "arrival_rate": arrival_rate,
        "segment_size": segment_size,
        "normalized_capacity": float(first["normalized_capacity"]),
        "window": window,
        "shards": len(ordered),
        "monitors_clean": all(p["monitors_clean"] for p in ordered),
        "violations": [p["violation"] for p in ordered if p["violation"]],
        "throughput": throughput,
        "normalized_throughput": throughput / demand if demand else 0.0,
        "efficiency": useful / pulls if pulls else 0.0,
        "goodput": goodput,
        "normalized_goodput": goodput / demand if demand else 0.0,
        "mean_buffer_occupancy": occupancy,
        "empty_peer_fraction": sums["empty_peers"] / n_peers,
        "storage_overhead": max(
            occupancy - arrival_rate / deletion_rate, 0.0
        ),
        "mean_segment_delay": mean_segment,
        "mean_block_delay": (
            mean_segment / segment_size if mean_segment is not None else None
        ),
        "p50_block_delay": p50 / segment_size if p50 is not None else None,
        "p95_block_delay": p95 / segment_size if p95 is not None else None,
        "delay_samples": delays.count,
        "saved_blocks_per_peer": sums["saved_segments"]
        * segment_size
        / n_peers,
        "decodable_segments_per_peer": sums["decodable_segments"] / n_peers,
        "outage_time": sums["servers_down"] / len(ordered) * window,
        "engine_events_fired": sum(p["events_applied"] for p in ordered),
    }
    merged.update(counters)
    return merged
