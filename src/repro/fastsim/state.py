"""Struct-of-arrays session state for the fast engine.

Three flat column groups replace the event engine's object graph:

- **peers** — one ``int64`` block count per slot (the bipartite graph's
  peer degrees ``y_i``), plus boolean role masks for the fault/adversary
  channels;
- **blocks** — a dense table of live blocks, one row per block, holding
  (owner slot, segment id, polluted flag).  Uniform sampling over rows is
  exactly the degree-proportional draw the paper's analysis assumes, and
  deleting rows swaps the tail down so the table stays dense;
- **segments** — growable columns of per-segment degree ``x_r``, polluted
  block count, server-collected count ``j_r``, and injection time.

Everything is indexed by position; dead segments (degree 0) are retired
lazily by :meth:`FastState.compact_segments`, which remaps the block
table's segment column in one vectorized pass.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Initial capacity of the growable tables.
_INITIAL_CAPACITY = 1024
#: Dead segments must both exceed this floor and outnumber live ones
#: before a compaction pays for itself.
_COMPACT_MIN_DEAD = 4096


def _grow(array: np.ndarray, needed: int) -> np.ndarray:
    """Return *array* grown geometrically to hold *needed* rows."""
    capacity = len(array)
    if needed <= capacity:
        return array
    new_capacity = max(needed, 2 * capacity)
    grown = np.zeros(new_capacity, dtype=array.dtype)
    grown[:capacity] = array
    return grown


class FastState:
    """Mutable struct-of-arrays state of one fast-engine session."""

    def __init__(self, n_peers: int, capacity: int, segment_size: int) -> None:
        if n_peers < 1:
            raise ValueError(f"n_peers must be >= 1, got {n_peers}")
        if capacity < segment_size:
            raise ValueError(
                f"capacity ({capacity}) must be >= segment_size "
                f"({segment_size})"
            )
        self.n_peers = n_peers
        self.capacity = capacity
        self.segment_size = segment_size

        # peers ------------------------------------------------------------
        self.peer_blocks = np.zeros(n_peers, dtype=np.int64)
        #: adversary role masks (all False on honest runs); sybil marks are
        #: cleared when churn replaces the converted identity.
        self.is_liar = np.zeros(n_peers, dtype=bool)
        self.is_freerider = np.zeros(n_peers, dtype=bool)
        self.is_adv_polluter = np.zeros(n_peers, dtype=bool)
        self.is_sybil = np.zeros(n_peers, dtype=bool)
        #: fault-channel polluter slots (FaultPlan.pollution_fraction).
        self.is_fault_polluter = np.zeros(n_peers, dtype=bool)

        # blocks -----------------------------------------------------------
        self.block_peer = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.block_seg = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.block_polluted = np.zeros(_INITIAL_CAPACITY, dtype=bool)
        self.n_blocks = 0

        # segments ---------------------------------------------------------
        self.seg_degree = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.seg_polluted = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.seg_collected = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.seg_injected_at = np.zeros(_INITIAL_CAPACITY, dtype=np.float64)
        self.seg_alive = np.zeros(_INITIAL_CAPACITY, dtype=bool)
        self.n_segments = 0
        #: live (degree > 0) segments; maintained incrementally so the
        #: compaction trigger is O(1).
        self.live_segments = 0

    # -- derived -----------------------------------------------------------

    @property
    def total_blocks(self) -> int:
        """Live blocks in the network (Σ y_i == Σ x_r)."""
        return self.n_blocks

    def empty_peer_count(self) -> int:
        """Peers with no buffered blocks (the z₀ population)."""
        return int(np.count_nonzero(self.peer_blocks[: self.n_peers] == 0))

    def full_peer_count(self) -> int:
        """Peers at the buffer cap (refuse gossip)."""
        return int(
            np.count_nonzero(self.peer_blocks[: self.n_peers] >= self.capacity)
        )

    def decodable_segment_count(self) -> int:
        """Segments with network degree >= s (Theorem 4's population)."""
        m = self.n_segments
        return int(
            np.count_nonzero(self.seg_degree[:m] >= self.segment_size)
        )

    def saved_segment_count(self) -> int:
        """Decodable segments the servers have not yet reconstructed."""
        m = self.n_segments
        return int(
            np.count_nonzero(
                (self.seg_degree[:m] >= self.segment_size)
                & (self.seg_collected[:m] < self.segment_size)
            )
        )

    # -- segment lifecycle -------------------------------------------------

    def new_segments(self, injected_at: np.ndarray) -> np.ndarray:
        """Register len(injected_at) fresh segments; returns their ids.

        The new segments start at degree 0; the caller appends their
        original blocks through :meth:`append_blocks` immediately after.
        """
        count = len(injected_at)
        start = self.n_segments
        end = start + count
        self.seg_degree = _grow(self.seg_degree, end)
        self.seg_polluted = _grow(self.seg_polluted, end)
        self.seg_collected = _grow(self.seg_collected, end)
        self.seg_injected_at = _grow(self.seg_injected_at, end)
        self.seg_alive = _grow(self.seg_alive, end)
        self.seg_injected_at[start:end] = injected_at
        self.seg_alive[start:end] = True
        self.n_segments = end
        self.live_segments += count
        return np.arange(start, end, dtype=np.int64)

    def should_compact(self) -> bool:
        """True when dead segment rows dominate the segment columns."""
        dead = self.n_segments - self.live_segments
        return dead > _COMPACT_MIN_DEAD and dead > self.live_segments

    def compact_segments(self) -> int:
        """Retire dead segment rows; returns how many were evicted.

        Live segments keep their relative order; the block table's segment
        column is remapped in one pass.  Segment *ids* are positional, so
        callers must not hold ids across a compaction.
        """
        m = self.n_segments
        keep = self.seg_alive[:m]
        kept = int(np.count_nonzero(keep))
        evicted = m - kept
        if evicted == 0:
            return 0
        remap = np.full(m, -1, dtype=np.int64)
        remap[np.flatnonzero(keep)] = np.arange(kept, dtype=np.int64)
        for name in (
            "seg_degree",
            "seg_polluted",
            "seg_collected",
            "seg_injected_at",
            "seg_alive",
        ):
            column = getattr(self, name)
            column[:kept] = column[:m][keep]
            column[kept:m] = 0
        self.n_segments = kept
        k = self.n_blocks
        self.block_seg[:k] = remap[self.block_seg[:k]]
        return evicted

    # -- block table -------------------------------------------------------

    def append_blocks(
        self,
        peers: np.ndarray,
        segments: np.ndarray,
        polluted: np.ndarray,
    ) -> None:
        """Add one row per (peer, segment, polluted) triple, updating the
        peer/segment degree columns and the segment pollution counts."""
        count = len(peers)
        if count == 0:
            return
        start = self.n_blocks
        end = start + count
        self.block_peer = _grow(self.block_peer, end)
        self.block_seg = _grow(self.block_seg, end)
        self.block_polluted = _grow(self.block_polluted, end)
        self.block_peer[start:end] = peers
        self.block_seg[start:end] = segments
        self.block_polluted[start:end] = polluted
        self.n_blocks = end
        np.add.at(self.peer_blocks, peers, 1)
        np.add.at(self.seg_degree, segments, 1)
        if polluted.any():
            np.add.at(self.seg_polluted, segments[polluted], 1)

    def remove_block_rows(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Delete the (unique, sorted) block *rows* from the dense table.

        Returns ``(peers, segments, polluted, extinct_segments)`` of the
        deleted rows, with degree columns already updated; an *extinct*
        segment is one whose degree hit zero (it can never gain blocks
        again and is marked dead).  Uses the vectorized swap-with-tail
        trick so the table stays dense in O(len(rows) log len(rows)).
        """
        count = len(rows)
        n = self.n_blocks
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty.astype(bool), empty
        peers = self.block_peer[rows].copy()
        segments = self.block_seg[rows].copy()
        polluted = self.block_polluted[rows].copy()

        keep_start = n - count
        holes = rows[rows < keep_start]
        tail_deleted = rows[rows >= keep_start]
        tail_kept = np.setdiff1d(
            np.arange(keep_start, n, dtype=rows.dtype),
            tail_deleted,
            assume_unique=True,
        )
        self.block_peer[holes] = self.block_peer[tail_kept]
        self.block_seg[holes] = self.block_seg[tail_kept]
        self.block_polluted[holes] = self.block_polluted[tail_kept]
        self.n_blocks = keep_start

        np.subtract.at(self.peer_blocks, peers, 1)
        np.subtract.at(self.seg_degree, segments, 1)
        if polluted.any():
            np.subtract.at(self.seg_polluted, segments[polluted], 1)

        touched = np.unique(segments)
        extinct = touched[
            (self.seg_degree[touched] == 0) & self.seg_alive[touched]
        ]
        if len(extinct):
            self.seg_alive[extinct] = False
            self.live_segments -= len(extinct)
        return peers, segments, polluted, extinct

    def rows_of_peers(self, slots: np.ndarray) -> np.ndarray:
        """Block-table rows owned by any of *slots* (one O(K) scan)."""
        k = self.n_blocks
        if k == 0 or len(slots) == 0:
            return np.empty(0, dtype=np.int64)
        mask = np.isin(self.block_peer[:k], slots)
        return np.flatnonzero(mask)

    # -- invariants ----------------------------------------------------------

    def check_conservation(self) -> None:
        """Raise AssertionError on any broken conservation law.

        The array-level counterparts of the chaos end-state monitors:
        block conservation (peer side == table == segment side), buffer
        caps, pollution accounting, and collected-count sanity.
        """
        n = self.n_peers
        m = self.n_segments
        k = self.n_blocks
        peer_total = int(self.peer_blocks[:n].sum())
        seg_total = int(self.seg_degree[:m].sum())
        if peer_total != k or seg_total != k:
            raise AssertionError(
                f"block conservation broken: peers hold {peer_total}, "
                f"segments account {seg_total}, table has {k}"
            )
        if (self.peer_blocks[:n] < 0).any():
            raise AssertionError("negative peer block count")
        over = int(np.count_nonzero(self.peer_blocks[:n] > self.capacity))
        if over:
            raise AssertionError(
                f"{over} peers exceed the buffer cap {self.capacity}"
            )
        if (self.seg_degree[:m] < 0).any():
            raise AssertionError("negative segment degree")
        if (self.seg_polluted[:m] < 0).any() or (
            self.seg_polluted[:m] > self.seg_degree[:m]
        ).any():
            raise AssertionError("segment pollution count out of range")
        table_polluted = int(np.count_nonzero(self.block_polluted[:k]))
        seg_polluted = int(self.seg_polluted[:m].sum())
        if table_polluted != seg_polluted:
            raise AssertionError(
                f"pollution accounting broken: table tags {table_polluted}, "
                f"segments account {seg_polluted}"
            )
        if (self.seg_collected[:m] < 0).any() or (
            self.seg_collected[:m] > self.segment_size
        ).any():
            raise AssertionError("server collected count out of [0, s]")
        live = int(np.count_nonzero(self.seg_alive[:m]))
        if live != self.live_segments:
            raise AssertionError(
                f"live-segment counter drifted: counted {live}, "
                f"tracked {self.live_segments}"
            )
        dead_with_degree = int(
            np.count_nonzero(~self.seg_alive[:m] & (self.seg_degree[:m] > 0))
        )
        if dead_with_degree:
            raise AssertionError(
                f"{dead_with_degree} dead segments still hold blocks"
            )
