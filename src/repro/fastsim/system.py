"""The fast collection system: batch kernels over struct-of-arrays state.

:class:`FastCollectionSystem` is the abstract-mode counterpart of
:class:`repro.core.system.CollectionSystem` for the vectorized engine.
Each protocol channel is a *kernel* — a method applying ``count`` channel
events over a time span ``[t0, t1]`` in one vectorized pass — and the two
steppers in :mod:`repro.fastsim.engine` drive the kernels either in
tau-leaps (``count ~ Poisson(rate·tau)`` with event times jittered
uniformly inside the step, which is exact conditional on the count) or
one event at a time at exact aggregate-clock times.

Mean-field closure (the documented deviation from the event engine; see
the package docstring): gossip emissions and server pulls draw their
segment from the *network-wide* block composition (a uniform row of the
block table — the degree-proportional rule of the paper's analysis)
rather than from the chosen peer's private buffer, and gossip-target
eligibility reduces to buffer room.  Conservation laws are exact and
checked by :meth:`FastCollectionSystem.consistency_check`.

Metrics ride the event engine's own :class:`MetricsCollector` (it is
passive, so batch increments compose); only delay samples take a
dedicated accumulator so million-peer runs do not materialize one Python
float per completed segment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from repro.chaos.monitors import InvariantViolation
from repro.core.params import (
    MODE_ABSTRACT,
    SELECTION_PROPORTIONAL,
    Parameters,
)
from repro.fastsim.masks import FastAdversaryMasks, FastFaultMasks
from repro.fastsim.state import FastState
from repro.sim.metrics import MetricsCollector, MetricsReport
from repro.sim.rng import SeedSequenceRegistry

#: Consistency-check cadence for the tau stepper (steps) and the exact
#: stepper (events).
CHECK_EVERY_STEPS = 64
CHECK_EVERY_EVENTS = 4096


class DelayAccumulator:
    """Streaming delay statistics: exact mean, log-binned percentiles.

    Raw per-segment delay lists do not scale to million-peer sessions
    (tens of millions of Python floats), so the accumulator keeps the
    exact count/sum plus a fixed logarithmic histogram (40 bins per
    decade over 1e-3..1e3 time units) from which percentiles are
    interpolated.  Histograms from shard runs merge by addition, which is
    what makes the sharded percentile deterministic and order-blind.
    """

    #: Bin edges shared by every accumulator (merge compatibility).
    EDGES = np.geomspace(1e-3, 1e3, 241)

    def __init__(self) -> None:
        #: bin 0 is underflow (< EDGES[0]); bin -1 overflow (>= EDGES[-1]).
        self.counts = np.zeros(len(self.EDGES) + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0

    def add(self, delays: np.ndarray) -> None:
        """Fold a batch of non-negative delay samples in."""
        if len(delays) == 0:
            return
        self.count += len(delays)
        self.total += float(delays.sum())
        self.counts += np.bincount(
            np.searchsorted(self.EDGES, delays, side="right"),
            minlength=len(self.counts),
        )

    def merge_counts(self, counts: List[int], count: int, total: float) -> None:
        """Fold another accumulator's serialized state in (shard merge)."""
        self.counts += np.asarray(counts, dtype=np.int64)
        self.count += count
        self.total += total

    def mean(self) -> Optional[float]:
        """Exact mean delay, or None with no samples."""
        if self.count == 0:
            return None
        return self.total / self.count

    def percentile(self, q: float) -> Optional[float]:
        """Approximate q-th percentile from the histogram (bin-resolution).

        Interpolates log-linearly inside the crossing bin; accurate to the
        ~6% bin width, which is ample for the KS-level fidelity contract.
        """
        if self.count == 0:
            return None
        target = self.count * q / 100.0
        cumulative = np.cumsum(self.counts)
        bin_index = int(np.searchsorted(cumulative, target, side="left"))
        if bin_index <= 0:
            return float(self.EDGES[0])
        if bin_index >= len(self.EDGES):
            return float(self.EDGES[-1])
        lo = self.EDGES[bin_index - 1]
        hi = self.EDGES[bin_index]
        below = cumulative[bin_index - 1]
        inside = self.counts[bin_index]
        fraction = (target - below) / inside if inside else 0.0
        return float(lo * (hi / lo) ** fraction)


class FastCollectionSystem:
    """One abstract-mode collection session on the vectorized engine."""

    def __init__(
        self,
        params: Parameters,
        seed: int = 0,
        stats_stride: int = 4,
    ) -> None:
        if params.mode != MODE_ABSTRACT:
            raise ValueError(
                f"fastsim requires mode={MODE_ABSTRACT!r}, got {params.mode!r}"
            )
        if params.segment_selection != SELECTION_PROPORTIONAL:
            raise ValueError(
                f"fastsim requires segment_selection="
                f"{SELECTION_PROPORTIONAL!r}, got {params.segment_selection!r}"
            )
        if params.pull_policy != "random":
            raise ValueError(
                f"fastsim requires pull_policy='random', "
                f"got {params.pull_policy!r}"
            )
        if params.gossip_latency != 0.0:
            raise ValueError(
                f"fastsim requires gossip_latency == 0, "
                f"got {params.gossip_latency!r}"
            )
        if params.has_defenses:
            raise ValueError(
                "fastsim does not support pull_scoring/advert_discounting"
            )
        if stats_stride < 1:
            raise ValueError(f"stats_stride must be >= 1, got {stats_stride}")
        self.params = params
        self.seed = seed
        self.stats_stride = stats_stride
        self.now = 0.0
        #: total channel events applied (the deterministic work measure the
        #: events/sec benchmarks divide by wall time; never in payloads).
        self.events_applied = 0

        seeds = SeedSequenceRegistry(seed)
        # one numpy substream per channel (counts + within-channel draws)
        self._inj_rng = seeds.numpy("fast:injection")
        self._gossip_rng = seeds.numpy("fast:gossip")
        self._srv_rng = seeds.numpy("fast:server")
        self._ttl_rng = seeds.numpy("fast:ttl")
        self._churn_rng = seeds.numpy("fast:churn")
        self.seeds = seeds

        self.state = FastState(
            params.n_peers,
            params.effective_buffer_capacity,
            params.segment_size,
        )
        self.metrics = MetricsCollector(
            params.n_peers,
            params.arrival_rate,
            params.segment_size,
            params.normalized_capacity,
        )
        self.metrics.set_deletion_rate(params.deletion_rate)
        self.delays = DelayAccumulator()

        # fault/adversary masks: constructed only for non-null plans, on the
        # same-named substreams as the event engine's injectors so the
        # polluter/role slot sets match bit for bit at equal seeds.
        self.fault_masks: Optional[FastFaultMasks] = None
        if params.faults is not None and not params.faults.is_null:
            self.fault_masks = FastFaultMasks(
                params.faults,
                seeds.python("faults"),
                seeds.numpy("fast:faults"),
                params.n_peers,
            )
            self.state.is_fault_polluter = self.fault_masks.polluter_mask()
        self.adversary_masks: Optional[FastAdversaryMasks] = None
        if params.adversary is not None and not params.adversary.is_null:
            self.adversary_masks = FastAdversaryMasks(
                params.adversary,
                seeds.python("adversary"),
                seeds.numpy("fast:adversary"),
                params.n_peers,
            )
            masks = self.adversary_masks
            self.state.is_liar = masks.role_mask(masks.liars)
            self.state.is_freerider = masks.role_mask(masks.freeriders)
            self.state.is_adv_polluter = masks.role_mask(masks.polluters)

        #: outage schedule over the run horizon, materialized by run().
        self.outage_windows: Tuple[Tuple[float, float], ...] = ()

    # -- lifecycle -----------------------------------------------------------

    def run(self, warmup: float, duration: float) -> MetricsReport:
        """Simulate ``warmup + duration`` time units; measure the tail."""
        if warmup < 0 or duration <= 0:
            raise ValueError(
                f"need warmup >= 0 and duration > 0, got "
                f"warmup={warmup!r} duration={duration!r}"
            )
        from repro.fastsim.engine import ExactStepper, TauLeapStepper

        horizon = warmup + duration
        if self.fault_masks is not None:
            self.outage_windows = self.fault_masks.outage_timeline(horizon)
        if self.params.tau > 0.0:
            stepper = TauLeapStepper(self, self.params.tau)
        else:
            stepper = ExactStepper(self)
        stepper.run_until(warmup)
        self.push_averages(self.now, segments=True)
        self.metrics.begin_window(self.now)
        stepper.run_until(horizon)
        self.push_averages(self.now, segments=True)
        self.consistency_check()
        return self.report()

    def report(self) -> MetricsReport:
        """Freeze the measurement window into a MetricsReport.

        The collector produces every field except the delay statistics
        (which live in the streaming accumulator) and goodput (derived
        from the accumulator's completion count).
        """
        base = self.metrics.report(self.now)
        s = self.params.segment_size
        window = base.window
        count = self.delays.count
        mean_segment = self.delays.mean()
        goodput = count * s / window if window > 0 else 0.0
        demand = self.params.n_peers * self.params.arrival_rate
        p50 = self.delays.percentile(50.0)
        p95 = self.delays.percentile(95.0)
        return replace(
            base,
            mean_segment_delay=mean_segment,
            mean_block_delay=(
                mean_segment / s if mean_segment is not None else None
            ),
            p50_block_delay=p50 / s if p50 is not None else None,
            p95_block_delay=p95 / s if p95 is not None else None,
            delay_samples=count,
            goodput=goodput,
            normalized_goodput=goodput / demand if demand else 0.0,
            engine_events_fired=self.events_applied,
        )

    def consistency_check(self) -> None:
        """Array-level invariant monitors (chaos-suite counterparts).

        Checks block conservation (peer side == block table == segment
        side), buffer caps, pollution accounting, collected-count range,
        and that the metrics collector's running block total agrees with
        the arrays.  Raises :class:`InvariantViolation` on any breach.
        """
        # sync the strided averages so the accounting comparisons are
        # point-in-time exact regardless of when the check runs.
        self.push_averages(self.now, segments=True)
        try:
            self.state.check_conservation()
        except AssertionError as error:
            raise InvariantViolation(str(error)) from None
        tracked = self.metrics.total_blocks.value
        actual = float(self.state.n_blocks)
        if tracked != actual:
            raise InvariantViolation(
                f"metrics track {tracked} blocks, arrays hold {actual}"
            )
        saved = float(self.state.saved_segment_count())
        pushed = self.metrics.saved_segments.value
        if pushed != saved:
            raise InvariantViolation(
                f"saved-segment accounting drifted: metrics {pushed}, "
                f"arrays {saved}"
            )

    # -- metric pushes -------------------------------------------------------

    def push_averages(self, now: float, segments: bool) -> None:
        """Advance the time-weighted averages to *now*.

        The O(N) peer scans run every push; the O(M) segment populations
        only when *segments* is set (the steppers stride them).
        """
        state = self.state
        metrics = self.metrics
        metrics.total_blocks.update(now, float(state.n_blocks))
        metrics.empty_peers.update(now, float(state.empty_peer_count()))
        if segments:
            metrics.decodable_segments.update(
                now, float(state.decodable_segment_count())
            )
            metrics.saved_segments.update(
                now, float(state.saved_segment_count())
            )

    def begin_outage(self, at: float) -> None:
        """Servers go dark at *at* (outage accounting only)."""
        self.metrics.servers_down.update(at, 1.0)

    def end_outage(self, at: float, downtime: float) -> int:
        """Servers recover at *at*; returns the catch-up pull count."""
        self.metrics.servers_down.update(at, 0.0)
        plan = self.params.faults
        if plan is None:
            return 0
        per_server = min(
            int(downtime * self.params.per_server_rate), plan.catchup_limit
        )
        return per_server * self.params.n_servers

    # -- channel kernels -----------------------------------------------------
    #
    # Every kernel applies `count` channel events over [t0, t1].  The
    # steppers guarantee t0 == t1 == now in exact mode (count == 1) and
    # jitter event times uniformly otherwise.

    def _jitter(self, count: int, t0: float, t1: float, rng: np.random.Generator) -> np.ndarray:
        if t1 > t0:
            return rng.uniform(t0, t1, size=count)
        return np.full(count, t1)

    def kernel_inject(self, count: int, t0: float, t1: float) -> None:
        """Segment injections: fresh segments of s original blocks."""
        if count == 0:
            return
        state = self.state
        metrics = self.metrics
        in_window = metrics.in_window
        s = self.params.segment_size
        slots = self._inj_rng.integers(0, state.n_peers, size=count)
        sources, per_slot = np.unique(slots, return_counts=True)
        room = (state.capacity - state.peer_blocks[sources]) // s
        allowed = np.minimum(per_slot, np.maximum(room, 0))
        total = int(allowed.sum())
        blocked = count - total
        if blocked:
            metrics.blocked_injections.increment(in_window, blocked)
        if total == 0:
            return
        src = np.repeat(sources, allowed)
        times = self._jitter(total, t0, t1, self._inj_rng)
        segment_ids = state.new_segments(times)
        state.append_blocks(
            np.repeat(src, s),
            np.repeat(segment_ids, s),
            np.zeros(total * s, dtype=bool),
        )
        metrics.injected_segments.increment(in_window, total)
        metrics.injected_blocks.increment(in_window, total * s)

    def kernel_gossip(self, count: int, t0: float, t1: float) -> None:
        """Gossip ticks: emission, target search, delivery."""
        if count == 0:
            return
        state = self.state
        metrics = self.metrics
        in_window = metrics.in_window
        n = state.n_peers
        capacity = state.capacity
        senders = self._gossip_rng.integers(0, n, size=count)
        senders = senders[state.peer_blocks[senders] > 0]
        if self.adversary_masks is not None and len(senders):
            suppressed = (state.is_freerider | state.is_sybil)[senders]
            lost = int(suppressed.sum())
            if lost:
                metrics.gossip_suppressed.increment(in_window, lost)
                senders = senders[~suppressed]
        emitting = len(senders)
        if emitting == 0 or state.n_blocks == 0:
            return
        rows = self._gossip_rng.integers(0, state.n_blocks, size=emitting)
        segments = state.block_seg[rows].copy()
        polluted = state.block_polluted[rows].copy()
        if self.adversary_masks is not None and self.adversary_masks.targets_low_degree:
            strategic = state.is_adv_polluter[senders]
            if strategic.any():
                m = state.n_segments
                live = np.flatnonzero(state.seg_alive[:m])
                if len(live):
                    weakest = live[np.argmin(state.seg_degree[live])]
                    segments[strategic] = weakest
                    polluted[strategic] = False  # pollution re-applied by role
        if self.fault_masks is not None:
            polluted |= state.is_fault_polluter[senders]
        if self.adversary_masks is not None:
            polluted |= state.is_adv_polluter[senders]

        # Target search: the event engine rejection-samples up to
        # `gossip_target_tries` uniform candidates with buffer room; the
        # batch form thins each tick by the all-tries-full probability.
        full = state.full_peer_count()
        if full >= n:
            metrics.gossip_no_target.increment(in_window, emitting)
            return
        if full:
            fail = (full / n) ** self.params.gossip_target_tries
            if fail > 0.0:
                no_target = self._gossip_rng.random(emitting) < fail
                missed = int(no_target.sum())
                if missed:
                    metrics.gossip_no_target.increment(in_window, missed)
                    keep = ~no_target
                    segments = segments[keep]
                    polluted = polluted[keep]
        transfers = len(segments)
        if transfers == 0:
            return
        non_full = np.flatnonzero(state.peer_blocks[:n] < capacity)
        receivers = non_full[
            self._gossip_rng.integers(0, len(non_full), size=transfers)
        ]
        # Within-batch capacity: a receiver accepts at most its free space;
        # the excess would have failed the target search.
        order = np.argsort(receivers, kind="stable")
        sorted_receivers = receivers[order]
        uniq, starts, per_receiver = np.unique(
            sorted_receivers, return_index=True, return_counts=True
        )
        position = np.arange(transfers) - np.repeat(starts, per_receiver)
        free = capacity - state.peer_blocks[sorted_receivers]
        fits = position < free
        overflow = transfers - int(fits.sum())
        if overflow:
            metrics.gossip_no_target.increment(in_window, overflow)
        selected = order[fits]
        delivered = len(selected)
        if delivered == 0:
            return
        metrics.gossip_transfers.increment(in_window, delivered)
        receivers = receivers[selected]
        segments = segments[selected]
        polluted = polluted[selected]
        if self.fault_masks is not None:
            loss = self.fault_masks.gossip_loss_mask(delivered)
            if loss is not None:
                dropped = int(loss.sum())
                if dropped:
                    metrics.transfers_dropped.increment(in_window, dropped)
                    keep = ~loss
                    receivers = receivers[keep]
                    segments = segments[keep]
                    polluted = polluted[keep]
        state.append_blocks(receivers, segments, polluted)

    def kernel_pull(self, count: int, t0: float, t1: float) -> None:
        """Server pull trials: capture, selection, detection, collection."""
        if count == 0:
            return
        state = self.state
        metrics = self.metrics
        in_window = metrics.in_window
        s = self.params.segment_size
        metrics.pulls.increment(in_window, count)
        if state.n_blocks == 0:
            metrics.idle_pulls.increment(in_window, count)
            return
        remaining = count
        if self.adversary_masks is not None:
            attractor_mask = state.is_liar | state.is_sybil
            attractor_count = int(np.count_nonzero(attractor_mask))
            captured = self.adversary_masks.capture_mask(count, attractor_count)
            if captured is not None:
                n_captured = int(captured.sum())
                if n_captured:
                    metrics.pulls_captured.increment(in_window, n_captured)
                    slots = self.adversary_masks.capture_attractors(
                        n_captured, np.flatnonzero(attractor_mask)
                    )
                    empty = int(np.count_nonzero(state.peer_blocks[slots] == 0))
                    if empty:
                        metrics.idle_pulls.increment(in_window, empty)
                    junk = n_captured - empty
                    if junk:
                        # bait-and-switch: the attractor serves junk, the
                        # server detects and discards it (abstract tag).
                        metrics.junk_blocks_served.increment(in_window, junk)
                        metrics.blocks_rejected_polluted.increment(
                            in_window, junk
                        )
                    remaining = count - n_captured
        if remaining <= 0:
            return

        budget = 1
        fault_plan = self.params.faults
        if (
            self.fault_masks is not None
            and self.fault_masks.polluters
            and fault_plan is not None
        ):
            budget += fault_plan.pollution_repull_budget
        trials = remaining
        for attempt in range(budget):
            if trials <= 0:
                break
            if state.n_blocks == 0:
                metrics.idle_pulls.increment(in_window, trials)
                break
            rows = self._srv_rng.integers(0, state.n_blocks, size=trials)
            segments = state.block_seg[rows]
            owners = state.block_peer[rows]
            block_polluted = state.block_polluted[rows]
            complete = state.seg_collected[segments] >= s
            n_redundant = int(complete.sum())
            if n_redundant:
                metrics.redundant_pulls.increment(in_window, n_redundant)
            active = ~complete
            segments = segments[active]
            owners = owners[active]
            block_polluted = block_polluted[active]
            if len(segments) == 0:
                break
            if self.fault_masks is not None:
                loss = self.fault_masks.pull_loss_mask(len(segments))
                if loss is not None:
                    dropped = int(loss.sum())
                    if dropped:
                        metrics.transfers_dropped.increment(in_window, dropped)
                        keep = ~loss
                        segments = segments[keep]
                        owners = owners[keep]
                        block_polluted = block_polluted[keep]
            if len(segments) == 0:
                break
            junk = np.zeros(len(segments), dtype=bool)
            if self.adversary_masks is not None:
                junk = (
                    state.is_liar | state.is_adv_polluter | state.is_sybil
                )[owners]
            polluted = junk.copy()
            if self.fault_masks is not None:
                polluted |= state.is_fault_polluter[owners] | block_polluted
            n_junk = int(junk.sum())
            if n_junk:
                metrics.junk_blocks_served.increment(in_window, n_junk)
            n_polluted = int(polluted.sum())
            if n_polluted:
                metrics.blocks_rejected_polluted.increment(
                    in_window, n_polluted
                )
            clean_segments = segments[~polluted]
            if len(clean_segments):
                uniq, per_segment = np.unique(
                    clean_segments, return_counts=True
                )
                room = s - state.seg_collected[uniq]
                innovative = np.minimum(per_segment, room)
                extra = int((per_segment - innovative).sum())
                state.seg_collected[uniq] += innovative
                n_useful = int(innovative.sum())
                if n_useful:
                    metrics.useful_pulls.increment(in_window, n_useful)
                if extra:
                    metrics.redundant_pulls.increment(in_window, extra)
                completed = uniq[
                    (innovative > 0) & (state.seg_collected[uniq] >= s)
                ]
                if len(completed):
                    self._record_completions(completed, t0, t1, in_window)
            # only polluted draws re-pull (budget > 1 iff fault polluters)
            trials = n_polluted if attempt + 1 < budget else 0

    def _record_completions(
        self, segment_ids: np.ndarray, t0: float, t1: float, in_window: bool
    ) -> None:
        """Account newly completed segments at jittered completion times."""
        times = self._jitter(len(segment_ids), t0, t1, self._srv_rng)
        self.metrics.segments_completed.increment(in_window, len(segment_ids))
        if in_window:
            delays = np.maximum(
                times - self.state.seg_injected_at[segment_ids], 0.0
            )
            self.delays.add(delays)

    def kernel_ttl(self, count: int, t0: float, t1: float) -> None:
        """TTL expiries: *count* uniform live blocks age out.

        Within one tau step the victims are sampled with replacement and
        deduplicated (collisions are an O(count²/blocks) tau-bias, gone in
        exact mode where count == 1).
        """
        if count == 0 or self.state.n_blocks == 0:
            return
        state = self.state
        rows = np.unique(
            self._ttl_rng.integers(0, state.n_blocks, size=count)
        )
        _, _, _, extinct = state.remove_block_rows(rows)
        in_window = self.metrics.in_window
        self.metrics.blocks_expired.increment(in_window, len(rows))
        self._account_extinctions(extinct, in_window)

    def _account_extinctions(
        self, extinct: np.ndarray, in_window: bool
    ) -> None:
        if len(extinct) == 0:
            return
        s = self.params.segment_size
        lost = int(np.count_nonzero(self.state.seg_collected[extinct] < s))
        if lost:
            self.metrics.segments_lost.increment(in_window, lost)

    def kernel_churn(self, count: int, t0: float, t1: float) -> None:
        """Lifetime expirations: *count* uniform slots are replaced."""
        if count == 0:
            return
        slots = np.unique(
            self._churn_rng.integers(0, self.state.n_peers, size=count)
        )
        self.kill_slots(slots, burst=False)

    def kill_slots(self, slots: np.ndarray, burst: bool) -> None:
        """Replace the peers in *slots* with fresh empty-buffer identities.

        The replacement model of Sec. 4: buffered blocks are destroyed
        (the loss mechanism coding defends against) and sybil marks
        revert — a converted identity lives only until its slot churns.
        """
        state = self.state
        metrics = self.metrics
        in_window = metrics.in_window
        rows = state.rows_of_peers(slots)
        _, _, _, extinct = state.remove_block_rows(rows)
        if len(rows):
            metrics.blocks_lost_to_churn.increment(in_window, len(rows))
        metrics.departures.increment(in_window, len(slots))
        if burst:
            metrics.burst_departures.increment(in_window, len(slots))
        self._account_extinctions(extinct, in_window)
        state.is_sybil[slots] = False

    def kernel_fault_burst(self) -> None:
        """One correlated mass-departure event (FaultPlan burst channel)."""
        assert self.fault_masks is not None
        slots = np.asarray(self.fault_masks.burst_slots(), dtype=np.int64)
        self.kill_slots(slots, burst=True)

    def kernel_sybil_burst(self) -> None:
        """One sybil burst: force-churn slots, mark replacements sybil."""
        assert self.adversary_masks is not None
        slots = np.asarray(self.adversary_masks.sybil_slots(), dtype=np.int64)
        self.kill_slots(slots, burst=False)
        self.state.is_sybil[slots] = True
        self.metrics.sybil_conversions.increment(
            self.metrics.in_window, len(slots)
        )

    # -- channel rates -------------------------------------------------------

    def channel_rates(self) -> "ChannelRates":
        """Constant total rates of the aggregate Poisson channels."""
        p = self.params
        churn = 0.0
        if p.churn_enabled:
            assert p.mean_lifetime is not None  # churn_enabled guarantees
            churn = p.n_peers / p.mean_lifetime
        burst = 0.0
        sybil = 0.0
        if p.faults is not None:
            burst = p.faults.burst_rate
        if p.adversary is not None:
            sybil = p.adversary.sybil_rate
        return ChannelRates(
            injection=p.n_peers * p.segment_arrival_rate,
            gossip=p.n_peers * p.gossip_rate,
            pull=p.aggregate_capacity,
            ttl_per_block=p.deletion_rate,
            churn=churn,
            burst=burst,
            sybil=sybil,
        )


class ChannelRates:
    """Total event rates of the aggregate channels (TTL is per-block)."""

    __slots__ = (
        "injection",
        "gossip",
        "pull",
        "ttl_per_block",
        "churn",
        "burst",
        "sybil",
    )

    def __init__(
        self,
        injection: float,
        gossip: float,
        pull: float,
        ttl_per_block: float,
        churn: float,
        burst: float,
        sybil: float,
    ) -> None:
        self.injection = injection
        self.gossip = gossip
        self.pull = pull
        self.ttl_per_block = ttl_per_block
        self.churn = churn
        self.burst = burst
        self.sybil = sybil

    def __repr__(self) -> str:
        return (
            f"ChannelRates(injection={self.injection:g}, "
            f"gossip={self.gossip:g}, pull={self.pull:g}, "
            f"ttl_per_block={self.ttl_per_block:g}, churn={self.churn:g}, "
            f"burst={self.burst:g}, sybil={self.sybil:g})"
        )
