"""The two fast-engine steppers: tau-leaping and exact aggregate clocks.

Both steppers drive the *same* batch kernels on
:class:`~repro.fastsim.system.FastCollectionSystem`; they differ only in
how channel event counts and times are produced:

- :class:`TauLeapStepper` advances in fixed steps of ``tau`` simulated
  time units.  Each channel fires ``Poisson(rate·tau)`` times per step
  (rates are constant except TTL, which is re-read per step from the
  current block population — an O(tau) rate lag, the method's only bias
  alongside within-step ordering).  Event times inside a step are
  jittered U(t0, t1), which is exact for a Poisson process conditional
  on the count.
- :class:`ExactStepper` is a Gillespie-style aggregate-clock simulation
  on the event engine's :class:`~repro.sim.engine.Simulator`: one
  :class:`~repro.sim.engine.PoissonProcess` per channel at the channel's
  *total* rate, firing the kernels with ``count == 1`` at exact event
  times.  The fixed-rate channels ride the non-cancellable bulk path
  (``gap_batch`` pre-draw + bulk schedule via ``next_times``); the TTL
  clock is re-rated to γ·K after every event by memorylessness, and the
  pull clock pauses across server outages.

Server outages are shared logic: the system materializes the outage
timeline up front, the steppers replay its boundaries (exact
``servers_down`` integration and catch-up bursts at recovery instants).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.fastsim.system import (
    CHECK_EVERY_EVENTS,
    CHECK_EVERY_STEPS,
    FastCollectionSystem,
)
from repro.sim.engine import PoissonProcess, Simulator

#: Pre-drawn gaps per aggregate clock on the exact path.  Each clock owns
#: an exclusive named substream, which is what makes batching sound.
_GAP_BATCH = 64

#: (time, is_recovery, downtime) — a flattened outage boundary.
_Boundary = Tuple[float, bool, float]


def _boundaries(
    windows: Tuple[Tuple[float, float], ...],
) -> List[_Boundary]:
    events: List[_Boundary] = []
    for start, end in windows:
        events.append((start, False, 0.0))
        events.append((end, True, end - start))
    events.sort(key=lambda b: b[0])
    return events


def _poisson(rng: np.random.Generator, mean: float) -> int:
    """One Poisson count; a disabled channel must not touch its RNG."""
    if mean > 0.0:
        return int(rng.poisson(mean))
    return 0


class TauLeapStepper:
    """Fixed-step tau-leaping driver over the batch kernels."""

    def __init__(self, system: FastCollectionSystem, tau: float) -> None:
        if tau <= 0.0:
            raise ValueError(f"tau must be > 0 for tau-leaping, got {tau!r}")
        self.system = system
        self.tau = tau
        self._steps = 0
        self._boundaries = _boundaries(system.outage_windows)
        self._next_boundary = 0
        self._down = False

    def run_until(self, end_time: float) -> None:
        system = self.system
        state = system.state
        rates = system.channel_rates()
        gamma = rates.ttl_per_block
        while system.now < end_time:
            t0 = system.now
            t1 = min(t0 + self.tau, end_time)
            dt = t1 - t0
            up_dt = self._advance_outages(t0, t1)
            applied = 0
            count = _poisson(system._inj_rng, rates.injection * dt)
            system.kernel_inject(count, t0, t1)
            applied += count
            count = _poisson(system._gossip_rng, rates.gossip * dt)
            system.kernel_gossip(count, t0, t1)
            applied += count
            count = _poisson(system._srv_rng, rates.pull * up_dt)
            system.kernel_pull(count, t0, t1)
            applied += count
            count = _poisson(system._ttl_rng, gamma * state.n_blocks * dt)
            system.kernel_ttl(count, t0, t1)
            applied += count
            count = _poisson(system._churn_rng, rates.churn * dt)
            system.kernel_churn(count, t0, t1)
            applied += count
            if system.fault_masks is not None and rates.burst > 0.0:
                bursts = _poisson(
                    system.fault_masks._np_rng, rates.burst * dt
                )
                for _ in range(bursts):
                    system.kernel_fault_burst()
                applied += bursts
            if system.adversary_masks is not None and rates.sybil > 0.0:
                bursts = _poisson(
                    system.adversary_masks._np_rng, rates.sybil * dt
                )
                for _ in range(bursts):
                    system.kernel_sybil_burst()
                applied += bursts
            system.events_applied += applied
            system.now = t1
            self._steps += 1
            system.push_averages(
                t1, segments=self._steps % system.stats_stride == 0
            )
            if state.should_compact():
                state.compact_segments()
            if self._steps % CHECK_EVERY_STEPS == 0:
                system.consistency_check()

    def _advance_outages(self, t0: float, t1: float) -> float:
        """Replay outage boundaries inside ``(t0, t1]``; return the up time."""
        system = self.system
        up = 0.0
        cursor = t0
        while (
            self._next_boundary < len(self._boundaries)
            and self._boundaries[self._next_boundary][0] <= t1
        ):
            at, is_recovery, downtime = self._boundaries[self._next_boundary]
            span = max(at - cursor, 0.0)
            if not self._down:
                up += span
            cursor = max(cursor, at)
            if is_recovery:
                catchup = system.end_outage(at, downtime)
                self._down = False
                if catchup:
                    system.kernel_pull(catchup, at, at)
                    system.events_applied += catchup
            else:
                system.begin_outage(at)
                self._down = True
            self._next_boundary += 1
        if not self._down:
            up += t1 - cursor
        return up


class ExactStepper:
    """Aggregate-clock exact driver on the event engine's simulator."""

    def __init__(self, system: FastCollectionSystem) -> None:
        self.system = system
        self.sim = Simulator()
        rates = system.channel_rates()
        gamma = rates.ttl_per_block
        self._gamma = gamma
        self._ttl_rate = 0.0
        self._events = 0
        seeds = system.seeds

        def clock(
            name: str,
            rate: float,
            kernel: Callable[[int, float, float], None],
            cancellable: bool = False,
        ) -> Optional[PoissonProcess]:
            if rate <= 0.0:
                return None
            return PoissonProcess(
                self.sim,
                seeds.python(f"fast:clock:{name}"),
                rate,
                self._fire(kernel),
                cancellable=cancellable,
                gap_batch=_GAP_BATCH,
            )

        clock("injection", rates.injection, system.kernel_inject)
        clock("gossip", rates.gossip, system.kernel_gossip)
        # pausable for outages, hence cancellable (set_rate/stop/start).
        self._pull_clock = clock(
            "pull", rates.pull, system.kernel_pull, cancellable=True
        )
        clock("churn", rates.churn, system.kernel_churn)
        if system.fault_masks is not None and rates.burst > 0.0:
            PoissonProcess(
                self.sim,
                seeds.python("fast:clock:burst"),
                rates.burst,
                self._fire_burst(system.kernel_fault_burst),
                cancellable=False,
            )
        if system.adversary_masks is not None and rates.sybil > 0.0:
            PoissonProcess(
                self.sim,
                seeds.python("fast:clock:sybil"),
                rates.sybil,
                self._fire_burst(system.kernel_sybil_burst),
                cancellable=False,
            )
        # TTL: rate tracks γ·K, so it must stay re-ratable.
        self._ttl_clock = PoissonProcess(
            self.sim,
            seeds.python("fast:clock:ttl"),
            0.0,
            self._fire(system.kernel_ttl),
            cancellable=True,
        )
        for start, end in system.outage_windows:
            self.sim.schedule_call_at(start, self._make_outage_begin(start))
            self.sim.schedule_call_at(
                end, self._make_outage_end(end, end - start)
            )

    def _fire(
        self, kernel: Callable[[int, float, float], None]
    ) -> Callable[[], None]:
        def action() -> None:
            now = self.sim.now
            self.system.now = now
            kernel(1, now, now)
            self.system.events_applied += 1
            self._after_event(now)

        return action

    def _fire_burst(self, kernel: Callable[[], None]) -> Callable[[], None]:
        def action() -> None:
            now = self.sim.now
            self.system.now = now
            kernel()
            self.system.events_applied += 1
            self._after_event(now)

        return action

    def _after_event(self, now: float) -> None:
        system = self.system
        state = system.state
        # memorylessness: re-rating the TTL clock to γ·K after a population
        # change is exact; unchanged K skips the re-draw.
        ttl_rate = self._gamma * state.n_blocks
        if ttl_rate != self._ttl_rate:
            self._ttl_clock.set_rate(ttl_rate)
            self._ttl_rate = ttl_rate
        system.push_averages(now, segments=True)
        if state.should_compact():
            state.compact_segments()
        self._events += 1
        if self._events % CHECK_EVERY_EVENTS == 0:
            system.consistency_check()

    def _make_outage_begin(self, at: float) -> Callable[[], None]:
        def action() -> None:
            self.system.now = at
            self.system.begin_outage(at)
            if self._pull_clock is not None:
                self._pull_clock.stop()

        return action

    def _make_outage_end(
        self, at: float, downtime: float
    ) -> Callable[[], None]:
        def action() -> None:
            self.system.now = at
            catchup = self.system.end_outage(at, downtime)
            if self._pull_clock is not None:
                self._pull_clock.start()
            if catchup:
                self.system.kernel_pull(catchup, at, at)
                self.system.events_applied += catchup
                self._after_event(at)

        return action

    def run_until(self, end_time: float) -> None:
        self.sim.run_until(end_time)
        self.system.now = end_time
