"""``repro chaos`` subcommands: run campaigns, replay minimal reproducers.

::

    repro chaos run --budget 200 --workers 4 --seed 7
    repro chaos run --budget 40 --mutant buffer-cap-off-by-one
    repro chaos run --budget 200 --resume chaos-campaign-001
    repro chaos replay runs/chaos-campaign-002/repro-00013.json

``run`` fans the campaign over the parallel runner's worker pool and
journals every trial, so an interrupted campaign resumes exactly like any
other sweep (exit code 3 = checkpointed).  On violations it shrinks the
first few failures in-process, writes one self-contained ``repro-*.json``
per violating trial into the run directory, and exits 1.  ``replay``
re-executes a reproducer and exits 0 iff the recorded monitor fires again.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.chaos.campaign import campaign_options, outcomes_from_payloads
from repro.chaos.harness import TrialOutcome, run_trial
from repro.chaos.mutants import mutant_names
from repro.chaos.shrink import load_repro, shrink_trial, write_repro
from repro.chaos.space import CHAOS_CAMPAIGN, TrialConfig

#: Exit code when a campaign session checkpoints before all trials ran.
EXIT_CHECKPOINTED = 3


def build_chaos_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro chaos`` subcommand tree."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Randomized fault-space search with runtime invariant monitors "
            "and automatic minimal-reproducer shrinking (docs/CHAOS.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a seeded chaos campaign on the worker pool"
    )
    run.add_argument(
        "--budget", type=int, default=50, metavar="N",
        help="number of trials in the campaign (default 50)",
    )
    run.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="campaign seed; trial i is a pure function of (S, i) "
        "(default 0)",
    )
    run.add_argument(
        "--workers", type=int, default=1, metavar="K",
        help="worker processes (default 1)",
    )
    run.add_argument(
        "--mutant", default=None, metavar="NAME",
        help=(
            "apply a seeded defect to every trial (positive control); "
            f"one of: {', '.join(mutant_names())}"
        ),
    )
    run.add_argument(
        "--every", type=int, default=None, metavar="K",
        help="override the sampled monitor cadence (events per sweep)",
    )
    run.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume an interrupted campaign from its journal",
    )
    run.add_argument(
        "--run-id", default=None, metavar="ID",
        help="name the run directory (default: auto 'chaos-campaign-NNN')",
    )
    run.add_argument(
        "--runs-dir", type=Path, default=Path("runs"), metavar="DIR",
        help="parent directory for run journals (default: runs/)",
    )
    run.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help="checkpoint after N trials complete this session",
    )
    run.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry any trial exceeding this wall-clock budget",
    )
    run.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-executions allowed per trial before the run fails "
        "(default 2)",
    )
    run.add_argument(
        "--shrink-probes", type=int, default=48, metavar="N",
        help="probe-trial budget per shrunk violation (default 48)",
    )
    run.add_argument(
        "--max-shrink", type=int, default=3, metavar="N",
        help=(
            "shrink at most N violating trials (the rest get raw, "
            "unshrunk reproducers; default 3)"
        ),
    )
    run.add_argument(
        "--no-progress", action="store_true",
        help="suppress the live progress line",
    )

    replay = sub.add_parser(
        "replay", help="replay a repro.json and check the violation recurs"
    )
    replay.add_argument(
        "repro", type=Path, metavar="REPRO_JSON",
        help="a repro-*.json written by 'repro chaos run'",
    )
    return parser


def _chaos_run(args: argparse.Namespace) -> int:
    from repro.runner import JournalError, RunJournal, RunSpec, execute_run
    from repro.experiments.base import QUALITY_FAST, budget_for

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2

    try:
        if args.resume is not None:
            journal = RunJournal.load(args.runs_dir / args.resume)
            spec = RunSpec.from_dict(journal.manifest()["spec"])
            if spec.experiment != CHAOS_CAMPAIGN:
                print(
                    f"error: run {args.resume} is a {spec.experiment!r} "
                    f"sweep, not a chaos campaign",
                    file=sys.stderr,
                )
                return 2
        else:
            options = campaign_options(
                budget=args.budget,
                seed=args.seed,
                mutant=args.mutant,
                every=args.every,
            )
            spec = RunSpec.create(
                CHAOS_CAMPAIGN, QUALITY_FAST, budget_for(QUALITY_FAST), options
            )
            spec.build_plan()  # surface bad --budget/--mutant before journaling
        outcome = execute_run(
            spec,
            workers=args.workers,
            runs_dir=args.runs_dir,
            run_id=args.run_id,
            resume=args.resume,
            task_timeout=args.task_timeout,
            retries=args.retries,
            stop_after=args.stop_after,
            progress=not args.no_progress,
        )
    except (JournalError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if not outcome.complete:
        print(
            f"checkpointed {outcome.run_id}: "
            f"{outcome.completed_tasks}/{outcome.total_tasks} trials "
            f"journaled in {outcome.run_dir}; continue with "
            f"'repro chaos run --resume {outcome.run_id}'",
            file=sys.stderr,
        )
        return EXIT_CHECKPOINTED

    journal = RunJournal.load(outcome.run_dir)
    outcomes = outcomes_from_payloads(journal.completed_payloads())
    violations = [o for o in outcomes if not o.ok]
    total_events = sum(o.events for o in outcomes)
    total_sweeps = sum(o.checks_run for o in outcomes)
    print(
        f"campaign {outcome.run_id}: {len(outcomes)} trials, "
        f"{total_events} events, {total_sweeps} monitor sweeps, "
        f"{len(violations)} violation(s)"
    )
    if not violations:
        return 0

    for index, violated in enumerate(violations):
        print(f"  {violated.describe()}")
        config = TrialConfig.from_json(violated.config)
        shrink = None
        if index < args.max_shrink and violated.monitor is not None:
            shrink = shrink_trial(
                config, violated.monitor, max_probes=args.shrink_probes
            )
            minimized = shrink.minimized_config()
            print(
                f"    shrunk in {shrink.probes} probes "
                f"({shrink.reductions} reductions): {minimized.describe()}"
            )
        path = write_repro(
            outcome.run_dir / f"repro-{violated.trial_id:05d}.json",
            violated,
            shrink=shrink,
            campaign_seed=int(spec.options.get("seed", 0)),
        )
        print(f"    wrote {path}")
    return 1


def _chaos_replay(args: argparse.Namespace) -> int:
    try:
        config, expected_monitor, payload = load_repro(args.repro)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"replaying {args.repro}: {config.describe()}")
    outcome: TrialOutcome = run_trial(config)
    if not outcome.ok and outcome.monitor == expected_monitor:
        print(f"reproduced: [{outcome.monitor}] {outcome.message}")
        return 0
    if outcome.ok:
        print(
            f"NOT reproduced: trial passed "
            f"({outcome.events} events, {outcome.checks_run} sweeps); "
            f"expected [{expected_monitor}] "
            f"{payload['violation']['message']}",
            file=sys.stderr,
        )
    else:
        print(
            f"different violation: got [{outcome.monitor}] "
            f"{outcome.message}, expected [{expected_monitor}]",
            file=sys.stderr,
        )
    return 1


def chaos_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro chaos ...``; returns a process exit code."""
    args = build_chaos_parser().parse_args(argv)
    if args.command == "run":
        return _chaos_run(args)
    return _chaos_replay(args)
