"""Chaos campaigns as runner task grids: fan trials over the worker pool.

A campaign of N trials is exactly the shape :mod:`repro.runner` already
executes: a deterministic grid of independent cells, each a pure function
of ``(campaign_seed, trial_id)``, journaled as it completes so ``--resume``
picks up a killed campaign where it stopped.  :func:`build_chaos_plan` is
the plan builder the runner's spec routing dispatches to for experiment
names under the ``chaos-`` prefix; each task samples its own
:class:`~repro.chaos.space.TrialConfig` *inside the worker* (sampling is
cheap and seed-pure, so no config needs to cross the pipe) and returns the
:class:`~repro.chaos.harness.TrialOutcome` as its payload.

The merged :class:`~repro.experiments.base.SeriesResult` gives the
pass/fail series over the trial axis; the CLI re-reads the journal's
payloads afterwards for the full violation details it shrinks and writes
``repro-*.json`` files from.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional

from repro.chaos.harness import TrialOutcome, run_trial
from repro.chaos.mutants import MUTANTS, mutant_names
from repro.chaos.space import CHAOS_CAMPAIGN, sample_trial
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    SeriesResult,
    SimBudget,
    SimTask,
)


def campaign_options(
    budget: int,
    seed: int,
    mutant: Optional[str] = None,
    every: Optional[int] = None,
) -> Dict[str, Any]:
    """JSON-clean options mapping for a chaos campaign spec."""
    options: Dict[str, Any] = {"budget": int(budget), "seed": int(seed)}
    if mutant is not None:
        options["mutant"] = str(mutant)
    if every is not None:
        options["every"] = int(every)
    return options


def build_chaos_plan(
    name: str, budget: SimBudget, options: Mapping[str, Any]
) -> ExperimentPlan:
    """Build the task grid of one chaos campaign.

    ``options``: ``budget`` (trial count), ``seed`` (campaign seed),
    optional ``mutant`` (seeded defect applied to every trial) and
    ``every`` (monitor cadence override).  The :class:`SimBudget` argument
    is part of the builder signature contract but unused — chaos trials
    size themselves from the sampled plan-space, not the quality presets.
    """
    del budget  # trials carry their own horizons and populations
    if name != CHAOS_CAMPAIGN:
        raise ValueError(
            f"unknown chaos experiment {name!r} (only {CHAOS_CAMPAIGN!r} exists)"
        )
    n_trials = int(options.get("budget", 50))
    if n_trials < 1:
        raise ValueError(f"campaign budget must be >= 1 trial, got {n_trials}")
    seed = int(options.get("seed", 0))
    raw_mutant = options.get("mutant")
    mutant = str(raw_mutant) if raw_mutant else None
    if mutant is not None and mutant not in MUTANTS:
        raise ValueError(
            f"unknown mutant {mutant!r}; available: {', '.join(mutant_names())}"
        )
    raw_every = options.get("every")
    every = int(raw_every) if raw_every is not None else None

    def make_task(trial_id: int) -> SimTask:
        def thunk() -> Payload:
            config = sample_trial(seed, trial_id, mutant=mutant)
            if every is not None:
                config = replace(config, every=every)
            return run_trial(config).to_json()

        return SimTask(task_id=f"trial={trial_id:05d}", thunk=thunk)

    tasks: List[SimTask] = [make_task(i) for i in range(n_trials)]

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name=CHAOS_CAMPAIGN,
            title=(
                f"chaos campaign: {n_trials} trials, seed={seed}"
                + (f", mutant={mutant}" if mutant else "")
            ),
            x_name="trial",
            x_values=[float(i) for i in range(n_trials)],
        )
        ok: List[Optional[float]] = []
        events: List[Optional[float]] = []
        sweeps: List[Optional[float]] = []
        violations = 0
        for trial_id in range(n_trials):
            outcome = TrialOutcome.from_json(payloads[f"trial={trial_id:05d}"])
            ok.append(1.0 if outcome.ok else 0.0)
            events.append(float(outcome.events))
            sweeps.append(float(outcome.checks_run))
            if not outcome.ok:
                violations += 1
                result.add_note(
                    f"trial {trial_id}: [{outcome.monitor}] {outcome.message}"
                )
        result.add_series("ok", ok)
        result.add_series("events", events)
        result.add_series("checks_run", sweeps)
        result.add_note(
            f"{violations}/{n_trials} trials violated an invariant"
        )
        return result

    return ExperimentPlan(CHAOS_CAMPAIGN, tasks, merge)


def outcomes_from_payloads(
    payloads: Mapping[str, Payload]
) -> List[TrialOutcome]:
    """Decode journaled campaign payloads, ordered by trial id."""
    return [
        TrialOutcome.from_json(payloads[task_id])
        for task_id in sorted(payloads)
    ]
