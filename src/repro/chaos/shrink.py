"""Delta-debugging shrinker: minimize a failing trial, emit ``repro.json``.

A raw campaign failure composes several fault channels over dozens of
peers and a multi-unit horizon — far more moving parts than the defect
needs.  :func:`shrink_trial` greedily probes structural reductions
(drop a whole fault channel, zero the warmup, halve the horizon, halve the
population, collapse scheduling policy to the paper's defaults) and keeps
any reduction under which the *same monitor* still fires, iterating to a
fixpoint within a bounded probe budget.  This is the ddmin idea
specialized to our config shape: instead of bisecting an opaque input
string, the candidate moves follow the config's semantics, so a few dozen
probes typically strip a failure down to one fault channel and a handful
of peers.

The result ships as a self-contained ``repro.json``: format tag, the
minimized (and original) config, the expected violation, and the exact
command line that replays it.  Replay determinism is inherited from
:func:`repro.chaos.harness.run_trial` being a pure function of the config.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.chaos.harness import TrialOutcome, run_trial
from repro.chaos.space import TrialConfig

#: schema tag written into (and required from) every repro file
REPRO_FORMAT = "repro-chaos-v1"

#: knob groups that switch one fault channel off when removed together
_CHANNEL_GROUPS: Tuple[Tuple[str, ...], ...] = (
    ("gossip_loss_rate",),
    ("pull_loss_rate",),
    ("pollution_fraction", "pollution_repull_budget"),
    ("outage_windows", "outage_rate", "outage_duration", "catchup_limit"),
    ("burst_rate", "burst_fraction"),
    ("process_faults", "process_restart_latency"),
)


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of minimizing one failing trial."""

    #: the failure as the campaign first saw it
    original: Dict[str, Any]
    #: the smallest config still failing with the same monitor
    minimized: Dict[str, Any]
    #: monitor preserved throughout the shrink
    monitor: str
    #: violation message of the minimized config
    message: str
    #: trials executed while probing reductions
    probes: int
    #: accepted reductions (0 = the original was already minimal)
    reductions: int

    def minimized_config(self) -> TrialConfig:
        """The minimized trial, ready to replay."""
        return TrialConfig.from_json(self.minimized)

    def to_json(self) -> Dict[str, Any]:
        """JSON-clean form."""
        return {
            "original": dict(self.original),
            "minimized": dict(self.minimized),
            "monitor": self.monitor,
            "message": self.message,
            "probes": self.probes,
            "reductions": self.reductions,
        }


def _with_plan(config: TrialConfig, plan: Dict[str, Any]) -> TrialConfig:
    return replace(config, plan=plan)


def _with_params(config: TrialConfig, params: Dict[str, Any]) -> TrialConfig:
    return replace(config, params=params)


#: knob groups that switch one adversary strategy off when removed together
_ADVERSARY_GROUPS: Tuple[Tuple[str, ...], ...] = (
    ("liar_fraction", "liar_inflation"),
    ("freerider_fraction",),
    ("polluter_fraction", "polluter_targeting"),
    ("sybil_rate", "sybil_fraction"),
)


def _candidates(config: TrialConfig) -> Iterator[TrialConfig]:
    """Structural reductions of *config*, biggest semantic cuts first."""
    # 1. Drop an entire fault channel.
    for group in _CHANNEL_GROUPS:
        if any(key in config.plan for key in group):
            reduced = {
                key: value
                for key, value in config.plan.items()
                if key not in group
            }
            yield _with_plan(config, reduced)
    # 1b. Dismiss the adversaries — wholesale first, then one strategy at
    # a time (dropping just the liars can leave a valid sybil-only plan).
    if config.adversary:
        yield replace(config, adversary={})
        for group in _ADVERSARY_GROUPS:
            if any(key in config.adversary for key in group):
                reduced = {
                    key: value
                    for key, value in config.adversary.items()
                    if key not in group
                }
                if reduced:
                    yield replace(config, adversary=reduced)
    # 1c. Drop process-fault events one at a time (the whole-channel cut
    # above handles the all-of-them case).
    events = config.plan.get("process_faults") or []
    if len(events) > 1:
        for index in range(len(events)):
            reduced_events = [
                event for j, event in enumerate(events) if j != index
            ]
            yield _with_plan(
                config, {**config.plan, "process_faults": reduced_events}
            )
    # 2. Collapse protocol knobs back to the paper's defaults.
    params = config.params
    for defense in ("pull_scoring", "advert_discounting"):
        if params.get(defense):
            smaller = dict(params)
            smaller.pop(defense, None)
            yield _with_params(config, smaller)
    if params.get("mean_lifetime") is not None:
        smaller = dict(params)
        smaller.pop("mean_lifetime", None)
        yield _with_params(config, smaller)
    if params.get("gossip_latency"):
        smaller = dict(params)
        smaller.pop("gossip_latency", None)
        yield _with_params(config, smaller)
    if params.get("pull_policy", "random") != "random":
        yield _with_params(config, {**params, "pull_policy": "random"})
    if params.get("segment_selection", "proportional") != "proportional":
        yield _with_params(
            config, {**params, "segment_selection": "proportional"}
        )
    # 3. Shrink the horizon.
    if config.warmup > 0.0:
        yield replace(config, warmup=0.0)
    if config.duration > 1.0:
        yield replace(config, duration=round(config.duration / 2.0, 6))
    # 4. Shrink the population.
    n_peers = int(params["n_peers"])
    n_servers = int(params.get("n_servers", 4))
    half = max(n_peers // 2, n_servers, 4)
    if half < n_peers:
        yield _with_params(config, {**params, "n_peers": half})
    if n_servers > 1:
        yield _with_params(config, {**params, "n_servers": 1})


def shrink_trial(
    config: TrialConfig,
    monitor: str,
    max_probes: int = 64,
) -> ShrinkResult:
    """Greedily minimize *config* while *monitor* keeps firing.

    Runs up to *max_probes* probe trials.  Each accepted reduction restarts
    the candidate scan from the smaller config (first-improvement greedy),
    so the result is a local fixpoint: no single candidate move applied to
    ``minimized`` still reproduces the violation — or the probe budget ran
    out first.
    """
    if max_probes < 1:
        raise ValueError(f"max_probes must be >= 1, got {max_probes}")
    baseline = run_trial(config)
    probes = 1
    if baseline.ok or baseline.monitor != monitor:
        raise ValueError(
            f"shrink baseline does not fail with monitor {monitor!r} "
            f"(got {baseline.monitor!r}); nothing to minimize"
        )
    current = config
    message = baseline.message or ""
    reductions = 0
    improved = True
    while improved and probes < max_probes:
        improved = False
        for candidate in _candidates(current):
            if probes >= max_probes:
                break
            try:
                candidate.build_params()
            except ValueError:
                continue  # reduction stepped outside the valid envelope
            outcome = run_trial(candidate)
            probes += 1
            if not outcome.ok and outcome.monitor == monitor:
                current = candidate
                message = outcome.message or message
                reductions += 1
                improved = True
                break
    return ShrinkResult(
        original=config.to_json(),
        minimized=current.to_json(),
        monitor=monitor,
        message=message,
        probes=probes,
        reductions=reductions,
    )


def write_repro(
    path: Union[str, Path],
    outcome: TrialOutcome,
    shrink: Optional[ShrinkResult] = None,
    campaign_seed: Optional[int] = None,
) -> Path:
    """Write a self-contained, deterministically replayable ``repro.json``.

    When a :class:`ShrinkResult` is supplied its minimized config becomes
    the replayed one and the original is kept alongside for forensics;
    otherwise the outcome's own config is used verbatim.
    """
    if outcome.ok:
        raise ValueError("cannot write a repro for a passing trial")
    path = Path(path)
    config = dict(shrink.minimized) if shrink is not None else dict(outcome.config)
    payload: Dict[str, Any] = {
        "format": REPRO_FORMAT,
        "campaign_seed": campaign_seed,
        "violation": {
            "monitor": shrink.monitor if shrink is not None else outcome.monitor,
            "message": shrink.message if shrink is not None else outcome.message,
        },
        "config": config,
        "original_config": dict(outcome.config),
        "shrink": (
            {"probes": shrink.probes, "reductions": shrink.reductions}
            if shrink is not None
            else None
        ),
        "command": f"repro chaos replay {path}",
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: Union[str, Path]) -> Tuple[TrialConfig, str, Dict[str, Any]]:
    """Load a ``repro.json``: (config to replay, expected monitor, payload)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path}: not a {REPRO_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    config = TrialConfig.from_json(payload["config"])
    monitor = str(payload["violation"]["monitor"])
    return config, monitor, payload
