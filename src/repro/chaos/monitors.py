"""Runtime invariant monitors: the conservation laws checked mid-run.

Each monitor inspects one cross-component invariant of a running
:class:`~repro.core.system.CollectionSystem` and raises
:class:`InvariantViolation` the moment it breaks.  A :class:`MonitorSuite`
bundles monitors and rides the engine's amortized probe hook
(:meth:`repro.sim.engine.Simulator.set_probe`), so invariants are checked
*during* the run — every K executed events — instead of only at teardown,
which is what lets the chaos shrinker localize a violation to a small
horizon.

Design rules, mirroring the fault injector's:

- **Read-only.**  Monitors never mutate simulation state, draw randomness,
  or schedule events; the probe consumes no event sequence numbers.  A
  monitored run is therefore event-for-event identical to an unmonitored
  one (the neutrality regression test asserts exactly this).
- **Near-zero cost when off.**  An uninstalled suite leaves the engine's
  probe slot ``None``; the hot loop then pays one local is-None test per
  event (benchmarked in ``benchmarks/test_bench_microbench.py``).
- **One source of truth.**  ``System.consistency_check()`` delegates to
  :func:`end_state_monitors`, so the end-of-run checks the test suite has
  always performed and the mid-run chaos checks cannot drift apart.

:class:`InvariantViolation` subclasses :class:`AssertionError` so existing
callers that expect ``consistency_check()`` to raise ``AssertionError``
keep working unchanged.
"""

from __future__ import annotations

import math
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
)

import numpy as np

if TYPE_CHECKING:  # imported lazily everywhere else to avoid a core cycle
    from repro.core.system import CollectionSystem


class InvariantViolation(AssertionError):
    """One invariant monitor fired; carries the monitor name and message."""

    def __init__(self, monitor: str, message: str) -> None:
        super().__init__(f"[{monitor}] {message}")
        self.monitor = monitor
        self.message = message


class InvariantMonitor:
    """Base class: one named invariant over a running system."""

    #: stable identifier used in violations, repro files, and docs/CHAOS.md
    name = "invariant"

    def check(self, system: "CollectionSystem", now: float) -> None:
        """Raise :class:`InvariantViolation` when the invariant is broken."""
        raise NotImplementedError

    def fail(self, message: str) -> "InvariantViolation":
        """Build the violation for this monitor (caller raises it)."""
        return InvariantViolation(self.name, message)


class BlockConservationMonitor(InvariantMonitor):
    """Peer-side edge count == registry edge count == metric integral.

    The bipartite-graph view of Sec. 3 is maintained three times over
    (peer buffers, segment registry, time-weighted metrics); every block
    added or removed must hit all three or throughput and occupancy
    figures silently diverge.
    """

    name = "block-conservation"

    def check(self, system: "CollectionSystem", now: float) -> None:
        peer_side = system.total_blocks_in_network()
        segment_side = sum(
            state.network_degree for state in system.registry.live_states()
        )
        if peer_side != segment_side:
            raise self.fail(
                f"edge-count mismatch at t={now:g}: peers hold {peer_side} "
                f"blocks, registry says {segment_side}"
            )
        tracked = system.metrics.total_blocks.value
        if not math.isclose(tracked, peer_side):
            raise self.fail(
                f"metrics track {tracked} blocks at t={now:g}, network "
                f"holds {peer_side}"
            )


class BufferCapMonitor(InvariantMonitor):
    """No peer ever holds more than its buffer cap ``B`` blocks.

    Also cross-checks each peer's cached ``block_count`` against the sum
    of its per-segment holdings — the count every protocol predicate
    (fullness, injection eligibility) trusts.
    """

    name = "buffer-cap"

    def check(self, system: "CollectionSystem", now: float) -> None:
        for peer in system.peers:
            if peer.block_count > peer.capacity:
                raise self.fail(
                    f"peer {peer.slot} holds {peer.block_count} blocks, cap "
                    f"B={peer.capacity}, at t={now:g}"
                )
            held = sum(h.block_count for h in peer.holdings.values())
            if held != peer.block_count:
                raise self.fail(
                    f"peer {peer.slot} counts {peer.block_count} blocks but "
                    f"its holdings sum to {held} at t={now:g}"
                )


class PeerTrackingMonitor(InvariantMonitor):
    """The non-empty peer set and empty-peer metric match reality."""

    name = "peer-tracking"

    def check(self, system: "CollectionSystem", now: float) -> None:
        nonempty_actual = {p.slot for p in system.peers if not p.is_empty}
        nonempty_tracked = set(system._nonempty)
        if nonempty_actual != nonempty_tracked:
            raise self.fail(
                f"non-empty set drift at t={now:g}: tracked "
                f"{sorted(nonempty_tracked)}, actual {sorted(nonempty_actual)}"
            )
        if system.empty_peer_count() != int(system.metrics.empty_peers.value):
            raise self.fail(
                f"empty-peer count drift at t={now:g}: metrics say "
                f"{system.metrics.empty_peers.value}, actual "
                f"{system.empty_peer_count()}"
            )


class SavedAccountingMonitor(InvariantMonitor):
    """The saved-segment population integral matches the registry."""

    name = "saved-accounting"

    def check(self, system: "CollectionSystem", now: float) -> None:
        registry_count = system.registry.saved_segment_count()
        tracked = int(system.metrics.saved_segments.value)
        if registry_count != tracked:
            raise self.fail(
                f"saved-segment population drift at t={now:g}: metrics say "
                f"{tracked}, registry says {registry_count}"
            )


class RankMonotoneMonitor(InvariantMonitor):
    """Server-side collected state is monotone, bounded, and decoder-true.

    Per live segment: ``collected`` never decreases between checks, never
    exceeds the segment size, and (in RLNC mode) always equals the pooled
    decoder's rank — the paper's state ``j`` must be exactly the linear
    algebra, never an optimistic counter.
    """

    name = "rank-monotone"

    def __init__(self) -> None:
        self._last_collected: Dict[int, int] = {}

    def check(self, system: "CollectionSystem", now: float) -> None:
        current: Dict[int, int] = {}
        for state in system.registry.live_states():
            collected = state.collected
            current[state.segment_id] = collected
            if collected < 0 or collected > state.size:
                raise self.fail(
                    f"segment {state.segment_id} collected state "
                    f"{collected} outside [0, s={state.size}] at t={now:g}"
                )
            previous = self._last_collected.get(state.segment_id)
            if previous is not None and collected < previous:
                raise self.fail(
                    f"segment {state.segment_id} rank regressed "
                    f"{previous} -> {collected} at t={now:g}"
                )
            if state.decoder is not None and collected != state.decoder.rank:
                raise self.fail(
                    f"segment {state.segment_id} collected={collected} but "
                    f"decoder rank={state.decoder.rank} at t={now:g}"
                )
        # Extinct segments leave the registry; prune so memory stays O(live).
        self._last_collected = current


class DecodeFidelityMonitor(InvariantMonitor):
    """Completed segments decode byte-identical to their source blocks.

    ``originals`` maps segment id -> the exact payload rows injected at the
    source (recorded by :meth:`CollectionSystem.record_payloads`); every new
    entry of ``system.collected_data`` is compared against it exactly once.
    """

    name = "decode-fidelity"

    def __init__(self, originals: Mapping[int, np.ndarray]) -> None:
        self._originals = originals
        self._checked: Set[int] = set()

    def check(self, system: "CollectionSystem", now: float) -> None:
        for segment_id, (descriptor, decoded) in system.collected_data.items():
            if segment_id in self._checked:
                continue
            self._checked.add(segment_id)
            original = self._originals.get(segment_id)
            if original is None:
                continue  # injected before recording was enabled
            if decoded.shape != original.shape:
                raise self.fail(
                    f"segment {segment_id} decoded shape {decoded.shape} != "
                    f"source shape {original.shape} at t={now:g}"
                )
            if not np.array_equal(decoded, original):
                bad = int(np.argwhere(decoded != original)[0][0])
                raise self.fail(
                    f"segment {segment_id} decoded bytes differ from source "
                    f"(first bad row {bad}) at t={now:g}"
                )


class OutageAccountingMonitor(InvariantMonitor):
    """Server pull clocks run exactly when no outage is in effect.

    During an outage every pull clock must be stopped (downtime must not
    leak pulls); outside one every pull clock must be armed; and the
    ``servers_down`` metric indicator must agree with the injector, since
    the reported ``outage_time`` integrates it.
    """

    name = "outage-accounting"

    def check(self, system: "CollectionSystem", now: float) -> None:
        faults = system.faults
        if faults is None:
            return
        down = faults.servers_down
        for index, process in enumerate(system._server_processes):
            if down and process.is_running:
                raise self.fail(
                    f"server {index} pull clock running during an outage "
                    f"at t={now:g}"
                )
            if not down and not process.is_running:
                raise self.fail(
                    f"server {index} pull clock stopped outside an outage "
                    f"at t={now:g}"
                )
        indicator = system.metrics.servers_down.value
        expected = 1.0 if down else 0.0
        if indicator != expected:
            raise self.fail(
                f"servers_down metric reads {indicator} but injector says "
                f"down={down} at t={now:g}"
            )


class EventTimeMonitor(InvariantMonitor):
    """Simulation time is finite, non-negative, and monotone between checks."""

    name = "event-time"

    def __init__(self) -> None:
        self._last_now = 0.0

    def check(self, system: "CollectionSystem", now: float) -> None:
        if not math.isfinite(now) or now < 0.0:
            raise self.fail(f"simulation clock read {now!r}")
        if now < self._last_now:
            raise self.fail(
                f"simulation clock went backwards: {self._last_now:g} -> "
                f"{now:g}"
            )
        self._last_now = now
        if system.sim.pending < 0:
            raise self.fail(
                f"engine live-event accounting went negative "
                f"({system.sim.pending}) at t={now:g}"
            )


def end_state_monitors() -> List[InvariantMonitor]:
    """The stateless monitors behind ``System.consistency_check()``.

    These hold at *any* instant of a healthy run, need no history, and are
    exactly the checks the test suite has always applied at teardown.
    """
    return [
        BlockConservationMonitor(),
        BufferCapMonitor(),
        PeerTrackingMonitor(),
        SavedAccountingMonitor(),
    ]


def runtime_monitors(
    system: "CollectionSystem",
    originals: Optional[Mapping[int, np.ndarray]] = None,
) -> List[InvariantMonitor]:
    """The full mid-run suite for *system* (stateful monitors included)."""
    monitors = end_state_monitors()
    monitors.append(RankMonotoneMonitor())
    monitors.append(EventTimeMonitor())
    if system.faults is not None:
        monitors.append(OutageAccountingMonitor())
    if originals is not None:
        monitors.append(DecodeFidelityMonitor(originals))
    return monitors


class MonitorSuite:
    """A bundle of monitors wired to one system's engine probe.

    Args:
        system: The system under observation.
        every: Executed-event cadence of the amortized probe.
        monitors: Explicit monitor list; defaults to
            :func:`runtime_monitors` (without decode fidelity — pass
            ``originals`` via ``runtime_monitors`` for that).

    Use as a context manager, or call :meth:`install` / :meth:`uninstall`::

        suite = MonitorSuite(system, every=256)
        with suite:
            system.run(warmup, duration)
            suite.check_now()  # final sweep at the horizon
    """

    def __init__(
        self,
        system: "CollectionSystem",
        every: int = 256,
        monitors: Optional[Sequence[InvariantMonitor]] = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"monitor cadence must be >= 1, got {every}")
        self.system = system
        self.every = every
        self.monitors: List[InvariantMonitor] = (
            list(monitors) if monitors is not None else runtime_monitors(system)
        )
        #: number of completed probe sweeps (diagnostics)
        self.checks_run = 0

    def check_now(self) -> None:
        """Run every monitor once against the current instant."""
        system = self.system
        now = system.sim.now
        for monitor in self.monitors:
            monitor.check(system, now)
        self.checks_run += 1

    def install(self) -> None:
        """Attach the suite to the system's engine probe slot."""
        self.system.sim.set_probe(self.check_now, self.every)

    def uninstall(self) -> None:
        """Detach the suite (the probe slot returns to None)."""
        self.system.sim.clear_probe()

    def __enter__(self) -> "MonitorSuite":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()
