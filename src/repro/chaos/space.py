"""The chaos plan-space: what a random trial is allowed to look like.

A :class:`PlanSpace` declares the ranges every sampled knob is drawn from —
protocol parameters pushed to extreme-but-valid corners (buffer cap exactly
one segment deep, a single server, gossip switched off entirely) composed
with all four fault channels at arbitrary intensities (loss probabilities
up to and including 1.0, outage windows starting at t=0, churn bursts
killing the whole population).  :func:`sample_trial` draws one
:class:`TrialConfig` from the space on a named
:class:`~repro.sim.rng.SeedSequenceRegistry` substream, so trial *i* of a
campaign is a pure function of ``(campaign_seed, i)`` — the property the
replay and shrink machinery depend on.

A :class:`TrialConfig` stores plain JSON dictionaries rather than the
frozen dataclasses they build, because it must survive the runner's
journal round-trip and the ``repro.json`` file byte-identically; the
builders (:meth:`TrialConfig.build_params`) re-validate on every
reconstruction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.adversary.plan import AdversaryPlan, VALID_TARGETING
from repro.core.params import (
    MODE_RLNC,
    Parameters,
    VALID_SELECTIONS,
)
from repro.faults.plan import FaultPlan
from repro.sim.rng import SeedSequenceRegistry

#: The chaos campaign experiment name (prefix-routed by RunSpec.build_plan).
CHAOS_CAMPAIGN = "chaos-campaign"


@dataclass(frozen=True)
class TrialConfig:
    """One fully specified chaos trial: build it, run it, judge it.

    ``params``, ``plan``, and ``adversary`` are JSON-clean keyword
    dictionaries for :class:`Parameters`, :class:`FaultPlan`, and
    :class:`AdversaryPlan`; ``seed`` feeds the system's seed registry;
    ``every`` is the invariant-monitor cadence in executed events;
    ``mutant`` optionally names a seeded defect from
    :mod:`repro.chaos.mutants` to apply for the trial's duration.
    """

    trial_id: int
    seed: int
    params: Dict[str, Any]
    plan: Dict[str, Any]
    warmup: float
    duration: float
    every: int
    mutant: Optional[str] = None
    adversary: Dict[str, Any] = field(default_factory=dict)

    def build_fault_plan(self) -> Optional[FaultPlan]:
        """Reconstruct (and re-validate) the trial's fault plan."""
        if not self.plan:
            return None
        kwargs = dict(self.plan)
        windows = kwargs.pop("outage_windows", None)
        if windows:
            kwargs["outage_windows"] = tuple(
                (float(start), float(end)) for start, end in windows
            )
        process_faults = kwargs.pop("process_faults", None)
        if process_faults:
            kwargs["process_faults"] = tuple(
                (str(kind), float(at), float(duration), float(fraction))
                for kind, at, duration, fraction in process_faults
            )
        return FaultPlan(**kwargs)

    def build_adversary_plan(self) -> Optional[AdversaryPlan]:
        """Reconstruct (and re-validate) the trial's adversary plan."""
        if not self.adversary:
            return None
        return AdversaryPlan(**self.adversary)

    def build_params(self) -> Parameters:
        """Reconstruct (and re-validate) the trial's protocol parameters."""
        return Parameters(
            faults=self.build_fault_plan(),
            adversary=self.build_adversary_plan(),
            **self.params,
        )

    @property
    def task_id(self) -> str:
        """Deterministic runner task id for this trial."""
        return f"trial={self.trial_id:05d}"

    def to_json(self) -> Dict[str, Any]:
        """JSON-clean form (journal payloads, repro.json)."""
        return {
            "trial_id": self.trial_id,
            "seed": self.seed,
            "params": dict(self.params),
            "plan": dict(self.plan),
            "adversary": dict(self.adversary),
            "warmup": self.warmup,
            "duration": self.duration,
            "every": self.every,
            "mutant": self.mutant,
        }

    @staticmethod
    def from_json(payload: Mapping[str, Any]) -> "TrialConfig":
        """Inverse of :meth:`to_json`."""
        mutant = payload.get("mutant")
        return TrialConfig(
            trial_id=int(payload["trial_id"]),
            seed=int(payload["seed"]),
            params=dict(payload["params"]),
            plan=dict(payload["plan"]),
            # absent in pre-adversary journals: default to honest peers
            adversary=dict(payload.get("adversary") or {}),
            warmup=float(payload["warmup"]),
            duration=float(payload["duration"]),
            every=int(payload["every"]),
            mutant=str(mutant) if mutant is not None else None,
        )

    def describe(self) -> str:
        """One-line summary for campaign logs."""
        plan = self.build_fault_plan()
        faults = plan.describe() if plan is not None else "no faults"
        adversary = self.build_adversary_plan()
        n = self.params["n_peers"]
        return (
            f"trial {self.trial_id}: N={n} seed={self.seed} "
            f"T={self.warmup:g}+{self.duration:g} every={self.every} "
            f"[{faults}]"
            + (f" [{adversary.describe()}]" if adversary is not None else "")
            + (f" mutant={self.mutant}" if self.mutant else "")
        )


#: Server pull policies, restated here so sampling the space does not import
#: the server module at module load (params re-validates against the real
#: registry on every build).
_PULL_POLICIES = ("random", "round-robin", "avoid-redundant", "greedy-completion")


@dataclass(frozen=True)
class PlanSpace:
    """Declared sampling ranges for every knob a chaos trial may turn.

    ``(lo, hi)`` pairs are inclusive ranges; probabilities gate how often a
    dimension is pushed off its default.  Trials are deliberately small
    (tens of peers, horizons of a few time units) so a 200-trial campaign
    stays cheap while still composing every fault channel.
    """

    n_peers: Tuple[int, int] = (8, 48)
    n_servers_max: int = 4
    arrival_rate: Tuple[float, float] = (0.5, 6.0)
    gossip_rate: Tuple[float, float] = (0.0, 10.0)
    deletion_rate: Tuple[float, float] = (0.25, 3.0)
    normalized_capacity: Tuple[float, float] = (0.05, 3.0)
    segment_size: Tuple[int, int] = (1, 5)
    payload_bytes: Tuple[int, ...] = (4, 16)
    mean_lifetime: Tuple[float, float] = (1.0, 12.0)
    warmup: Tuple[float, float] = (0.0, 3.0)
    duration: Tuple[float, float] = (2.0, 8.0)
    every: Tuple[int, int] = (16, 384)
    #: probability a trial runs in RLNC mode with payload bytes (enables the
    #: rank-monotone and decode-fidelity monitors at real-coding cost).
    rlnc_probability: float = 0.5
    #: probability churn is enabled at all.
    churn_probability: float = 0.7
    #: per-channel probability that a fault channel is switched on.
    channel_probability: float = 0.45
    #: probability an active knob is pushed to its extreme corner
    #: (loss=1.0, burst kills everyone, buffer exactly one segment deep,
    #: outage window starting at t=0).
    extreme_probability: float = 0.2
    #: probability a trial carries an adversary plan at all; per-strategy
    #: activation inside an adversarial trial reuses channel_probability.
    adversary_probability: float = 0.35
    #: probability each server-side defense (pull-source scoring /
    #: advertisement discounting) is switched on for a trial, independent
    #: of whether the trial is adversarial — defenses must stay inert on
    #: honest populations, and the monitors get to prove it.
    defense_probability: float = 0.4
    liar_inflation: Tuple[float, float] = (2.0, 16.0)
    sybil_rate: Tuple[float, float] = (0.1, 1.5)
    pull_policies: Tuple[str, ...] = _PULL_POLICIES
    selections: Tuple[str, ...] = VALID_SELECTIONS
    #: extra keyword overrides applied verbatim to every sampled Parameters
    #: dict (campaign-level pinning, e.g. {"mode": "rlnc"}).
    params_overrides: Dict[str, Any] = field(default_factory=dict)

    # -- sampling helpers ------------------------------------------------------

    def _uniform(self, rng: random.Random, lo_hi: Tuple[float, float]) -> float:
        lo, hi = lo_hi
        return rng.uniform(lo, hi)

    def _randint(self, rng: random.Random, lo_hi: Tuple[int, int]) -> int:
        lo, hi = lo_hi
        return rng.randint(lo, hi)

    def _sample_params(self, rng: random.Random) -> Dict[str, Any]:
        n_peers = self._randint(rng, self.n_peers)
        segment_size = self._randint(rng, self.segment_size)
        params: Dict[str, Any] = {
            "n_peers": n_peers,
            "arrival_rate": round(self._uniform(rng, self.arrival_rate), 6),
            "gossip_rate": round(self._uniform(rng, self.gossip_rate), 6),
            "deletion_rate": round(self._uniform(rng, self.deletion_rate), 6),
            "normalized_capacity": round(
                self._uniform(rng, self.normalized_capacity), 6
            ),
            "segment_size": segment_size,
            "n_servers": rng.randint(1, min(self.n_servers_max, n_peers)),
            "segment_selection": rng.choice(list(self.selections)),
            "pull_policy": rng.choice(list(self.pull_policies)),
        }
        if rng.random() < self.extreme_probability:
            # Gossip entirely off: collection must survive on direct pulls.
            params["gossip_rate"] = 0.0
        if rng.random() < self.rlnc_probability:
            params["mode"] = MODE_RLNC
            params["payload_bytes"] = rng.choice(list(self.payload_bytes))
        # Buffer cap: auto-sized, snug, or the tightest legal corner (B = s).
        cap_draw = rng.random()
        if cap_draw < self.extreme_probability:
            params["buffer_capacity"] = segment_size
        elif cap_draw < 0.6:
            params["buffer_capacity"] = segment_size + rng.randint(
                0, 3 * segment_size
            )
        if rng.random() < self.churn_probability:
            params["mean_lifetime"] = round(
                self._uniform(rng, self.mean_lifetime), 6
            )
        if rng.random() < 0.3:
            params["gossip_latency"] = round(rng.uniform(0.05, 0.8), 6)
        params.update(self.params_overrides)
        return params

    def _sample_windows(
        self, rng: random.Random, horizon: float
    ) -> List[List[float]]:
        count = rng.randint(1, 3)
        start = (
            0.0  # the t=0 corner: down before the first event ever fires
            if rng.random() < self.extreme_probability
            else round(rng.uniform(0.0, horizon / 4.0), 6)
        )
        windows: List[List[float]] = []
        for _ in range(count):
            length = round(rng.uniform(0.1, max(horizon / 3.0, 0.2)), 6)
            windows.append([round(start, 6), round(start + length, 6)])
            start = start + length + round(
                rng.uniform(0.05, max(horizon / 3.0, 0.1)), 6
            )
        return windows

    def _sample_plan(
        self, rng: random.Random, horizon: float
    ) -> Dict[str, Any]:
        plan: Dict[str, Any] = {}
        active = self.channel_probability
        extreme = self.extreme_probability
        if rng.random() < active:
            plan["gossip_loss_rate"] = (
                1.0 if rng.random() < extreme else round(rng.random(), 6)
            )
        if rng.random() < active:
            plan["pull_loss_rate"] = (
                1.0 if rng.random() < extreme else round(rng.random(), 6)
            )
        if rng.random() < active:
            plan["pollution_fraction"] = (
                1.0
                if rng.random() < extreme
                else round(rng.uniform(0.05, 1.0), 6)
            )
            plan["pollution_repull_budget"] = rng.randint(0, 3)
        if rng.random() < active:
            if rng.random() < 0.5:
                plan["outage_windows"] = self._sample_windows(rng, horizon)
            else:
                plan["outage_rate"] = round(rng.uniform(0.05, 0.8), 6)
                plan["outage_duration"] = round(
                    rng.uniform(0.2, max(horizon / 3.0, 0.3)), 6
                )
            plan["catchup_limit"] = rng.randint(0, 16)
        if rng.random() < active:
            plan["burst_rate"] = round(rng.uniform(0.05, 0.6), 6)
            plan["burst_fraction"] = (
                1.0  # a burst that kills the entire population
                if rng.random() < extreme
                else round(rng.uniform(0.05, 1.0), 6)
            )
        # Process faults compose with every channel except the outage ones
        # (FaultPlan forbids overlapping server-down sources, so the two
        # outage-style channels are sampled mutually exclusively).
        if (
            "outage_windows" not in plan
            and "outage_rate" not in plan
            and rng.random() < active
        ):
            faults: List[List[Any]] = []
            if rng.random() < 0.7:
                kind = rng.choice(["kill-server", "stop-server"])
                at = round(rng.uniform(0.0, horizon * 0.6), 6)
                duration = (
                    0.0
                    if kind == "kill-server"
                    else round(rng.uniform(0.1, max(horizon / 4.0, 0.2)), 6)
                )
                faults.append([kind, at, duration, 0.0])
            if rng.random() < 0.6 or not faults:
                kind = rng.choice(["kill-peers", "stop-peers"])
                at = round(rng.uniform(0.0, horizon * 0.8), 6)
                duration = (
                    0.0
                    if kind == "kill-peers"
                    else round(rng.uniform(0.1, max(horizon / 4.0, 0.2)), 6)
                )
                fraction = (
                    1.0  # take out every peer process at once
                    if rng.random() < extreme
                    else round(rng.uniform(0.05, 1.0), 6)
                )
                faults.append([kind, at, duration, fraction])
            plan["process_faults"] = faults
            plan["process_restart_latency"] = round(
                rng.uniform(0.1, max(horizon / 4.0, 0.3)), 6
            )
        return plan

    def _sample_adversary(self, rng: random.Random) -> Dict[str, Any]:
        """Draw one adversary plan dict (empty = honest population).

        Static fractions must sum to <= 1.0, so each activated role draws
        from the head-room the earlier roles left; the extreme corner hands
        the entire remaining population to a single role.
        """
        if rng.random() >= self.adversary_probability:
            return {}
        adversary: Dict[str, Any] = {}
        active = self.channel_probability
        extreme = self.extreme_probability
        remaining = 1.0
        for role in ("liar_fraction", "freerider_fraction", "polluter_fraction"):
            if remaining < 0.05 or rng.random() >= active:
                continue
            fraction = (
                remaining
                if rng.random() < extreme
                else round(rng.uniform(0.05, remaining), 6)
            )
            adversary[role] = round(fraction, 6)
            remaining = round(remaining - fraction, 6)
        if "liar_fraction" in adversary:
            adversary["liar_inflation"] = round(
                self._uniform(rng, self.liar_inflation), 6
            )
        if "polluter_fraction" in adversary:
            adversary["polluter_targeting"] = rng.choice(list(VALID_TARGETING))
        if rng.random() < active:
            adversary["sybil_rate"] = round(
                self._uniform(rng, self.sybil_rate), 6
            )
            adversary["sybil_fraction"] = (
                1.0  # a burst converting the entire population
                if rng.random() < extreme
                else round(rng.uniform(0.05, 1.0), 6)
            )
        return adversary

    def sample(
        self,
        rng: random.Random,
        trial_id: int,
        mutant: Optional[str] = None,
    ) -> TrialConfig:
        """Draw one trial from the space using *rng* exclusively."""
        params = self._sample_params(rng)
        warmup = round(self._uniform(rng, self.warmup), 6)
        duration = round(self._uniform(rng, self.duration), 6)
        plan = self._sample_plan(rng, warmup + duration)
        adversary = self._sample_adversary(rng)
        # Defense toggles ride the params dict (they are Parameters fields);
        # setdefault keeps campaign-level params_overrides authoritative.
        if rng.random() < self.defense_probability:
            params.setdefault("pull_scoring", True)
        if rng.random() < self.defense_probability:
            params.setdefault("advert_discounting", True)
        config = TrialConfig(
            trial_id=trial_id,
            seed=rng.getrandbits(31),
            params=params,
            plan=plan,
            adversary=adversary,
            warmup=warmup,
            duration=duration,
            every=self._randint(rng, self.every),
            mutant=mutant,
        )
        # Fail at sampling time, not inside a worker, if the space ever
        # drifts outside the validated parameter envelope.
        config.build_params()
        return config


def sample_trial(
    campaign_seed: int,
    trial_id: int,
    space: Optional[PlanSpace] = None,
    mutant: Optional[str] = None,
) -> TrialConfig:
    """Draw campaign trial *trial_id* — a pure function of the arguments.

    Each trial gets its own named substream of the campaign seed, so
    campaigns are embarrassingly parallel and any single trial can be
    reconstructed without replaying the ones before it.
    """
    if trial_id < 0:
        raise ValueError(f"trial_id must be >= 0, got {trial_id}")
    space = space if space is not None else PlanSpace()
    rng = SeedSequenceRegistry(campaign_seed).python(f"chaos-trial-{trial_id}")
    return space.sample(rng, trial_id, mutant=mutant)
