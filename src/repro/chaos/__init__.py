"""Chaos campaign engine: randomized fault-space search with invariants.

The chaos layer stresses the collection system the way production P2P
deployments stress their protocols — with *composed* faults at awkward
parameter corners — and checks that the simulator's conservation laws
survive.  Three cooperating pieces (see ``docs/CHAOS.md``):

- :mod:`repro.chaos.space` — a declared plan-space and a seeded sampler
  drawing random :class:`~repro.faults.plan.FaultPlan` compositions plus
  extreme-but-valid :class:`~repro.core.params.Parameters` corners;
- :mod:`repro.chaos.monitors` — runtime invariant monitors threaded
  through the engine's amortized probe hook, checking block conservation,
  buffer caps, rank monotonicity, decode fidelity, outage clock accounting
  and event-time sanity *during* the run;
- :mod:`repro.chaos.shrink` — a delta-debugging shrinker that minimizes a
  failing trial and emits a self-contained, deterministically replayable
  ``repro.json``.

Campaigns fan out over the :mod:`repro.runner` worker pool
(:mod:`repro.chaos.campaign`) and are driven by ``repro chaos run`` /
``repro chaos replay`` (:mod:`repro.chaos.cli`).
"""

from repro.chaos.harness import TrialOutcome, run_trial
from repro.chaos.monitors import (
    InvariantMonitor,
    InvariantViolation,
    MonitorSuite,
    runtime_monitors,
)
from repro.chaos.mutants import MUTANTS, apply_mutant
from repro.chaos.shrink import ShrinkResult, shrink_trial, write_repro
from repro.chaos.space import CHAOS_CAMPAIGN, PlanSpace, TrialConfig, sample_trial

__all__ = [
    "CHAOS_CAMPAIGN",
    "InvariantMonitor",
    "InvariantViolation",
    "MonitorSuite",
    "MUTANTS",
    "PlanSpace",
    "ShrinkResult",
    "TrialConfig",
    "TrialOutcome",
    "apply_mutant",
    "run_trial",
    "runtime_monitors",
    "sample_trial",
    "shrink_trial",
    "write_repro",
]
