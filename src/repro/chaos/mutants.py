"""Seeded defects: known-bad patches that the chaos layer must catch.

A *mutant* is a deliberate, realistic bug installed into the live code for
the duration of one trial — the positive control of the chaos campaign.
The shipped code passing a campaign proves little unless the same campaign
*fails* when a conservation law is actually broken; ``repro chaos run
--mutant <name>`` runs that experiment, and CI keeps one mutant in the
loop permanently (the ``chaos-smoke`` job).

Each mutant targets a different invariant monitor:

================================ =====================================
mutant                            caught by
================================ =====================================
``buffer-cap-off-by-one``         ``buffer-cap``
``decoder-skip-elimination``      ``decode-fidelity``
``churn-leaks-registry-degree``   ``block-conservation``
================================ =====================================

Patches are process-local and undone in a ``finally`` — but campaign
workers apply them per *task*, so never mix mutant and clean trials in one
in-process batch without the :func:`apply_mutant` context manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.coding import gf256

if TYPE_CHECKING:
    from repro.coding.gf256 import Vector
    from repro.coding.linalg import IncrementalDecoder
    from repro.core.peer import Peer
    from repro.core.segments import SegmentRegistry, SegmentState

Undo = Callable[[], None]


@dataclass(frozen=True)
class Mutant:
    """One named seeded defect."""

    name: str
    description: str
    #: where the patch lands, for docs and campaign logs
    target: str
    #: the invariant monitor expected to catch it
    caught_by: str
    install: Callable[[], Undo]


def _install_buffer_cap_off_by_one() -> Undo:
    """Classic fencepost: a peer reports "full" one block too late.

    ``Peer.is_full`` gates both gossip-target eligibility and the
    ``add_block`` guard, so the loosened predicate lets gossip push a peer
    to ``B + 1`` buffered blocks — exactly the overflow the ``buffer-cap``
    monitor exists to see.
    """
    from repro.core.peer import Peer

    original = Peer.__dict__["is_full"]

    def is_full_off_by_one(self: "Peer") -> bool:
        return self.block_count >= self.capacity + 1  # BUG: >= B + 1, not B

    setattr(Peer, "is_full", property(is_full_off_by_one))

    def undo() -> None:
        setattr(Peer, "is_full", original)

    return undo


def _install_decoder_skip_elimination() -> Undo:
    """Drop Gauss-Jordan back-substitution when installing a pivot row.

    The decoder's batched single-pass reduction is only exact while the
    basis stays mutually reduced (see the proof in ``linalg.py``); without
    back-substitution, dependent blocks can be mistaken for innovative and
    ``decode()`` returns linear mixtures instead of the source rows — the
    ``decode-fidelity`` monitor compares them byte-for-byte and objects.
    """
    from repro.coding.linalg import IncrementalDecoder

    original = IncrementalDecoder.__dict__["_insert"]

    def insert_without_elimination(
        self: "IncrementalDecoder",
        vector: "Vector",
        payload: Optional["Vector"],
    ) -> None:
        pivot_col = int(np.nonzero(vector)[0][0])
        pivot_value = int(vector[pivot_col])
        if pivot_value != 1:
            inverse = gf256.inv(pivot_value)
            vector = gf256.vec_scale(vector, inverse)
            if payload is not None:
                payload = gf256.vec_scale(payload, inverse)
        r = self._rank
        # BUG: the back-substitution into rows [:r] is skipped entirely.
        self._matrix[r] = vector
        self._pivot_cols.append(pivot_col)
        self._pivot_array[r] = pivot_col
        if payload is not None:
            if self._payload_matrix is None:
                self._payload_matrix = np.zeros(
                    (self.size, payload.shape[0]), dtype=np.uint8
                )
            self._payload_matrix[r] = payload
            self._has_payload[r] = True
        self._rank = r + 1

    setattr(IncrementalDecoder, "_insert", insert_without_elimination)

    def undo() -> None:
        setattr(IncrementalDecoder, "_insert", original)

    return undo


def _install_churn_leaks_registry_degree() -> Undo:
    """Silently drop every 7th block-removal notification to the registry.

    The segment side of the bipartite graph then counts edges the peer
    side already deleted — the exact peer/registry/metrics three-way drift
    the ``block-conservation`` monitor cross-checks on every sweep.
    """
    from repro.core.segments import SegmentRegistry

    original = SegmentRegistry.__dict__["on_block_removed"]
    calls = {"n": 0}

    def leaky_on_block_removed(
        self: "SegmentRegistry", state: "SegmentState", now: float
    ) -> None:
        calls["n"] += 1
        if calls["n"] % 7 == 0:
            return  # BUG: removal never reaches the registry accounting
        original(self, state, now)

    setattr(SegmentRegistry, "on_block_removed", leaky_on_block_removed)

    def undo() -> None:
        setattr(SegmentRegistry, "on_block_removed", original)

    return undo


#: Registry of every seeded defect, keyed by CLI name.
# lint: ok(R8): read-only registry built once at import and never mutated
MUTANTS: Dict[str, Mutant] = {
    mutant.name: mutant
    for mutant in (
        Mutant(
            name="buffer-cap-off-by-one",
            description="Peer.is_full triggers one block past the cap B",
            target="repro.core.peer.Peer.is_full",
            caught_by="buffer-cap",
            install=_install_buffer_cap_off_by_one,
        ),
        Mutant(
            name="decoder-skip-elimination",
            description=(
                "IncrementalDecoder._insert skips Gauss-Jordan "
                "back-substitution"
            ),
            target="repro.coding.linalg.IncrementalDecoder._insert",
            caught_by="decode-fidelity",
            install=_install_decoder_skip_elimination,
        ),
        Mutant(
            name="churn-leaks-registry-degree",
            description=(
                "SegmentRegistry.on_block_removed drops every 7th update"
            ),
            target="repro.core.segments.SegmentRegistry.on_block_removed",
            caught_by="block-conservation",
            install=_install_churn_leaks_registry_degree,
        ),
    )
}


def mutant_names() -> Tuple[str, ...]:
    """Stable CLI-facing listing of available mutants."""
    return tuple(sorted(MUTANTS))


@contextmanager
def apply_mutant(name: Optional[str]) -> Iterator[None]:
    """Install mutant *name* for the duration of the ``with`` block.

    ``name=None`` is a no-op (clean trial), so call sites need no
    branching.  Unknown names raise ``ValueError`` listing the registry.
    """
    if name is None:
        yield
        return
    try:
        mutant = MUTANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutant {name!r}; available: {', '.join(mutant_names())}"
        ) from None
    undo = mutant.install()
    try:
        yield
    finally:
        undo()
