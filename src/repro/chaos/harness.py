"""One chaos trial, end to end: build, monitor, run, judge.

:func:`run_trial` is the unit of work every other chaos component composes:
the campaign fans it out over the runner pool, the shrinker probes it with
reduced configs, and ``repro chaos replay`` calls it once.  It never raises
on a violation — the verdict is *data* (:class:`TrialOutcome`), because a
violating trial is the campaign's successful output, not its crash.  Any
unexpected exception inside the simulated run is likewise folded into the
outcome (monitor ``"exception"``): a mutant that makes the system throw
instead of drifting is still a caught mutant, and must not look like a
worker fault the pool would retry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.chaos.monitors import (
    InvariantViolation,
    MonitorSuite,
    runtime_monitors,
)
from repro.chaos.mutants import apply_mutant
from repro.chaos.space import TrialConfig
from repro.core.params import MODE_RLNC
from repro.core.system import CollectionSystem

#: pseudo-monitor name for trials that crashed instead of drifting
EXCEPTION_MONITOR = "exception"


@dataclass(frozen=True)
class TrialOutcome:
    """The verdict of one chaos trial."""

    trial_id: int
    ok: bool
    #: name of the monitor that fired (or ``"exception"``); None when ok
    monitor: Optional[str]
    #: violation message (or exception repr); None when ok
    message: Optional[str]
    #: completed monitor sweeps
    checks_run: int
    #: engine events fired during the trial
    events: int
    #: the trial's full configuration (JSON form), for shrink/replay
    config: Dict[str, Any]

    def to_json(self) -> Dict[str, Any]:
        """JSON-clean form (runner payloads, campaign reports)."""
        return {
            "trial_id": self.trial_id,
            "ok": self.ok,
            "monitor": self.monitor,
            "message": self.message,
            "checks_run": self.checks_run,
            "events": self.events,
            "config": dict(self.config),
        }

    @staticmethod
    def from_json(payload: Mapping[str, Any]) -> "TrialOutcome":
        """Inverse of :meth:`to_json`."""
        monitor = payload.get("monitor")
        message = payload.get("message")
        return TrialOutcome(
            trial_id=int(payload["trial_id"]),
            ok=bool(payload["ok"]),
            monitor=str(monitor) if monitor is not None else None,
            message=str(message) if message is not None else None,
            checks_run=int(payload["checks_run"]),
            events=int(payload["events"]),
            config=dict(payload["config"]),
        )

    def describe(self) -> str:
        """One-line verdict for campaign logs."""
        if self.ok:
            return (
                f"trial {self.trial_id}: ok "
                f"({self.events} events, {self.checks_run} sweeps)"
            )
        return f"trial {self.trial_id}: VIOLATION [{self.monitor}] {self.message}"


def run_trial(config: TrialConfig) -> TrialOutcome:
    """Execute one monitored chaos trial and return its verdict.

    Deterministic: the outcome is a pure function of *config* (seed, plan,
    horizon, mutant, monitor cadence all included), which is what makes
    ``repro.json`` replays and shrinker probes meaningful.
    """
    with apply_mutant(config.mutant):
        return _run_monitored(config)


def _run_monitored(config: TrialConfig) -> TrialOutcome:
    monitor: Optional[str] = None
    message: Optional[str] = None
    checks_run = 0
    events = 0
    system: Optional[CollectionSystem] = None
    try:
        params = config.build_params()
        system = CollectionSystem(params, seed=config.seed)
        originals: Optional[Dict[int, np.ndarray]] = None
        if params.mode == MODE_RLNC and params.payload_bytes > 0:
            originals = system.record_payloads()
        suite = MonitorSuite(
            system,
            every=config.every,
            monitors=runtime_monitors(system, originals),
        )
        try:
            with suite:
                system.run(max(config.warmup, 0.0), config.duration)
                # Final sweep exactly at the horizon, so violations that
                # build up slower than the probe cadence still surface.
                suite.check_now()
        finally:
            checks_run = suite.checks_run
            events = system.sim.perf().events_fired
    except InvariantViolation as violation:
        monitor = violation.monitor
        message = violation.message
    except Exception as error:  # crash == caught, not a worker fault
        monitor = EXCEPTION_MONITOR
        message = f"{type(error).__name__}: {error}"
    finally:
        if system is not None:
            system.shutdown()
    return TrialOutcome(
        trial_id=config.trial_id,
        ok=monitor is None,
        monitor=monitor,
        message=message,
        checks_run=checks_run,
        events=events,
        config=config.to_json(),
    )
