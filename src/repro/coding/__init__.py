"""Network-coding substrate: GF(2^8), linear algebra, blocks, RLNC codec."""

from repro.coding.block import (
    CodedBlock,
    SegmentDescriptor,
    make_abstract_blocks,
    make_source_blocks,
)
from repro.coding.linalg import IncrementalDecoder, invert, is_invertible, rank, rref, solve
from repro.coding.rlnc import (
    SegmentDecoder,
    encode_from_source,
    innovation_probability,
    rank_of_blocks,
    recode,
)

__all__ = [
    "CodedBlock",
    "SegmentDescriptor",
    "make_abstract_blocks",
    "make_source_blocks",
    "IncrementalDecoder",
    "invert",
    "is_invertible",
    "rank",
    "rref",
    "solve",
    "SegmentDecoder",
    "encode_from_source",
    "innovation_probability",
    "rank_of_blocks",
    "recode",
]
