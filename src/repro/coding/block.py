"""Data model for segments and coded blocks.

Sec. 2 of the paper groups the statistics blocks generated at each peer into
*segments* of ``s`` blocks and spreads random linear combinations of each
segment's blocks across the network.  This module defines the immutable
description of a segment (:class:`SegmentDescriptor`) and the unit that
actually moves between peers and servers (:class:`CodedBlock`).

A coded block carries its encoding vector over the segment's *original*
blocks ("the coding coefficients used to encode original blocks to x are
embedded in the header of the coded block"), so any holder can re-encode
without global coordination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.coding import gf256
from repro.coding.gf256 import Vector


@dataclass(frozen=True)
class SegmentDescriptor:
    """Immutable identity and metadata of one segment.

    Attributes:
        segment_id: Globally unique integer id.
        source_peer: Slot id of the peer that generated the segment.
        size: Number of original blocks ``s`` grouped into the segment.
        injected_at: Simulation time of injection.
        generation: Generation counter of the source peer (increments when a
            churn replacement reuses the slot), so statistics of departed
            peers remain attributable.
    """

    segment_id: int
    source_peer: int
    size: int
    injected_at: float
    generation: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"segment size must be >= 1, got {self.size}")

    def __str__(self) -> str:
        return (
            f"segment {self.segment_id} (peer {self.source_peer}"
            f"@g{self.generation}, s={self.size}, t={self.injected_at:.3f})"
        )


@dataclass(eq=False)
class CodedBlock:
    """One coded block of a segment.

    ``coefficients`` is the encoding vector over the segment's original
    blocks; ``payload`` is the coded data bytes.  Both are optional because
    the abstract simulation mode tracks block *counts* only (the paper's
    bipartite-graph view, where a block is just an edge); the full-RLNC mode
    fills both in.

    Identity (not value) equality is deliberate: two blocks with equal
    coefficients are still distinct objects occupying distinct buffer slots.
    """

    segment: SegmentDescriptor
    coefficients: Optional[Vector] = None
    payload: Optional[Vector] = None
    created_at: float = 0.0
    #: Liveness flag flipped by TTL expiry and churn; lets stale deletion
    #: events detect that their target is already gone.
    alive: bool = field(default=True, compare=False)
    #: Fault-injection tag: the block was emitted (or re-encoded from a
    #: holding contaminated) by a polluting peer.  In RLNC mode the
    #: coefficient header is additionally zeroed, so GF(2^8) rank detection
    #: rejects the block without consulting this flag; abstract mode relies
    #: on the tag alone (the tagged-block approximation).
    polluted: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.coefficients is not None:
            self.coefficients = gf256.as_vector(self.coefficients)
            if self.coefficients.shape != (self.segment.size,):
                raise ValueError(
                    f"coefficient vector has shape {self.coefficients.shape}, "
                    f"expected ({self.segment.size},)"
                )
        if self.payload is not None:
            self.payload = gf256.as_vector(self.payload)

    @property
    def is_coded(self) -> bool:
        """True when the block carries an explicit encoding vector."""
        return self.coefficients is not None

    def __repr__(self) -> str:
        kind = "rlnc" if self.is_coded else "abstract"
        return (
            f"CodedBlock(segment={self.segment.segment_id}, kind={kind}, "
            f"t={self.created_at:.3f}, alive={self.alive})"
        )


def make_source_blocks(
    segment: SegmentDescriptor,
    payloads: Optional[Vector] = None,
    created_at: Optional[float] = None,
) -> List[CodedBlock]:
    """Create the ``s`` systematic (identity-coded) blocks of a new segment.

    When the source injects a segment it holds the original blocks
    themselves; in coded form those are unit coefficient vectors.  *payloads*
    is an optional ``(s, payload_len)`` array of original data rows.
    """
    if payloads is not None:
        payloads = np.atleast_2d(np.asarray(payloads)).astype(np.uint8)
        if payloads.shape[0] != segment.size:
            raise ValueError(
                f"expected {segment.size} payload rows, got {payloads.shape[0]}"
            )
    when = segment.injected_at if created_at is None else created_at
    blocks: List[CodedBlock] = []
    for index in range(segment.size):
        unit = np.zeros(segment.size, dtype=np.uint8)
        unit[index] = 1
        blocks.append(
            CodedBlock(
                segment=segment,
                coefficients=unit,
                payload=None if payloads is None else payloads[index].copy(),
                created_at=when,
            )
        )
    return blocks


def make_abstract_blocks(
    segment: SegmentDescriptor,
    count: Optional[int] = None,
    created_at: Optional[float] = None,
) -> List[CodedBlock]:
    """Create *count* coefficient-free blocks (edges of the bipartite graph)."""
    n = segment.size if count is None else count
    if n < 0:
        raise ValueError(f"block count must be >= 0, got {n}")
    when = segment.injected_at if created_at is None else created_at
    return [CodedBlock(segment=segment, created_at=when) for _ in range(n)]
