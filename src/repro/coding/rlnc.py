"""Random linear network coding: recoding at holders, decoding at servers.

Implements the coding operations of Sec. 2:

- a holder of ``l <= s`` coded blocks of a segment re-encodes by drawing
  ``l`` random coefficients in GF(2^8) and emitting the combination
  ``x = sum_j c_j * b_j`` (:func:`recode`),
- the coefficients embedded in block headers are maintained with respect to
  the *original* blocks, so recoding composes: the emitted block's header
  vector is the same linear combination of the input headers,
- a :class:`SegmentDecoder` (thin wrapper over
  :class:`repro.coding.linalg.IncrementalDecoder`) accumulates blocks until
  ``s`` linearly independent ones arrive and then reconstructs the original
  payloads.

Randomness is injected explicitly (``numpy.random.Generator`` or
``random.Random``); nothing in this module touches global RNG state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.coding import gf256
from repro.coding.block import CodedBlock, SegmentDescriptor
from repro.coding.gf256 import Vector
from repro.coding.linalg import DecoderSnapshot, IncrementalDecoder

#: Either RNG flavour the codec accepts; draws are routed by isinstance.
RngLike = Union[np.random.Generator, random.Random]


def _draw_coefficients(rng: RngLike, count: int) -> Vector:
    """Draw *count* uniform GF(256) coefficients, rejecting the all-zero draw.

    An all-zero combination would emit the zero block, which carries no
    information; resampling keeps the output distribution uniform over the
    remaining 256^count - 1 vectors.
    """
    if count < 1:
        raise ValueError(f"cannot draw coefficients for {count} blocks")
    while True:
        coeffs: Vector
        if isinstance(rng, np.random.Generator):
            coeffs = rng.integers(0, 256, size=count, dtype=np.uint8)
        else:
            coeffs = np.array(
                [rng.randrange(256) for _ in range(count)], dtype=np.uint8
            )
        if coeffs.any():
            return coeffs


def recode(
    blocks: Sequence[CodedBlock], rng: RngLike, created_at: float = 0.0
) -> CodedBlock:
    """Produce one new coded block from the holder's *blocks* of a segment.

    All inputs must be live coded blocks of the same segment.  The output's
    header coefficients are expressed over the segment's original blocks, and
    its payload (if the inputs carry payloads) is the matching combination of
    the input payloads.
    """
    if not blocks:
        raise ValueError("cannot recode from an empty block set")
    segment = blocks[0].segment
    for block in blocks:
        if block.segment is not segment and block.segment != segment:
            raise ValueError("recode inputs must belong to a single segment")
        if not block.is_coded:
            raise ValueError("recode requires explicit coefficient vectors")
    local = _draw_coefficients(rng, len(blocks))
    # One batched gather-XOR over all input rows (vec_addmul_rows) instead
    # of a Python loop of per-block axpys.
    header_rows = np.stack(
        [block.coefficients for block in blocks if block.coefficients is not None]
    )
    coefficients = gf256.combine_rows(header_rows, local)
    payload: Optional[Vector] = None
    first_payload = blocks[0].payload
    if first_payload is not None and all(
        block.payload is not None for block in blocks
    ):
        payload_rows = np.stack(
            [block.payload for block in blocks if block.payload is not None]
        )
        payload = gf256.combine_rows(payload_rows, local)
    return CodedBlock(
        segment=segment,
        coefficients=coefficients,
        payload=payload,
        created_at=created_at,
    )


def encode_from_source(
    segment: SegmentDescriptor,
    payloads: Vector,
    rng: RngLike,
    created_at: float = 0.0,
) -> CodedBlock:
    """Encode one coded block directly from a segment's original payloads."""
    payloads = np.atleast_2d(np.asarray(payloads)).astype(np.uint8)
    if payloads.shape[0] != segment.size:
        raise ValueError(
            f"expected {segment.size} original rows, got {payloads.shape[0]}"
        )
    coefficients = _draw_coefficients(rng, segment.size)
    payload = gf256.combine_rows(payloads, coefficients)
    return CodedBlock(
        segment=segment,
        coefficients=coefficients,
        payload=payload,
        created_at=created_at,
    )


class SegmentDecoder:
    """Server-side accumulator of coded blocks for one segment.

    Wraps :class:`IncrementalDecoder` with block-level bookkeeping: counts of
    offered/innovative/redundant blocks and completion timestamping, which the
    collection metrics read directly.
    """

    def __init__(self, segment: SegmentDescriptor) -> None:
        self.segment = segment
        self._decoder = IncrementalDecoder(segment.size)
        self.offered = 0
        self.redundant = 0
        self.completed_at: Optional[float] = None

    @property
    def rank(self) -> int:
        """Linearly independent blocks collected so far."""
        return self._decoder.rank

    @property
    def is_complete(self) -> bool:
        """True once the segment is decodable at the servers."""
        return self._decoder.is_complete

    def offer(self, block: CodedBlock, now: float) -> bool:
        """Feed one received coded block; return True iff it was innovative."""
        if block.segment.segment_id != self.segment.segment_id:
            raise ValueError(
                f"block of segment {block.segment.segment_id} offered to "
                f"decoder of segment {self.segment.segment_id}"
            )
        if not block.is_coded:
            raise ValueError("SegmentDecoder requires coded blocks")
        assert block.coefficients is not None  # is_coded guarantees this
        self.offered += 1
        innovative = self._decoder.add(block.coefficients, block.payload)
        if not innovative:
            self.redundant += 1
        elif self.is_complete and self.completed_at is None:
            self.completed_at = now
        return innovative

    def decode(self) -> Vector:
        """Reconstruct the original payload rows; see IncrementalDecoder."""
        return self._decoder.decode()

    def snapshot(self) -> "SegmentDecoderSnapshot":
        """Serialize decoder state plus block-level bookkeeping."""
        return SegmentDecoderSnapshot(
            segment=self.segment,
            offered=self.offered,
            redundant=self.redundant,
            completed_at=self.completed_at,
            decoder=self._decoder.snapshot(),
        )

    @classmethod
    def from_snapshot(
        cls, snap: "SegmentDecoderSnapshot"
    ) -> "SegmentDecoder":
        """Rebuild a segment decoder byte-identical to the snapshot."""
        if snap.decoder.size != snap.segment.size:
            raise ValueError(
                f"snapshot decoder size {snap.decoder.size} != segment "
                f"size {snap.segment.size}"
            )
        restored = cls(snap.segment)
        restored._decoder = IncrementalDecoder.from_snapshot(snap.decoder)
        restored.offered = snap.offered
        restored.redundant = snap.redundant
        restored.completed_at = snap.completed_at
        return restored


@dataclass(frozen=True)
class SegmentDecoderSnapshot:
    """Serialized :class:`SegmentDecoder` (one checkpoint journal entry)."""

    segment: SegmentDescriptor
    offered: int
    redundant: int
    completed_at: Optional[float]
    decoder: DecoderSnapshot


def rank_of_blocks(blocks: Sequence[CodedBlock]) -> int:
    """Rank of the coefficient vectors of *blocks* (0 for an empty list).

    Used by peers in full-RLNC mode to answer "how many linearly independent
    blocks of this segment do I hold?" after arbitrary TTL deletions.
    """
    vectors = [b.coefficients for b in blocks if b.coefficients is not None]
    if len(vectors) != len(blocks):
        raise ValueError("rank_of_blocks requires coded blocks")
    if not vectors:
        return 0
    from repro.coding.linalg import rank as matrix_rank

    return matrix_rank(np.stack(vectors))


def innovation_probability(
    holder_blocks: List[CodedBlock],
    receiver_matrix: Vector,
    rng: RngLike,
    trials: int = 200,
) -> float:
    """Monte-Carlo estimate that a recoded block is innovative to a receiver.

    Supports the E-ABL-CODE ablation: the paper (and our abstract mode)
    assumes every coded block is innovative whenever the receiver's rank is
    below ``s``; this measures how close real GF(2^8) coding comes.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    receiver_matrix = np.atleast_2d(receiver_matrix).astype(np.uint8)
    base = IncrementalDecoder(holder_blocks[0].segment.size)
    for row in receiver_matrix:
        if row.any():
            base.add(row)
    hits = 0
    for _ in range(trials):
        candidate = recode(holder_blocks, rng)
        assert candidate.coefficients is not None  # recode always sets them
        if base.would_be_innovative(candidate.coefficients):
            hits += 1
    return hits / trials
