"""Arithmetic in the Galois field GF(2^8).

The paper's random linear code operates on byte symbols in GF(2^8) (Sec. 2:
"a coded block b from segment i is a linear combination ... in the Galois
field GF(2^8)").  This module implements the field from scratch:

- construction of exponential/logarithm tables over the AES polynomial
  ``x^8 + x^4 + x^3 + x + 1`` (0x11B) with generator 0x03,
- scalar ``add``/``sub``/``mul``/``div``/``inv``/``pow``,
- vectorized numpy operations used by the linear-algebra layer
  (:mod:`repro.coding.linalg`), where coefficient vectors are ``uint8`` arrays.

Addition in a binary extension field is XOR, so ``add`` and ``sub`` coincide.
Multiplication uses ``exp[(log a + log b) mod 255]``; the tables are built
once at import time by repeated multiplication by the generator, not copied
from any reference table.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np
import numpy.typing as npt

#: A GF(256) coefficient/payload vector: a ``uint8`` numpy array.
Vector = npt.NDArray[np.uint8]
#: Anything :func:`as_vector` accepts.
VectorLike = Union[Iterable[int], "npt.NDArray[np.generic]"]

#: Field order and characteristic-polynomial constants.
ORDER = 256
#: AES reduction polynomial x^8 + x^4 + x^3 + x + 1.
MODULUS = 0x11B
#: 0x03 = x + 1 is a primitive element modulo 0x11B.
GENERATOR = 0x03


def _build_tables() -> Tuple[npt.NDArray[np.int32], npt.NDArray[np.int32]]:
    """Construct exp/log tables by iterating ``g^k`` with carry-less reduction."""
    exp = np.zeros(512, dtype=np.int32)  # doubled to skip the mod-255 in mul
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        # Multiply `value` by the generator 0x03 = x + 1:  v*0x03 = (v<<1) ^ v,
        # reduced modulo the field polynomial when the degree-8 bit appears.
        shifted = value << 1
        if shifted & 0x100:
            shifted ^= MODULUS
        value = shifted ^ value
    if value != 1:
        raise AssertionError("generator 0x03 must have multiplicative order 255")
    exp[255:510] = exp[0:255]
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def validate_symbol(value: int) -> int:
    """Return *value* if it is a valid field element (0..255)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"GF(256) symbol must be an integer, got {value!r}")
    if not 0 <= int(value) < ORDER:
        raise ValueError(f"GF(256) symbol must lie in [0, 255], got {value!r}")
    return int(value)


def add(a: int, b: int) -> int:
    """Field addition (XOR)."""
    return validate_symbol(a) ^ validate_symbol(b)


def sub(a: int, b: int) -> int:
    """Field subtraction; identical to addition in characteristic 2."""
    return add(a, b)


def mul(a: int, b: int) -> int:
    """Field multiplication via log/exp tables."""
    a = validate_symbol(a)
    b = validate_symbol(b)
    if a == 0 or b == 0:
        return 0
    return int(EXP_TABLE[LOG_TABLE[a] + LOG_TABLE[b]])


def inv(a: int) -> int:
    """Multiplicative inverse; raises :class:`ZeroDivisionError` for 0."""
    a = validate_symbol(a)
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return int(EXP_TABLE[255 - LOG_TABLE[a]])


def div(a: int, b: int) -> int:
    """Field division ``a / b``; raises :class:`ZeroDivisionError` for b=0."""
    a = validate_symbol(a)
    b = validate_symbol(b)
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(EXP_TABLE[LOG_TABLE[a] - LOG_TABLE[b] + 255])


def power(a: int, exponent: int) -> int:
    """Field exponentiation ``a ** exponent`` for integer exponents.

    Negative exponents are defined through the inverse; ``0 ** 0 == 1`` by
    the usual empty-product convention, while ``0 ** n == 0`` for n > 0 and
    raises for n < 0.
    """
    a = validate_symbol(a)
    if not isinstance(exponent, (int, np.integer)) or isinstance(exponent, bool):
        raise ValueError(f"exponent must be an integer, got {exponent!r}")
    exponent = int(exponent)
    if a == 0:
        if exponent == 0:
            return 1
        if exponent < 0:
            raise ZeroDivisionError("0 cannot be raised to a negative power")
        return 0
    return int(EXP_TABLE[(LOG_TABLE[a] * exponent) % 255])


# ---------------------------------------------------------------------------
# Vectorized operations on uint8 numpy arrays.
# ---------------------------------------------------------------------------

def as_vector(values: VectorLike) -> Vector:
    """Coerce *values* into a ``uint8`` coefficient vector, validating range."""
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if array.dtype == np.uint8:
        copied: Vector = array.copy()
        return copied
    if array.size and (array.min() < 0 or array.max() > 255):
        raise ValueError("GF(256) vector entries must lie in [0, 255]")
    coerced: Vector = array.astype(np.uint8)
    return coerced


def vec_add(a: Vector, b: Vector) -> Vector:
    """Element-wise field addition of two uint8 arrays."""
    result: Vector = np.bitwise_xor(a, b)
    return result


def vec_scale(vector: Vector, scalar: int) -> Vector:
    """Multiply every entry of *vector* by the field scalar *scalar*."""
    scalar = validate_symbol(scalar)
    if scalar == 0:
        return np.zeros_like(vector)
    if scalar == 1:
        return vector.copy()
    logs = LOG_TABLE[vector.astype(np.int32)] + LOG_TABLE[scalar]
    result: Vector = EXP_TABLE[logs].astype(np.uint8)
    result[vector == 0] = 0
    return result


def vec_addmul(accumulator: Vector, vector: Vector, scalar: int) -> None:
    """In-place ``accumulator ^= scalar * vector`` (the axpy of GF(256))."""
    if accumulator.shape != vector.shape:
        raise ValueError(
            f"shape mismatch: accumulator {accumulator.shape} vs vector {vector.shape}"
        )
    np.bitwise_xor(accumulator, vec_scale(vector, scalar), out=accumulator)


def vec_mul(a: Vector, b: Vector) -> Vector:
    """Element-wise field multiplication of two uint8 arrays."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    logs = LOG_TABLE[a.astype(np.int32)] + LOG_TABLE[b.astype(np.int32)]
    result: Vector = EXP_TABLE[logs].astype(np.uint8)
    result[(a == 0) | (b == 0)] = 0
    return result


def mat_vec(matrix: Vector, vector: Vector) -> Vector:
    """GF(256) matrix-vector product (rows of *matrix* dot *vector*)."""
    matrix = np.atleast_2d(matrix)
    if matrix.shape[1] != vector.shape[0]:
        raise ValueError(
            f"dimension mismatch: matrix {matrix.shape} x vector {vector.shape}"
        )
    out = np.zeros(matrix.shape[0], dtype=np.uint8)
    for j in range(vector.shape[0]):
        scalar = int(vector[j])
        if scalar:
            vec_addmul(out, matrix[:, j], scalar)
    return out


def mat_mul(a: Vector, b: Vector) -> Vector:
    """GF(256) matrix-matrix product."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"dimension mismatch: {a.shape} x {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for k in range(a.shape[1]):
        column = a[:, k]
        row = b[k, :]
        nz_cols = np.nonzero(row)[0]
        for j in nz_cols:
            vec_addmul(out[:, j], column, int(row[j]))
    return out
