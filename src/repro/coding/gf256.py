"""Arithmetic in the Galois field GF(2^8).

The paper's random linear code operates on byte symbols in GF(2^8) (Sec. 2:
"a coded block b from segment i is a linear combination ... in the Galois
field GF(2^8)").  This module implements the field from scratch:

- construction of exponential/logarithm tables over the AES polynomial
  ``x^8 + x^4 + x^3 + x + 1`` (0x11B) with generator 0x03,
- scalar ``add``/``sub``/``mul``/``div``/``inv``/``pow``,
- vectorized numpy kernels used by the linear-algebra layer
  (:mod:`repro.coding.linalg`), where coefficient vectors are ``uint8``
  arrays.

Addition in a binary extension field is XOR, so ``add`` and ``sub`` coincide.

Kernel design (the hot path of every simulated coding operation): a full
256x256 ``uint8`` multiplication table (:data:`MUL_TABLE`, 64 KiB — it lives
comfortably in L1/L2 cache) is precomputed at import from the exp/log
tables.  Every vector kernel is then a *single table gather* —
``MUL_TABLE[scalar][vector]`` — followed by an XOR, with no ``int32`` log
temporaries, no post-hoc zero-masking (row 0 and column 0 of the table are
already zero), and no per-call allocation on the axpy path (a reusable
module-level scratch buffer backs :func:`vec_addmul`).  Batched kernels
(:func:`vec_addmul_rows`, :func:`rows_addmul`, :func:`combine_rows`) fold
whole elimination passes into one gather + XOR-reduce, which is what makes
the incremental decoder's per-block cost a handful of numpy calls instead
of a Python loop over pivot rows.

The module is deliberately not thread-safe (the scratch buffer is shared);
the simulator is single-threaded by design.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union, cast

import numpy as np
import numpy.typing as npt

#: A GF(256) coefficient/payload vector: a ``uint8`` numpy array.
Vector = npt.NDArray[np.uint8]
#: Anything :func:`as_vector` accepts.
VectorLike = Union[Iterable[int], "npt.NDArray[np.generic]"]

#: Field order and characteristic-polynomial constants.
ORDER = 256
#: AES reduction polynomial x^8 + x^4 + x^3 + x + 1.
MODULUS = 0x11B
#: 0x03 = x + 1 is a primitive element modulo 0x11B.
GENERATOR = 0x03


def _build_tables() -> Tuple[npt.NDArray[np.int32], npt.NDArray[np.int32]]:
    """Construct exp/log tables by iterating ``g^k`` with carry-less reduction."""
    exp = np.zeros(512, dtype=np.int32)  # doubled to skip the mod-255 in mul
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        # Multiply `value` by the generator 0x03 = x + 1:  v*0x03 = (v<<1) ^ v,
        # reduced modulo the field polynomial when the degree-8 bit appears.
        shifted = value << 1
        if shifted & 0x100:
            shifted ^= MODULUS
        value = shifted ^ value
    if value != 1:
        raise AssertionError("generator 0x03 must have multiplicative order 255")
    exp[255:510] = exp[0:255]
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def _build_mul_table() -> Vector:
    """Tabulate the full 256x256 product table from the exp/log tables.

    Row/column 0 stay zero, so kernels need no zero-masking: a gather
    through the table is the complete field multiplication.
    """
    table = np.zeros((ORDER, ORDER), dtype=np.uint8)
    logs = LOG_TABLE[1:ORDER]
    # log a + log b <= 508 < 510, inside the doubled exp table.
    table[1:, 1:] = EXP_TABLE[logs[:, None] + logs[None, :]].astype(np.uint8)
    return table


#: Flat multiplication table: ``MUL_TABLE[a, b] == mul(a, b)`` (64 KiB).
MUL_TABLE: Vector = _build_mul_table()


def validate_symbol(value: int) -> int:
    """Return *value* if it is a valid field element (0..255)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"GF(256) symbol must be an integer, got {value!r}")
    if not 0 <= int(value) < ORDER:
        raise ValueError(f"GF(256) symbol must lie in [0, 255], got {value!r}")
    return int(value)


def add(a: int, b: int) -> int:
    """Field addition (XOR)."""
    return validate_symbol(a) ^ validate_symbol(b)


def sub(a: int, b: int) -> int:
    """Field subtraction; identical to addition in characteristic 2."""
    return add(a, b)


def mul(a: int, b: int) -> int:
    """Field multiplication via log/exp tables."""
    a = validate_symbol(a)
    b = validate_symbol(b)
    if a == 0 or b == 0:
        return 0
    return int(EXP_TABLE[LOG_TABLE[a] + LOG_TABLE[b]])


def inv(a: int) -> int:
    """Multiplicative inverse; raises :class:`ZeroDivisionError` for 0."""
    a = validate_symbol(a)
    if a == 0:
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return int(EXP_TABLE[255 - LOG_TABLE[a]])


def div(a: int, b: int) -> int:
    """Field division ``a / b``; raises :class:`ZeroDivisionError` for b=0."""
    a = validate_symbol(a)
    b = validate_symbol(b)
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(EXP_TABLE[LOG_TABLE[a] - LOG_TABLE[b] + 255])


def power(a: int, exponent: int) -> int:
    """Field exponentiation ``a ** exponent`` for integer exponents.

    Negative exponents are defined through the inverse; ``0 ** 0 == 1`` by
    the usual empty-product convention, while ``0 ** n == 0`` for n > 0 and
    raises for n < 0.
    """
    a = validate_symbol(a)
    if not isinstance(exponent, (int, np.integer)) or isinstance(exponent, bool):
        raise ValueError(f"exponent must be an integer, got {exponent!r}")
    exponent = int(exponent)
    if a == 0:
        if exponent == 0:
            return 1
        if exponent < 0:
            raise ZeroDivisionError("0 cannot be raised to a negative power")
        return 0
    return int(EXP_TABLE[(LOG_TABLE[a] * exponent) % 255])


# ---------------------------------------------------------------------------
# Vectorized operations on uint8 numpy arrays.
# ---------------------------------------------------------------------------

#: Reusable gather buffers for the allocation-free axpy path, keyed by
#: length.  The simulation uses a handful of vector lengths (segment sizes
#: and payload widths), so the cache stays tiny; it is cleared if it ever
#: grows past ``_SCRATCH_LIMIT`` distinct lengths.
_SCRATCH: Dict[int, Vector] = {}
_SCRATCH_LIMIT = 16


def _scratch(length: int) -> Vector:
    buffer = _SCRATCH.get(length)
    if buffer is None:
        if len(_SCRATCH) >= _SCRATCH_LIMIT:
            _SCRATCH.clear()
        buffer = np.empty(length, dtype=np.uint8)
        _SCRATCH[length] = buffer
    return buffer


def as_vector(values: VectorLike, copy: bool = True) -> Vector:
    """Coerce *values* into a ``uint8`` coefficient vector, validating range.

    With ``copy=True`` (the default) the result always owns its memory, so
    callers may mutate it freely.  ``copy=False`` returns ``uint8`` ndarray
    inputs as-is — the zero-copy fast path for read-only callers such as
    the incremental decoder, which copies during reduction anyway.
    """
    array: npt.NDArray[np.generic]
    if isinstance(values, np.ndarray):
        array = values
    elif isinstance(values, (list, tuple)):
        array = np.asarray(values)
    else:
        array = np.asarray(list(values))
    if array.dtype == np.uint8:
        if copy:
            return array.copy()
        return cast(Vector, array)
    if array.size and (array.min() < 0 or array.max() > 255):
        raise ValueError("GF(256) vector entries must lie in [0, 255]")
    coerced: Vector = array.astype(np.uint8)  # astype always copies here
    return coerced


def vec_add(a: Vector, b: Vector) -> Vector:
    """Element-wise field addition of two uint8 arrays."""
    result: Vector = np.bitwise_xor(a, b)
    return result


def vec_scale(vector: Vector, scalar: int, out: Optional[Vector] = None) -> Vector:
    """Multiply every entry of *vector* by the field scalar *scalar*.

    A single gather through the scalar's :data:`MUL_TABLE` row; ``out``
    (which must not alias *vector*) receives the result in place.
    """
    scalar = validate_symbol(scalar)
    row = MUL_TABLE[scalar]
    if out is None:
        result: Vector = row[vector]
        return result
    # mode='clip' skips bounds checking; uint8 indices into a 256-entry
    # table row are always in range.
    row.take(vector, out=out, mode="clip")
    return out


def vec_addmul(accumulator: Vector, vector: Vector, scalar: int) -> None:
    """In-place ``accumulator ^= scalar * vector`` (the axpy of GF(256)).

    One table gather into a reused scratch buffer plus one in-place XOR —
    no temporaries are allocated for 1-d operands.
    """
    if accumulator.shape != vector.shape:
        raise ValueError(
            f"shape mismatch: accumulator {accumulator.shape} vs vector {vector.shape}"
        )
    scalar = validate_symbol(scalar)
    if scalar == 0:
        return  # adds the zero vector
    row = MUL_TABLE[scalar]
    if vector.ndim == 1:
        buffer = _scratch(vector.shape[0])
        # mode='clip' skips bounds checking; uint8 indices into a 256-entry
        # table row are always in range.
        row.take(vector, out=buffer, mode="clip")
        np.bitwise_xor(accumulator, buffer, out=accumulator)
    else:
        np.bitwise_xor(accumulator, row[vector], out=accumulator)


def vec_addmul_rows(accumulator: Vector, rows: Vector, scalars: Vector) -> None:
    """Batched axpy: ``accumulator ^= XOR_i scalars[i] * rows[i]``.

    *rows* is ``(r, n)``, *scalars* ``(r,)``, *accumulator* ``(n,)``.  One
    broadcast gather builds all scaled rows at once; zero scalars contribute
    nothing because table row 0 is zero.  This is the whole elimination pass
    of the incremental decoder.
    """
    if rows.ndim != 2 or rows.shape[0] != scalars.shape[0]:
        raise ValueError(
            f"rows {rows.shape} and scalars {scalars.shape} do not align"
        )
    if rows.shape[1] != accumulator.shape[0]:
        raise ValueError(
            f"rows {rows.shape} do not match accumulator {accumulator.shape}"
        )
    if not scalars.any():
        return
    products = MUL_TABLE[scalars[:, None], rows]
    np.bitwise_xor(
        accumulator,
        np.bitwise_xor.reduce(products, axis=0),
        out=accumulator,
    )


def rows_addmul(rows: Vector, vector: Vector, scalars: Vector) -> None:
    """Batched row update: ``rows[i] ^= scalars[i] * vector`` for every i.

    The outer-product gather used for Gauss-Jordan back-elimination: one
    new pivot row is folded into all stored rows in a single pass.
    """
    if rows.ndim != 2 or rows.shape[0] != scalars.shape[0]:
        raise ValueError(
            f"rows {rows.shape} and scalars {scalars.shape} do not align"
        )
    if rows.shape[1] != vector.shape[0]:
        raise ValueError(f"rows {rows.shape} do not match vector {vector.shape}")
    if not scalars.any():
        return
    products = MUL_TABLE[scalars[:, None], vector[None, :]]
    np.bitwise_xor(rows, products, out=rows)


def combine_rows(rows: Vector, scalars: Vector) -> Vector:
    """Return the linear combination ``XOR_i scalars[i] * rows[i]``.

    The coding primitive behind re-encoding: a fresh ``(n,)`` vector from
    ``(r, n)`` rows and ``(r,)`` coefficients.
    """
    if rows.ndim != 2 or rows.shape[0] != scalars.shape[0]:
        raise ValueError(
            f"rows {rows.shape} and scalars {scalars.shape} do not align"
        )
    out = np.zeros(rows.shape[1], dtype=np.uint8)
    vec_addmul_rows(out, rows, scalars)
    return out


def vec_mul(a: Vector, b: Vector) -> Vector:
    """Element-wise field multiplication of two uint8 arrays."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    result: Vector = MUL_TABLE[a, b]
    return result


def mat_vec(matrix: Vector, vector: Vector) -> Vector:
    """GF(256) matrix-vector product (rows of *matrix* dot *vector*)."""
    matrix = np.atleast_2d(matrix)
    if matrix.shape[1] != vector.shape[0]:
        raise ValueError(
            f"dimension mismatch: matrix {matrix.shape} x vector {vector.shape}"
        )
    if matrix.shape[1] == 0:
        return np.zeros(matrix.shape[0], dtype=np.uint8)
    products = MUL_TABLE[matrix, vector[None, :]]
    result: Vector = np.bitwise_xor.reduce(products, axis=1)
    return result


#: Element budget for one mat_mul broadcast; larger products are chunked
#: over the contraction axis to bound peak memory at ~4 MiB per step.
_MAT_MUL_CHUNK_ELEMS = 1 << 22


def mat_mul(a: Vector, b: Vector) -> Vector:
    """GF(256) matrix-matrix product."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"dimension mismatch: {a.shape} x {b.shape}")
    m, k = a.shape
    p = b.shape[1]
    out = np.zeros((m, p), dtype=np.uint8)
    if k == 0:
        return out
    step = max(1, _MAT_MUL_CHUNK_ELEMS // max(1, m * p))
    for start in range(0, k, step):
        stop = min(k, start + step)
        products = MUL_TABLE[a[:, start:stop, None], b[None, start:stop, :]]
        np.bitwise_xor(
            out, np.bitwise_xor.reduce(products, axis=1), out=out
        )
    return out
