"""Linear algebra over GF(2^8) for RLNC encoding and decoding.

Two styles of elimination are provided:

- batch helpers (:func:`rank`, :func:`rref`, :func:`solve`, :func:`invert`)
  over ``uint8`` numpy matrices, used by tests and by offline decoding, and
- :class:`IncrementalDecoder`, a progressive Gauss-Jordan eliminator that
  accepts one coded block at a time and answers the question the protocol
  actually asks: *is this block innovative?*  Servers (and, in full-RLNC
  mode, peers) keep one instance per segment.

The paper notes that decoding a segment of ``s`` blocks costs about ``O(s)``
operations per input block once blocks arrive; the incremental decoder has
exactly that per-block profile (one elimination pass against at most ``s``
pivot rows), and the pass itself is a *single batched gather-scale-XOR*
(:func:`repro.coding.gf256.vec_addmul_rows`) rather than a Python loop.

Equivalence of the batched pass with sequential elimination: stored pivot
rows are kept mutually Gauss-Jordan reduced, i.e. ``row_i[pivot_col_j] ==
(1 if i == j else 0)``.  Eliminating with ``row_i`` therefore never changes
the incoming vector's entry at any *other* pivot column, so the elimination
factors gathered up-front equal the factors the sequential loop would read
one at a time, and XOR accumulation commutes — the batched result is
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.coding import gf256
from repro.coding.gf256 import Vector, VectorLike


@dataclass(frozen=True)
class DecoderSnapshot:
    """Bit-exact serialized state of an :class:`IncrementalDecoder`.

    The live checkpoint layer persists these across server restarts; the
    round-trip contract is that ``IncrementalDecoder.from_snapshot(d.snapshot())``
    reproduces rank, pivot columns, the reduced coefficient rows, and the
    payload rows byte for byte (the restart-loses-no-rank property test
    pins this down).
    """

    size: int
    payload_length: Optional[int]
    pivot_cols: Tuple[int, ...]
    has_payload: Tuple[bool, ...]
    matrix_rows: bytes
    payload_rows: bytes


def _as_matrix(matrix: VectorLike) -> Vector:
    array = np.atleast_2d(np.asarray(matrix))
    if array.size and (array.min() < 0 or array.max() > 255):
        raise ValueError("GF(256) matrix entries must lie in [0, 255]")
    coerced: Vector = array.astype(np.uint8)
    return coerced


def rref(matrix: VectorLike) -> Tuple[Vector, List[int]]:
    """Reduced row-echelon form of *matrix* over GF(256).

    Returns ``(reduced, pivot_columns)``.  The input is not modified.
    Pivot search is a vectorized ``np.nonzero`` over the column slice and
    elimination is one batched :func:`repro.coding.gf256.rows_addmul` pass
    per pivot instead of a Python loop over rows.
    """
    work = _as_matrix(matrix).copy()
    n_rows, n_cols = work.shape
    pivot_cols: List[int] = []
    row = 0
    for col in range(n_cols):
        if row >= n_rows:
            break
        candidates = np.nonzero(work[row:, col])[0]
        if candidates.size == 0:
            continue
        pivot_row = row + int(candidates[0])
        if pivot_row != row:
            work[[row, pivot_row]] = work[[pivot_row, row]]
        pivot_value = int(work[row, col])
        if pivot_value != 1:
            work[row] = gf256.vec_scale(work[row], gf256.inv(pivot_value))
        factors = work[:, col].copy()
        factors[row] = 0
        gf256.rows_addmul(work, work[row], factors)
        pivot_cols.append(col)
        row += 1
    return work, pivot_cols


def rank(matrix: VectorLike) -> int:
    """Rank of *matrix* over GF(256)."""
    _, pivots = rref(matrix)
    return len(pivots)


def is_invertible(matrix: VectorLike) -> bool:
    """True iff *matrix* is square and full-rank over GF(256)."""
    array = _as_matrix(matrix)
    return array.shape[0] == array.shape[1] and rank(array) == array.shape[0]


def solve(matrix: VectorLike, rhs: VectorLike) -> Vector:
    """Solve ``matrix @ x = rhs`` over GF(256) for square full-rank systems.

    *rhs* may be a vector or a matrix of stacked right-hand sides.  Raises
    :class:`ValueError` for non-square or singular systems.
    """
    a = _as_matrix(matrix)
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"solve requires a square matrix, got {a.shape}")
    b: Vector = np.asarray(rhs).astype(np.uint8)
    rhs_was_vector = b.ndim == 1
    if rhs_was_vector:
        b = b.reshape(-1, 1)
    if b.shape[0] != a.shape[0]:
        raise ValueError(f"rhs has {b.shape[0]} rows, expected {a.shape[0]}")
    augmented = np.concatenate([a, b], axis=1)
    reduced, pivots = rref(augmented)
    if pivots[: a.shape[0]] != list(range(a.shape[0])) or len(pivots) != a.shape[0]:
        raise ValueError("matrix is singular over GF(256)")
    solution = reduced[:, a.shape[1]:]
    return solution[:, 0] if rhs_was_vector else solution


def invert(matrix: VectorLike) -> Vector:
    """Matrix inverse over GF(256); raises :class:`ValueError` if singular."""
    a = _as_matrix(matrix)
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"invert requires a square matrix, got {a.shape}")
    identity = np.eye(a.shape[0], dtype=np.uint8)
    return solve(a, identity)


class IncrementalDecoder:
    """Progressive Gauss-Jordan elimination over GF(256).

    Collects coded blocks ``(coefficients, payload)`` for one segment of
    *size* original blocks.  Each offered block is reduced against the pivot
    rows accumulated so far; a block that reduces to zero is *redundant* and
    rejected, otherwise it becomes a new pivot row.  Once ``size`` pivot rows
    exist the original payloads are recoverable via back-substitution.

    Payloads are optional: the protocol simulators often track only
    coefficient vectors (rank evolution) without carrying data bytes.

    Storage invariants (the zero-copy design): the ``size x size``
    coefficient matrix is preallocated at construction and rows
    ``[0, rank)`` are the live pivot rows in insertion order — no array is
    ever reallocated or vstacked per insert.  The payload matrix is
    allocated once, lazily, when the first payload arrives; a boolean mask
    records which rows carry payloads so mixed streams behave exactly like
    the original list-of-optionals implementation.
    """

    def __init__(self, size: int, payload_length: Optional[int] = None) -> None:
        if size < 1:
            raise ValueError(f"segment size must be >= 1, got {size}")
        self.size = size
        self.payload_length = payload_length
        # Preallocated pivot-row storage; rows [0, _rank) are live.
        self._matrix: Vector = np.zeros((size, size), dtype=np.uint8)
        self._payload_matrix: Optional[Vector] = None
        self._has_payload = np.zeros(size, dtype=bool)
        # pivot column of each stored row, in insertion order
        self._pivot_cols: List[int] = []
        self._pivot_array = np.zeros(size, dtype=np.intp)
        self._rank = 0

    @property
    def rank(self) -> int:
        """Number of linearly independent blocks received so far."""
        return self._rank

    @property
    def is_complete(self) -> bool:
        """True once the full segment can be decoded."""
        return self._rank == self.size

    def needs_more(self) -> bool:
        """True while additional innovative blocks are still useful."""
        return not self.is_complete

    def would_be_innovative(self, coefficients: Vector) -> bool:
        """Check innovation without mutating the decoder state."""
        reduced, _ = self._reduce(gf256.as_vector(coefficients, copy=False), None)
        return bool(reduced.any())

    def add(
        self,
        coefficients: VectorLike,
        payload: Optional[VectorLike] = None,
    ) -> bool:
        """Offer one coded block; return ``True`` iff it was innovative.

        *coefficients* is the length-``size`` encoding vector over the
        original blocks; *payload* is the coded data (optional, but must be
        consistently present or absent across calls if decoding is desired).
        """
        # copy=False: _reduce copies before mutating, so no defensive copy.
        vector = gf256.as_vector(coefficients, copy=False)
        if vector.shape != (self.size,):
            raise ValueError(
                f"coefficient vector has shape {vector.shape}, expected ({self.size},)"
            )
        data: Optional[Vector] = None
        if payload is not None:
            data = gf256.as_vector(payload, copy=False)
            if self.payload_length is None:
                self.payload_length = int(data.shape[0])
            elif data.shape[0] != self.payload_length:
                raise ValueError(
                    f"payload length {data.shape[0]} != expected {self.payload_length}"
                )
        reduced_vec, reduced_payload = self._reduce(vector, data)
        if not reduced_vec.any():
            return False
        self._insert(reduced_vec, reduced_payload)
        return True

    def decode(self) -> Vector:
        """Recover the original payload matrix (one row per original block).

        Raises :class:`ValueError` if the segment is incomplete or payloads
        were not supplied with the coded blocks.
        """
        if not self.is_complete:
            raise ValueError(
                f"segment not decodable: rank {self.rank} < size {self.size}"
            )
        payloads = self._payload_matrix
        if payloads is None or not bool(self._has_payload[: self._rank].all()):
            raise ValueError("cannot decode: coded blocks carried no payloads")
        # Rows are maintained in fully reduced (Gauss-Jordan) form, so after
        # sorting by pivot column the coefficient matrix is the identity and
        # the payloads *are* the original blocks.
        order = np.argsort(self._pivot_array[: self._rank])
        result: Vector = payloads[: self._rank][order].copy()
        return result

    def coefficient_matrix(self) -> Vector:
        """Copy of the current reduced coefficient rows (for inspection)."""
        return self._matrix[: self._rank].copy()

    def snapshot(self) -> DecoderSnapshot:
        """Serialize the live rows to a :class:`DecoderSnapshot`."""
        r = self._rank
        payload_rows = b""
        if self._payload_matrix is not None:
            payload_rows = self._payload_matrix[:r].tobytes()
        return DecoderSnapshot(
            size=self.size,
            payload_length=self.payload_length,
            pivot_cols=tuple(self._pivot_cols),
            has_payload=tuple(bool(flag) for flag in self._has_payload[:r]),
            matrix_rows=self._matrix[:r].tobytes(),
            payload_rows=payload_rows,
        )

    @classmethod
    def from_snapshot(cls, snap: DecoderSnapshot) -> "IncrementalDecoder":
        """Rebuild a decoder whose state is byte-identical to the snapshot."""
        decoder = cls(snap.size, snap.payload_length)
        r = len(snap.pivot_cols)
        if r > snap.size:
            raise ValueError(
                f"snapshot rank {r} exceeds segment size {snap.size}"
            )
        if len(snap.has_payload) != r:
            raise ValueError(
                f"snapshot has {len(snap.has_payload)} payload flags "
                f"for rank {r}"
            )
        if len(snap.matrix_rows) != r * snap.size:
            raise ValueError(
                f"snapshot matrix is {len(snap.matrix_rows)} byte(s), "
                f"expected {r * snap.size}"
            )
        if r:
            decoder._matrix[:r] = np.frombuffer(
                snap.matrix_rows, dtype=np.uint8
            ).reshape(r, snap.size)
            decoder._pivot_cols = list(snap.pivot_cols)
            decoder._pivot_array[:r] = np.asarray(
                snap.pivot_cols, dtype=np.intp
            )
            decoder._has_payload[:r] = snap.has_payload
            decoder._rank = r
        if snap.payload_rows:
            length = snap.payload_length
            if length is None or length <= 0:
                raise ValueError(
                    "snapshot carries payload rows without a payload_length"
                )
            if len(snap.payload_rows) != r * length:
                raise ValueError(
                    f"snapshot payloads are {len(snap.payload_rows)} "
                    f"byte(s), expected {r * length}"
                )
            payload_matrix: Vector = np.zeros(
                (snap.size, length), dtype=np.uint8
            )
            if r:
                payload_matrix[:r] = np.frombuffer(
                    snap.payload_rows, dtype=np.uint8
                ).reshape(r, length)
            decoder._payload_matrix = payload_matrix
        return decoder

    # -- internals ---------------------------------------------------------

    def _reduce(
        self,
        vector: Vector,
        payload: Optional[Vector],
    ) -> Tuple[Vector, Optional[Vector]]:
        """Eliminate *vector* (and its payload) against the stored rows.

        One batched gather-scale-XOR pass over all pivot rows.  Gathering
        the elimination factors up-front is exact because stored rows are
        mutually reduced (see the module docstring).
        """
        vec = vector.copy()
        data = payload.copy() if payload is not None else None
        r = self._rank
        if r:
            factors = vec[self._pivot_array[:r]]
            if factors.any():
                gf256.vec_addmul_rows(vec, self._matrix[:r], factors)
                if data is not None and self._payload_matrix is not None:
                    payload_factors = factors.copy()
                    payload_factors[~self._has_payload[:r]] = 0
                    gf256.vec_addmul_rows(
                        data, self._payload_matrix[:r], payload_factors
                    )
        return vec, data

    def _insert(self, vector: Vector, payload: Optional[Vector]) -> None:
        """Normalize the reduced *vector*, install it, and back-eliminate."""
        pivot_col = int(np.nonzero(vector)[0][0])
        pivot_value = int(vector[pivot_col])
        if pivot_value != 1:
            inverse = gf256.inv(pivot_value)
            vector = gf256.vec_scale(vector, inverse)
            if payload is not None:
                payload = gf256.vec_scale(payload, inverse)
        r = self._rank
        if r:
            # Back-substitute into existing rows so the basis stays
            # Gauss-Jordan reduced; this keeps `decode` trivial and
            # `_reduce` single-pass.  The factor column must be copied
            # before the in-place update zeroes it.
            factors = self._matrix[:r, pivot_col].copy()
            if factors.any():
                gf256.rows_addmul(self._matrix[:r], vector, factors)
                if payload is not None and self._payload_matrix is not None:
                    payload_factors = factors.copy()
                    payload_factors[~self._has_payload[:r]] = 0
                    gf256.rows_addmul(
                        self._payload_matrix[:r], payload, payload_factors
                    )
        self._matrix[r] = vector
        self._pivot_cols.append(pivot_col)
        self._pivot_array[r] = pivot_col
        if payload is not None:
            if self._payload_matrix is None:
                self._payload_matrix = np.zeros(
                    (self.size, payload.shape[0]), dtype=np.uint8
                )
            self._payload_matrix[r] = payload
            self._has_payload[r] = True
        self._rank = r + 1
