"""Linear algebra over GF(2^8) for RLNC encoding and decoding.

Two styles of elimination are provided:

- batch helpers (:func:`rank`, :func:`rref`, :func:`solve`, :func:`invert`)
  over ``uint8`` numpy matrices, used by tests and by offline decoding, and
- :class:`IncrementalDecoder`, a progressive Gauss-Jordan eliminator that
  accepts one coded block at a time and answers the question the protocol
  actually asks: *is this block innovative?*  Servers (and, in full-RLNC
  mode, peers) keep one instance per segment.

The paper notes that decoding a segment of ``s`` blocks costs about ``O(s)``
operations per input block once blocks arrive; the incremental decoder has
exactly that per-block profile (one elimination pass against at most ``s``
pivot rows).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.coding import gf256
from repro.coding.gf256 import Vector, VectorLike


def _as_matrix(matrix: VectorLike) -> Vector:
    array = np.atleast_2d(np.asarray(matrix))
    if array.size and (array.min() < 0 or array.max() > 255):
        raise ValueError("GF(256) matrix entries must lie in [0, 255]")
    coerced: Vector = array.astype(np.uint8)
    return coerced


def rref(matrix: VectorLike) -> Tuple[Vector, List[int]]:
    """Reduced row-echelon form of *matrix* over GF(256).

    Returns ``(reduced, pivot_columns)``.  The input is not modified.
    """
    work = _as_matrix(matrix).copy()
    n_rows, n_cols = work.shape
    pivot_cols: List[int] = []
    row = 0
    for col in range(n_cols):
        if row >= n_rows:
            break
        pivot_row = None
        for candidate in range(row, n_rows):
            if work[candidate, col]:
                pivot_row = candidate
                break
        if pivot_row is None:
            continue
        if pivot_row != row:
            work[[row, pivot_row]] = work[[pivot_row, row]]
        pivot_value = int(work[row, col])
        if pivot_value != 1:
            work[row] = gf256.vec_scale(work[row], gf256.inv(pivot_value))
        for other in range(n_rows):
            if other != row and work[other, col]:
                gf256.vec_addmul(work[other], work[row], int(work[other, col]))
        pivot_cols.append(col)
        row += 1
    return work, pivot_cols


def rank(matrix: VectorLike) -> int:
    """Rank of *matrix* over GF(256)."""
    _, pivots = rref(matrix)
    return len(pivots)


def is_invertible(matrix: VectorLike) -> bool:
    """True iff *matrix* is square and full-rank over GF(256)."""
    array = _as_matrix(matrix)
    return array.shape[0] == array.shape[1] and rank(array) == array.shape[0]


def solve(matrix: VectorLike, rhs: VectorLike) -> Vector:
    """Solve ``matrix @ x = rhs`` over GF(256) for square full-rank systems.

    *rhs* may be a vector or a matrix of stacked right-hand sides.  Raises
    :class:`ValueError` for non-square or singular systems.
    """
    a = _as_matrix(matrix)
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"solve requires a square matrix, got {a.shape}")
    b: Vector = np.asarray(rhs).astype(np.uint8)
    rhs_was_vector = b.ndim == 1
    if rhs_was_vector:
        b = b.reshape(-1, 1)
    if b.shape[0] != a.shape[0]:
        raise ValueError(f"rhs has {b.shape[0]} rows, expected {a.shape[0]}")
    augmented = np.concatenate([a, b], axis=1)
    reduced, pivots = rref(augmented)
    if pivots[: a.shape[0]] != list(range(a.shape[0])) or len(pivots) != a.shape[0]:
        raise ValueError("matrix is singular over GF(256)")
    solution = reduced[:, a.shape[1]:]
    return solution[:, 0] if rhs_was_vector else solution


def invert(matrix: VectorLike) -> Vector:
    """Matrix inverse over GF(256); raises :class:`ValueError` if singular."""
    a = _as_matrix(matrix)
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"invert requires a square matrix, got {a.shape}")
    identity = np.eye(a.shape[0], dtype=np.uint8)
    return solve(a, identity)


class IncrementalDecoder:
    """Progressive Gauss-Jordan elimination over GF(256).

    Collects coded blocks ``(coefficients, payload)`` for one segment of
    *size* original blocks.  Each offered block is reduced against the pivot
    rows accumulated so far; a block that reduces to zero is *redundant* and
    rejected, otherwise it becomes a new pivot row.  Once ``size`` pivot rows
    exist the original payloads are recoverable via back-substitution.

    Payloads are optional: the protocol simulators often track only
    coefficient vectors (rank evolution) without carrying data bytes.
    """

    def __init__(self, size: int, payload_length: Optional[int] = None) -> None:
        if size < 1:
            raise ValueError(f"segment size must be >= 1, got {size}")
        self.size = size
        self.payload_length = payload_length
        # Row-echelon coefficient rows and the matching (reduced) payloads.
        self._rows: Vector = np.zeros((0, size), dtype=np.uint8)
        self._payloads: List[Optional[Vector]] = []
        # pivot column of each stored row, kept sorted by construction
        self._pivot_cols: List[int] = []

    @property
    def rank(self) -> int:
        """Number of linearly independent blocks received so far."""
        return self._rows.shape[0]

    @property
    def is_complete(self) -> bool:
        """True once the full segment can be decoded."""
        return self.rank == self.size

    def needs_more(self) -> bool:
        """True while additional innovative blocks are still useful."""
        return not self.is_complete

    def would_be_innovative(self, coefficients: Vector) -> bool:
        """Check innovation without mutating the decoder state."""
        reduced, _ = self._reduce(coefficients, None)
        return bool(reduced.any())

    def add(
        self,
        coefficients: VectorLike,
        payload: Optional[VectorLike] = None,
    ) -> bool:
        """Offer one coded block; return ``True`` iff it was innovative.

        *coefficients* is the length-``size`` encoding vector over the
        original blocks; *payload* is the coded data (optional, but must be
        consistently present or absent across calls if decoding is desired).
        """
        vector = gf256.as_vector(coefficients)
        if vector.shape != (self.size,):
            raise ValueError(
                f"coefficient vector has shape {vector.shape}, expected ({self.size},)"
            )
        data: Optional[Vector] = None
        if payload is not None:
            data = gf256.as_vector(payload)
            if self.payload_length is None:
                self.payload_length = int(data.shape[0])
            elif data.shape[0] != self.payload_length:
                raise ValueError(
                    f"payload length {data.shape[0]} != expected {self.payload_length}"
                )
        reduced_vec, reduced_payload = self._reduce(vector, data)
        if not reduced_vec.any():
            return False
        self._insert(reduced_vec, reduced_payload)
        return True

    def decode(self) -> Vector:
        """Recover the original payload matrix (one row per original block).

        Raises :class:`ValueError` if the segment is incomplete or payloads
        were not supplied with the coded blocks.
        """
        if not self.is_complete:
            raise ValueError(
                f"segment not decodable: rank {self.rank} < size {self.size}"
            )
        payloads = [p for p in self._payloads if p is not None]
        if len(payloads) != len(self._payloads):
            raise ValueError("cannot decode: coded blocks carried no payloads")
        # Rows are maintained in fully reduced (Gauss-Jordan) form, so after
        # sorting by pivot column the coefficient matrix is the identity and
        # the payloads *are* the original blocks.
        order = np.argsort(self._pivot_cols)
        return np.stack([payloads[i] for i in order])

    def coefficient_matrix(self) -> Vector:
        """Copy of the current reduced coefficient rows (for inspection)."""
        return self._rows.copy()

    # -- internals ---------------------------------------------------------

    def _reduce(
        self,
        vector: Vector,
        payload: Optional[Vector],
    ) -> Tuple[Vector, Optional[Vector]]:
        """Eliminate *vector* (and its payload) against the stored rows."""
        vec = vector.copy()
        data = payload.copy() if payload is not None else None
        for row_idx, pivot_col in enumerate(self._pivot_cols):
            factor = int(vec[pivot_col])
            if factor:
                gf256.vec_addmul(vec, self._rows[row_idx], factor)
                if data is not None and self._payloads[row_idx] is not None:
                    gf256.vec_addmul(data, self._payloads[row_idx], factor)
        return vec, data

    def _insert(self, vector: Vector, payload: Optional[Vector]) -> None:
        """Normalize the reduced *vector*, install it, and back-eliminate."""
        pivot_col = int(np.nonzero(vector)[0][0])
        pivot_value = int(vector[pivot_col])
        if pivot_value != 1:
            inv = gf256.inv(pivot_value)
            vector = gf256.vec_scale(vector, inv)
            if payload is not None:
                payload = gf256.vec_scale(payload, inv)
        # Back-substitute into existing rows so the basis stays Gauss-Jordan
        # reduced; this keeps `decode` trivial and `_reduce` single-pass.
        for row_idx in range(len(self._pivot_cols)):
            factor = int(self._rows[row_idx, pivot_col])
            if factor:
                gf256.vec_addmul(self._rows[row_idx], vector, factor)
                existing = self._payloads[row_idx]
                if existing is not None and payload is not None:
                    gf256.vec_addmul(existing, payload, factor)
        self._rows = np.vstack([self._rows, vector])
        self._payloads.append(payload)
        self._pivot_cols.append(pivot_col)
