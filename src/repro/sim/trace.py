"""Structured event tracing for collection simulations.

Attach a :class:`Tracer` to a :class:`repro.core.system.CollectionSystem`
to capture the protocol's life events — injections, gossip transfers, TTL
expiries, departures, useful pulls, completions, losses — as structured
records.  Intended uses:

- debugging protocol changes (replay exactly what happened and when),
- producing event logs for external analysis (JSONL export),
- teaching: the quickstart-with-tracing recipe in the README shows a
  segment's life from injection through gossip spread to server decode.

Tracing is strictly opt-in: an untraced system performs zero tracing work.
The tracer can cap memory with a ring buffer and narrow capture to an
event-kind allowlist; per-kind counters always cover the full run even
when the ring has evicted old events.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Deque, Dict, FrozenSet, Iterable, List, Optional, Union

#: Canonical event kinds emitted by the instrumented system.
KIND_INJECT = "inject"
KIND_GOSSIP = "gossip"
KIND_EXPIRE = "expire"
KIND_DEPART = "depart"
KIND_COLLECT = "collect"
KIND_COMPLETE = "complete"
KIND_LOST = "lost"
#: Fault-channel event kinds (emitted only when fault injection is active).
KIND_DROP = "drop"
KIND_POLLUTED = "polluted"
KIND_OUTAGE = "outage"
KIND_RECOVER = "recover"
KIND_BURST = "burst"
#: Adversary-channel event kinds (emitted only when an adversary plan or a
#: server-side defense is active).
KIND_SYBIL = "sybil"
KIND_QUARANTINE = "quarantine"

#: The single source of truth for every event kind the system may emit.
#: ``repro.lint`` rule R3 statically checks each ``record(..., kind)`` call
#: site against this registry, so a typo'd kind fails lint instead of
#: silently producing an event no filter ever matches.  Add new kinds here
#: (with a one-line description) before emitting them anywhere.
TRACE_KINDS: Dict[str, str] = {
    KIND_INJECT: "a source peer injected a fresh segment",
    KIND_GOSSIP: "one coded block was gossiped between peers",
    KIND_EXPIRE: "a buffered block's TTL expired",
    KIND_DEPART: "a peer departed and its slot was replaced",
    KIND_COLLECT: "a server pull obtained a useful block",
    KIND_COMPLETE: "a segment became decodable at the servers",
    KIND_LOST: "a segment became unrecoverable",
    KIND_DROP: "a transfer was lost on a faulty link",
    KIND_POLLUTED: "a server rejected a polluted block",
    KIND_OUTAGE: "a server outage window began",
    KIND_RECOVER: "the servers recovered from an outage",
    KIND_BURST: "a correlated churn burst fired",
    KIND_SYBIL: "a sybil burst converted peer slots to adversarial identities",
    KIND_QUARANTINE: "pull-source scoring quarantined a peer identity",
}

#: Kinds every fault-free run can emit.
PROTOCOL_KINDS = frozenset(
    {
        KIND_INJECT,
        KIND_GOSSIP,
        KIND_EXPIRE,
        KIND_DEPART,
        KIND_COLLECT,
        KIND_COMPLETE,
        KIND_LOST,
    }
)
#: Kinds only a fault-injected run can emit.
FAULT_KINDS = frozenset(
    {
        KIND_DROP,
        KIND_POLLUTED,
        KIND_OUTAGE,
        KIND_RECOVER,
        KIND_BURST,
    }
)
#: Kinds only a run with an adversary plan or defenses can emit.
ADVERSARY_KINDS = frozenset(
    {
        KIND_SYBIL,
        KIND_QUARANTINE,
    }
)
ALL_KINDS = frozenset(TRACE_KINDS)
if (  # pragma: no cover - import guard
    PROTOCOL_KINDS | FAULT_KINDS | ADVERSARY_KINDS != ALL_KINDS
    or PROTOCOL_KINDS & FAULT_KINDS
    or PROTOCOL_KINDS & ADVERSARY_KINDS
    or FAULT_KINDS & ADVERSARY_KINDS
):
    raise AssertionError(
        "PROTOCOL_KINDS | FAULT_KINDS | ADVERSARY_KINDS must partition the "
        "TRACE_KINDS registry"
    )


@dataclass(frozen=True)
class TraceEvent:
    """One captured protocol event."""

    time: float
    kind: str
    peer: Optional[int] = None
    segment: Optional[int] = None
    detail: Optional[Dict[str, float]] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (omits empty fields)."""
        out: Dict[str, Any] = {"time": self.time, "kind": self.kind}
        if self.peer is not None:
            out["peer"] = self.peer
        if self.segment is not None:
            out["segment"] = self.segment
        if self.detail:
            out["detail"] = self.detail
        return out


class Tracer:
    """Event sink with optional ring buffer and kind filtering.

    Args:
        max_events: keep only the most recent events (None = unbounded).
        kinds: capture only these kinds (None = all).  Unknown kind names
            are rejected eagerly — a typo would otherwise silently capture
            nothing.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        wanted_kinds: Optional[FrozenSet[str]] = None
        if kinds is not None:
            wanted_kinds = frozenset(kinds)
            unknown = wanted_kinds - ALL_KINDS
            if unknown:
                raise ValueError(
                    f"unknown trace kinds {sorted(unknown)}; "
                    f"valid kinds: {sorted(ALL_KINDS)}"
                )
        self._kinds: Optional[FrozenSet[str]] = wanted_kinds
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.counts: Dict[str, int] = {}
        self.dropped = 0

    def wants(self, kind: str) -> bool:
        """Cheap pre-check so instrumented code can skip building details."""
        return self._kinds is None or kind in self._kinds

    def record(
        self,
        time: float,
        kind: str,
        peer: Optional[int] = None,
        segment: Optional[int] = None,
        **detail: float,
    ) -> None:
        """Capture one event (no-op if the kind is filtered out)."""
        if not self.wants(kind):
            return
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self._events.maxlen is not None and len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(
            TraceEvent(
                time=time,
                kind=kind,
                peer=peer,
                segment=segment,
                detail=dict(detail) if detail else None,
            )
        )

    # -- reading ----------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """Captured events in chronological order (copy)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Captured events of one kind."""
        return [event for event in self._events if event.kind == kind]

    def for_segment(self, segment_id: int) -> List[TraceEvent]:
        """A segment's captured life, from injection to completion/loss."""
        return [
            event for event in self._events if event.segment == segment_id
        ]

    def for_peer(self, slot: int) -> List[TraceEvent]:
        """Captured events touching one peer slot."""
        return [event for event in self._events if event.peer == slot]

    def to_jsonl(self, path: Union[str, "Path"]) -> int:
        """Write captured events as JSON Lines; returns the event count."""
        events = self.events
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(events)

    @staticmethod
    def read_jsonl(path: Union[str, "Path"]) -> List[TraceEvent]:
        """Load events written by :meth:`to_jsonl`."""
        events: List[TraceEvent] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                events.append(
                    TraceEvent(
                        time=payload["time"],
                        kind=payload["kind"],
                        peer=payload.get("peer"),
                        segment=payload.get("segment"),
                        detail=payload.get("detail"),
                    )
                )
        return events

    def summary(self) -> str:
        """One-line per-kind count summary."""
        parts = [f"{kind}={count}" for kind, count in sorted(self.counts.items())]
        suffix = f" (ring dropped {self.dropped})" if self.dropped else ""
        return ", ".join(parts) + suffix
