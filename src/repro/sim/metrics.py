"""Measurement instrumentation for collection simulations.

Implements the four metrics Sec. 4 evaluates, with the paper's definitions:

- **session throughput** — "the actual rate (blocks/unit time) at which
  servers obtain original data"; operationally ``c*N*eta`` where ``eta`` is
  the fraction of server pulls that hit a segment the servers still need
  (Theorem 2's collection efficiency).  Reported both raw and normalized by
  the aggregate demand ``N*lambda`` (the paper's Fig. 3/4 y-axis).
- **storage overhead** — time-averaged buffered blocks per peer ``rho`` and
  the gossip-attributable part ``rho - lambda/gamma`` (Theorem 1).
- **block delivery delay** — per completed segment, (completion - injection)
  divided by the segment size ``s`` (Theorem 3's per-original-block delay).
- **data saved for future delivery** — time-averaged count of segments that
  are decodable from the network (degree >= s) but not yet reconstructed by
  the servers, times ``s``, per peer (Theorem 4 / Fig. 6).

All time-dependent quantities are integrated exactly between state changes
(no sampling grid), and every counter is split into a lifetime total and a
measurement-window total so a warmup transient can be excluded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.engine import EnginePerf
from repro.util.summary import percentile


class WindowedAverage:
    """Time average of a piecewise-constant scalar over an explicit window."""

    __slots__ = ("value", "_last_time", "_integral", "_window_start")

    def __init__(self, value: float = 0.0, now: float = 0.0) -> None:
        self.value = value
        self._last_time = now
        self._window_start = now
        self._integral = 0.0

    def update(self, now: float, new_value: float) -> None:
        """Advance to *now* and set the new current value."""
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._integral += self.value * (now - self._last_time)
        self._last_time = now
        self.value = new_value

    def add(self, now: float, delta: float) -> None:
        """Advance to *now* and shift the current value by *delta*."""
        self.update(now, self.value + delta)

    def reset(self, now: float) -> None:
        """Begin a fresh averaging window at *now*, keeping the value."""
        self.update(now, self.value)
        self._window_start = now
        self._integral = 0.0

    def average(self, now: float) -> float:
        """Average over [window_start, now]; current value if width is 0."""
        width = now - self._window_start
        if width <= 0:
            return self.value
        integral = self._integral + self.value * (now - self._last_time)
        return integral / width


@dataclass
class WindowedCounter:
    """Event counter with a lifetime total and a measurement-window total."""

    total: int = 0
    window: int = 0

    def increment(self, in_window: bool, amount: int = 1) -> None:
        self.total += amount
        if in_window:
            self.window += amount

    def reset_window(self) -> None:
        self.window = 0


@dataclass(frozen=True)
class MetricsReport:
    """Final measurements of one simulation run (measurement window only)."""

    # configuration echo
    n_peers: int
    arrival_rate: float
    segment_size: int
    normalized_capacity: float
    window: float
    # server-side
    pulls: int
    useful_pulls: int
    redundant_pulls: int
    idle_pulls: int
    segments_completed: int
    throughput: float
    normalized_throughput: float
    efficiency: float
    goodput: float
    normalized_goodput: float
    # peer-side
    mean_buffer_occupancy: float
    empty_peer_fraction: float
    storage_overhead: float
    injected_segments: int
    injected_blocks: int
    blocked_injections: int
    gossip_transfers: int
    gossip_no_target: int
    gossip_undeliverable: int
    blocks_expired: int
    blocks_lost_to_churn: int
    departures: int
    # delay and persistence
    mean_segment_delay: Optional[float]
    mean_block_delay: Optional[float]
    p50_block_delay: Optional[float]
    p95_block_delay: Optional[float]
    delay_samples: int
    saved_blocks_per_peer: float
    decodable_segments_per_peer: float
    segments_lost: int
    # fault-injection degradation accounting (all zero on fault-free runs)
    transfers_dropped: int
    blocks_rejected_polluted: int
    burst_departures: int
    outage_time: float
    # event-engine perf counters (deterministic functions of the schedule,
    # so safe under the same-seed byte-compare contract; wall time is *not*
    # included here by design — see EnginePerf)
    engine_events_fired: int = 0
    engine_events_cancelled: int = 0
    engine_heap_compactions: int = 0
    # adversary degradation and defense accounting (all zero on honest runs)
    gossip_suppressed: int = 0
    pulls_captured: int = 0
    junk_blocks_served: int = 0
    pulls_quarantine_rejected: int = 0
    slots_quarantined: int = 0
    false_quarantines: int = 0
    sybil_conversions: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric dict (None delays become NaN) for aggregation."""
        out: Dict[str, float] = {}
        # lint: ok(R2): dataclass field order is definitional, not incidental
        for name, value in self.__dict__.items():
            if value is None:
                out[name] = math.nan
            else:
                out[name] = float(value)
        return out


class MetricsCollector:
    """Mutable metric state updated by the collection system as it runs.

    Lifecycle: construct at t=0, ``begin_window(now)`` after warmup,
    ``report(now)`` at the end.  The collector is passive — it never reads
    simulator state; the system pushes every change in.
    """

    def __init__(
        self,
        n_peers: int,
        arrival_rate: float,
        segment_size: int,
        normalized_capacity: float,
        now: float = 0.0,
    ) -> None:
        self.n_peers = n_peers
        self.arrival_rate = arrival_rate
        self.segment_size = segment_size
        self.normalized_capacity = normalized_capacity
        self._window_start = now
        self._in_window = False

        # time-weighted state
        self.total_blocks = WindowedAverage(0.0, now)
        self.empty_peers = WindowedAverage(float(n_peers), now)
        self.saved_segments = WindowedAverage(0.0, now)
        self.decodable_segments = WindowedAverage(0.0, now)
        #: 0/1 indicator of a server outage in progress (fault injection);
        #: integrating it over the window yields the exact outage time.
        self.servers_down = WindowedAverage(0.0, now)

        # counters
        self.pulls = WindowedCounter()
        self.useful_pulls = WindowedCounter()
        self.redundant_pulls = WindowedCounter()
        self.idle_pulls = WindowedCounter()
        self.segments_completed = WindowedCounter()
        self.injected_segments = WindowedCounter()
        self.injected_blocks = WindowedCounter()
        self.blocked_injections = WindowedCounter()
        self.gossip_transfers = WindowedCounter()
        self.gossip_no_target = WindowedCounter()
        self.gossip_undeliverable = WindowedCounter()
        self.blocks_expired = WindowedCounter()
        self.blocks_lost_to_churn = WindowedCounter()
        self.departures = WindowedCounter()
        self.segments_lost = WindowedCounter()
        # fault-injection degradation counters
        self.transfers_dropped = WindowedCounter()
        self.blocks_rejected_polluted = WindowedCounter()
        self.burst_departures = WindowedCounter()
        # adversary degradation and defense counters
        self.gossip_suppressed = WindowedCounter()
        self.pulls_captured = WindowedCounter()
        self.junk_blocks_served = WindowedCounter()
        self.pulls_quarantine_rejected = WindowedCounter()
        self.slots_quarantined = WindowedCounter()
        self.false_quarantines = WindowedCounter()
        self.sybil_conversions = WindowedCounter()

        self._delay_samples: List[float] = []
        self._delivered_original_blocks = 0

    # -- lifecycle ---------------------------------------------------------

    def begin_window(self, now: float) -> None:
        """Discard warmup statistics; measurements start at *now*."""
        self._in_window = True
        self._window_start = now
        for avg in self._averages():
            avg.reset(now)
        for counter in self._counters():
            counter.reset_window()
        self._delay_samples = []
        self._delivered_original_blocks = 0

    @property
    def in_window(self) -> bool:
        """True once the measurement window has started."""
        return self._in_window

    def _averages(self) -> List[WindowedAverage]:
        return [
            self.total_blocks,
            self.empty_peers,
            self.saved_segments,
            self.decodable_segments,
            self.servers_down,
        ]

    def _counters(self) -> List[WindowedCounter]:
        return [
            self.pulls,
            self.useful_pulls,
            self.redundant_pulls,
            self.idle_pulls,
            self.segments_completed,
            self.injected_segments,
            self.injected_blocks,
            self.blocked_injections,
            self.gossip_transfers,
            self.gossip_no_target,
            self.gossip_undeliverable,
            self.blocks_expired,
            self.blocks_lost_to_churn,
            self.departures,
            self.segments_lost,
            self.transfers_dropped,
            self.blocks_rejected_polluted,
            self.burst_departures,
            self.gossip_suppressed,
            self.pulls_captured,
            self.junk_blocks_served,
            self.pulls_quarantine_rejected,
            self.slots_quarantined,
            self.false_quarantines,
            self.sybil_conversions,
        ]

    # -- event hooks (called by the system) --------------------------------

    def on_segment_completed(self, now: float, injected_at: float, size: int) -> None:
        """A segment became decodable at the servers."""
        self.segments_completed.increment(self._in_window)
        if self._in_window:
            self._delay_samples.append(now - injected_at)
            self._delivered_original_blocks += size

    # -- report -------------------------------------------------------------

    def report(
        self, now: float, engine: Optional["EnginePerf"] = None
    ) -> MetricsReport:
        """Freeze the measurement window into an immutable report.

        *engine*, when provided (see :meth:`Simulator.perf`), embeds the
        deterministic event-engine counters; its host-dependent wall time is
        deliberately left out so same-seed reports stay byte-identical.
        """
        window = max(now - self._window_start, 0.0)
        n = self.n_peers
        pulls = self.pulls.window
        useful = self.useful_pulls.window
        efficiency = useful / pulls if pulls else 0.0
        throughput = useful / window if window > 0 else 0.0
        demand = n * self.arrival_rate
        goodput = (
            self._delivered_original_blocks / window if window > 0 else 0.0
        )
        mean_segment_delay: Optional[float]
        mean_block_delay: Optional[float]
        p50_block_delay: Optional[float]
        p95_block_delay: Optional[float]
        if self._delay_samples:
            mean_segment_delay = math.fsum(self._delay_samples) / len(
                self._delay_samples
            )
            mean_block_delay = mean_segment_delay / self.segment_size
            p50_block_delay = (
                percentile(self._delay_samples, 50.0) / self.segment_size
            )
            p95_block_delay = (
                percentile(self._delay_samples, 95.0) / self.segment_size
            )
        else:
            mean_segment_delay = None
            mean_block_delay = None
            p50_block_delay = None
            p95_block_delay = None
        return MetricsReport(
            n_peers=n,
            arrival_rate=self.arrival_rate,
            segment_size=self.segment_size,
            normalized_capacity=self.normalized_capacity,
            window=window,
            pulls=pulls,
            useful_pulls=useful,
            redundant_pulls=self.redundant_pulls.window,
            idle_pulls=self.idle_pulls.window,
            segments_completed=self.segments_completed.window,
            throughput=throughput,
            normalized_throughput=throughput / demand if demand else 0.0,
            efficiency=efficiency,
            goodput=goodput,
            normalized_goodput=goodput / demand if demand else 0.0,
            mean_buffer_occupancy=self.total_blocks.average(now) / n,
            empty_peer_fraction=self.empty_peers.average(now) / n,
            storage_overhead=max(
                self.total_blocks.average(now) / n
                - self.arrival_rate / self._deletion_rate_hint,
                0.0,
            )
            if self._deletion_rate_hint
            else math.nan,
            injected_segments=self.injected_segments.window,
            injected_blocks=self.injected_blocks.window,
            blocked_injections=self.blocked_injections.window,
            gossip_transfers=self.gossip_transfers.window,
            gossip_no_target=self.gossip_no_target.window,
            gossip_undeliverable=self.gossip_undeliverable.window,
            blocks_expired=self.blocks_expired.window,
            blocks_lost_to_churn=self.blocks_lost_to_churn.window,
            departures=self.departures.window,
            mean_segment_delay=mean_segment_delay,
            mean_block_delay=mean_block_delay,
            p50_block_delay=p50_block_delay,
            p95_block_delay=p95_block_delay,
            delay_samples=len(self._delay_samples),
            saved_blocks_per_peer=self.saved_segments.average(now)
            * self.segment_size
            / n,
            decodable_segments_per_peer=self.decodable_segments.average(now) / n,
            segments_lost=self.segments_lost.window,
            transfers_dropped=self.transfers_dropped.window,
            blocks_rejected_polluted=self.blocks_rejected_polluted.window,
            burst_departures=self.burst_departures.window,
            outage_time=self.servers_down.average(now) * window,
            engine_events_fired=engine.events_fired if engine else 0,
            engine_events_cancelled=engine.events_cancelled if engine else 0,
            engine_heap_compactions=engine.heap_compactions if engine else 0,
            gossip_suppressed=self.gossip_suppressed.window,
            pulls_captured=self.pulls_captured.window,
            junk_blocks_served=self.junk_blocks_served.window,
            pulls_quarantine_rejected=self.pulls_quarantine_rejected.window,
            slots_quarantined=self.slots_quarantined.window,
            false_quarantines=self.false_quarantines.window,
            sybil_conversions=self.sybil_conversions.window,
        )

    #: Set by the system so storage overhead (rho - lambda/gamma) can be
    #: derived; 0 disables the derived field.
    _deletion_rate_hint: float = 0.0

    def set_deletion_rate(self, gamma: float) -> None:
        """Record gamma so the report can derive the Theorem 1 overhead."""
        self._deletion_rate_hint = gamma
