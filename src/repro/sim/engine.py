"""Discrete-event simulation engine.

A minimal, fast event loop: a binary heap of ``(time, sequence, item)``
entries with O(log n) scheduling, lazy cancellation, and helpers for the
Poisson (exponential-clock) processes that make up the entire protocol model
(segment injection at rate ``lambda/s``, gossip at rate ``mu``, server pulls
at rate ``c_s``, TTL expiry at rate ``gamma``, churn at rate ``1/L``).

The engine is deliberately single-threaded and deterministic: given the same
seeds and the same schedule of calls, two runs produce identical event
orderings (ties in time are broken by insertion sequence).

Hot-path design.  Two scheduling flavours share one heap:

- :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` allocate an
  :class:`EventHandle` per event and support cancellation (lazy: cancelled
  entries are skipped on pop, with the live/cancelled split tracked
  exactly and the heap compacted in place once cancelled entries dominate);
- :meth:`Simulator.schedule_call` / :meth:`Simulator.schedule_call_at` are
  the handle-free fast path for fire-and-forget events (recurring clock
  fires, TTL expiries, delivery latencies): the heap entry *is* the bare
  callable — no per-event allocation beyond the tuple.

``run_until`` additionally batch-drains the heap: when many entries are due
before the horizon, one linear partition + ``sort`` replaces thousands of
``heappop`` sift-downs (an order-of-magnitude cheaper in CPython), while a
per-event peek at the heap head keeps events scheduled *during* the batch
correctly interleaved.  Event order — (time, insertion sequence) — is
byte-identical to the classic pop loop, so the determinism contract
(``docs/LINTING.md``: same seed, same event order) is unaffected.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
import time as _time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.sim.rng import exponential

Action = Callable[[], None]

#: Minimum number of due entries for which a batch drain beats popping.
_BATCH_MIN = 64
#: Compaction trigger: cancelled entries both exceed this floor and make up
#: more than half the heap.
_COMPACT_MIN = 256


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "action", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        action: Optional[Action],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.action = action
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped.

        A no-op on handles that already fired or were already cancelled, so
        keeping a handle around after its event ran is always safe.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        self.action = None  # break reference cycles early
        if self._sim is not None:
            self._sim._note_cancelled()


#: A heap entry: cancellable events carry an EventHandle, fast-path events
#: carry the bare callable.  The sequence number is unique, so tuple
#: comparison never reaches the third element.
_Entry = Tuple[float, int, Union[EventHandle, Action]]


@dataclass(frozen=True)
class EnginePerf:
    """Engine-level performance counters (a consistent snapshot).

    All fields except ``wall_time`` are deterministic functions of the
    schedule, so they are safe to embed in reports that same-seed runs
    byte-compare; ``wall_time`` (seconds spent inside ``run_until``) is
    host-dependent diagnostics and must stay out of such reports.
    """

    events_fired: int
    events_cancelled: int
    pending_live: int
    pending_cancelled: int
    heap_compactions: int
    run_until_calls: int
    wall_time: float


class Simulator:
    """Event loop with a virtual clock starting at time 0.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at", sim.now))
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_Entry] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._stopped = False
        self._in_run = False
        # Lazy-cancellation accounting: exact count of cancelled-but-not-yet
        # collected entries (heap + current batch run).
        self._cancelled_pending = 0
        self._events_cancelled = 0
        self._heap_compactions = 0
        self._run_until_calls = 0
        self._wall_time = 0.0
        # Amortized observation hook (see set_probe): called every
        # `_probe_every` executed events.  Off (None) on every system that
        # does not explicitly install one; the only per-event cost of the
        # feature is then a single local is-None test in run_until.
        self._probe: Optional[Action] = None
        self._probe_every = 0
        self._probe_countdown = 0
        # Sorted run of due entries being drained by the current run_until
        # call; kept on the instance so `pending` stays exact mid-batch.
        self._ready: List[_Entry] = []
        self._ready_pos = 0

    @property
    def events_processed(self) -> int:
        """Total events executed in completed ``run_until`` calls."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """*Live* events still queued (cancelled entries are excluded)."""
        return (
            len(self._heap)
            + len(self._ready)
            - self._ready_pos
            - self._cancelled_pending
        )

    @property
    def pending_cancelled(self) -> int:
        """Cancelled entries not yet collected from the queue."""
        return self._cancelled_pending

    @property
    def events_cancelled(self) -> int:
        """Total events ever cancelled."""
        return self._events_cancelled

    @property
    def heap_compactions(self) -> int:
        """Times the heap was compacted to evict cancelled entries."""
        return self._heap_compactions

    def schedule(self, delay: float, action: Action) -> EventHandle:
        """Run *action* after *delay* time units; returns a cancellable handle."""
        # Single chained comparison: False for negative, NaN, and inf alike.
        if not 0.0 <= delay < math.inf:
            raise ValueError(f"delay must be finite and >= 0, got {delay!r}")
        time = self.now + delay
        handle = EventHandle(time, action, self)
        heapq.heappush(self._heap, (time, next(self._sequence), handle))
        return handle

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Run *action* at absolute *time* (>= now)."""
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        handle = EventHandle(time, action, self)
        heapq.heappush(self._heap, (time, next(self._sequence), handle))
        return handle

    def schedule_call(self, delay: float, action: Action) -> None:
        """Handle-free fast path: run *action* after *delay*, no cancellation.

        Identical ordering semantics to :meth:`schedule`, but the heap entry
        is the bare callable — no :class:`EventHandle` allocation.  Use it
        for fire-and-forget events (clock fires, TTL expiries, latencies)
        whose handle would be dropped anyway.
        """
        if not 0.0 <= delay < math.inf:
            raise ValueError(f"delay must be finite and >= 0, got {delay!r}")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), action)
        )

    def schedule_call_at(self, time: float, action: Action) -> None:
        """Absolute-time variant of :meth:`schedule_call`."""
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._sequence), action))

    def stop(self) -> None:
        """Request the current ``run_until`` call to return after this event."""
        self._stopped = True

    def set_probe(self, action: Action, every: int) -> None:
        """Install an amortized observation hook into the event loop.

        ``action()`` is invoked inline after every *every*-th executed event
        (and never counts as an event itself: it consumes no sequence number,
        advances no clock, and therefore cannot perturb event ordering).  The
        runtime invariant monitors (:mod:`repro.chaos.monitors`) ride this
        hook.  The probe must be read-only with respect to simulation state;
        an exception it raises propagates out of :meth:`run_until` with the
        unconsumed schedule intact.
        """
        if every < 1:
            raise ValueError(f"probe interval must be >= 1, got {every}")
        self._probe = action
        self._probe_every = every
        self._probe_countdown = every

    def clear_probe(self) -> None:
        """Remove the observation hook installed by :meth:`set_probe`."""
        self._probe = None
        self._probe_every = 0
        self._probe_countdown = 0

    def perf(self) -> EnginePerf:
        """Snapshot of the engine's performance counters."""
        return EnginePerf(
            events_fired=self._events_processed,
            events_cancelled=self._events_cancelled,
            pending_live=self.pending,
            pending_cancelled=self._cancelled_pending,
            heap_compactions=self._heap_compactions,
            run_until_calls=self._run_until_calls,
            wall_time=self._wall_time,
        )

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Execute events with time <= *end_time* in order; advance the clock.

        Returns the number of events executed.  The clock lands exactly on
        *end_time* when the queue drains or only later events remain, so
        time-integrated metrics always cover the full horizon.  *max_events*
        is a safety valve for runaway schedules (raises RuntimeError); it
        counts every queue pop — including lazily-cancelled entries being
        discarded — so cancellation churn cannot starve the valve.
        """
        if end_time < self.now:
            raise ValueError(f"end_time {end_time} is before now {self.now}")
        if self._in_run:
            raise RuntimeError("run_until is not re-entrant")
        self._in_run = True
        executed = 0
        popped = 0
        limit = math.inf if max_events is None else max_events
        self._stopped = False
        self._run_until_calls += 1
        heap = self._heap
        ready = self._ready
        # Wall-time is diagnostics only (EnginePerf); it never feeds
        # simulation state, reports that runs byte-compare, or traces.
        wall_start = _time.perf_counter()  # lint: ok(R2): perf diagnostics only, never enters simulation state or compared reports
        allow_batch = True
        # Probe state mirrored into locals for the hot loop; the countdown
        # is written back in `finally` so the cadence spans run_until calls.
        probe = self._probe
        probe_every = self._probe_every
        probe_countdown = self._probe_countdown
        # `pos`/`ready_len` shadow self._ready_pos/len(ready) inside the hot
        # loop; self._ready_pos is re-synced before every observation point
        # (action call or raise) so `pending` and the push-back in `finally`
        # always see an exact position.
        pos = 0
        ready_len = 0
        try:
            while True:
                if pos >= ready_len:
                    # Refill: batch-drain every due entry when the scan can
                    # amortize (one partition + sort instead of thousands of
                    # heappop sift-downs), else fall back to a single pop.
                    # One undersized scan disables batching for the rest of
                    # this call, bounding wasted scans.
                    del ready[:]
                    pos = 0
                    self._ready_pos = 0
                    if not heap:
                        break
                    if allow_batch and len(heap) >= _BATCH_MIN:
                        due = [entry for entry in heap if entry[0] <= end_time]
                        if len(due) >= _BATCH_MIN:
                            heap[:] = [
                                entry for entry in heap if entry[0] > end_time
                            ]
                            heapq.heapify(heap)
                            due.sort()
                            ready.extend(due)
                        else:
                            allow_batch = False
                    if not ready:
                        if heap[0][0] > end_time:
                            break
                        ready.append(heapq.heappop(heap))
                    ready_len = len(ready)
                # Events scheduled during the batch live in the heap; run
                # whichever of (heap head, next ready entry) is earlier.
                # The sequence number breaks ties exactly as a pure heap
                # would, so interleaving preserves deterministic order.
                entry = ready[pos]
                if heap and heap[0] < entry:
                    entry = heapq.heappop(heap)
                else:
                    pos += 1
                event_time, _, item = entry
                popped += 1
                action: Optional[Action]
                if type(item) is EventHandle:
                    if item.cancelled:
                        self._cancelled_pending -= 1
                        if popped >= limit:
                            self._ready_pos = pos
                            raise RuntimeError(
                                f"run_until popped {popped} events without "
                                f"reaching t={end_time}; runaway schedule?"
                            )
                        continue
                    action = item.action
                    item.action = None
                    item.fired = True
                    assert action is not None  # only cancel() clears a live action
                else:
                    action = item  # type: ignore[assignment]
                self._ready_pos = pos
                self.now = event_time
                action()
                executed += 1
                if probe is not None:
                    probe_countdown -= 1
                    if probe_countdown <= 0:
                        probe_countdown = probe_every
                        probe()
                if self._stopped:
                    # Leave the clock at the stopping event's time.
                    return executed
                if popped >= limit:
                    raise RuntimeError(
                        f"run_until popped {popped} events without reaching "
                        f"t={end_time}; runaway schedule?"
                    )
            self.now = end_time
            return executed
        finally:
            # stop(), max_events, or an action raising can leave part of the
            # sorted run unconsumed — push it back so no event is lost.
            if self._ready_pos < len(ready):
                for entry in ready[self._ready_pos :]:
                    heapq.heappush(heap, entry)
            del ready[:]
            self._ready_pos = 0
            if probe is not None:
                self._probe_countdown = probe_countdown
            self._events_processed += executed
            self._in_run = False
            self._wall_time += _time.perf_counter() - wall_start  # lint: ok(R2): perf diagnostics only, never enters simulation state or compared reports

    # -- internals ---------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Account one newly-cancelled entry; compact when they dominate."""
        self._events_cancelled += 1
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > _COMPACT_MIN
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Evict cancelled entries from the heap in place.

        Mutates ``self._heap`` via slice assignment so aliases held by a
        running ``run_until`` stay valid.  Entries parked in the current
        batch run are collected by the drain loop instead.
        """
        heap = self._heap
        kept = [
            entry
            for entry in heap
            if not (type(entry[2]) is EventHandle and entry[2].cancelled)
        ]
        removed = len(heap) - len(kept)
        if not removed:
            return
        heap[:] = kept
        heapq.heapify(heap)
        self._cancelled_pending -= removed
        self._heap_compactions += 1


class PoissonProcess:
    """Self-rescheduling exponential clock driving a recurring action.

    Fires ``action()`` at the points of a Poisson process with the given
    *rate*.  The rate can be changed on the fly (``set_rate``), which, by the
    memorylessness of the exponential clock, simply means the *next* gap is
    drawn at the new rate.  A rate of 0 parks the process until a positive
    rate is set again.

    Perf knobs:

    - ``cancellable=False`` uses the simulator's handle-free fast path (no
      :class:`EventHandle` allocation per fire).  Restriction: a scheduled
      fire cannot be revoked, so ``set_rate`` on an *armed* non-cancellable
      clock raises, and after ``stop()`` the stale fire must drain (as a
      no-op) before ``start()`` is allowed again.  Use it for clocks that
      run at a fixed rate until the end of the simulation (the common case:
      per-peer injection and gossip clocks).
    - ``gap_batch=k`` pre-draws ``k`` exponential gaps at a time,
      amortizing draw overhead.  The per-stream draw *sequence* is
      unchanged, but draws are consumed from the RNG earlier than the fires
      they time, so this is only deterministic when the process owns its
      RNG stream exclusively — never enable it on a shared substream.
      ``set_rate`` discards undrawn gaps (memorylessness at the new rate).
      On the non-cancellable fast path the whole pre-drawn run is also
      *scheduled* in bulk (see :meth:`next_times`): the clock re-enters the
      scheduler once per ``k`` fires instead of re-arming after every fire.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        rate: float,
        action: Action,
        start: bool = True,
        cancellable: bool = True,
        gap_batch: int = 1,
    ) -> None:
        if rate < 0 or not math.isfinite(rate):
            raise ValueError(f"rate must be finite and >= 0, got {rate!r}")
        if gap_batch < 1:
            raise ValueError(f"gap_batch must be >= 1, got {gap_batch!r}")
        self._sim = sim
        self._rng = rng
        self._rate = rate
        self._action = action
        self._handle: Optional[EventHandle] = None
        self._running = False
        self._cancellable = cancellable
        self._gap_batch = gap_batch
        self._gap_buffer: List[float] = []
        # Fast-path state: how many handle-free fires are queued (one on the
        # single-gap path, up to gap_batch on the bulk path), and how many
        # stale (post-stop) fires are still in the queue as pending no-ops?
        self._armed_count = 0
        self._dead_pending = 0
        # Per-clock perf counters.
        self.events_fired = 0
        self.events_cancelled = 0
        if start:
            self.start()

    @property
    def rate(self) -> float:
        """Current firing rate (events per unit time)."""
        return self._rate

    @property
    def is_running(self) -> bool:
        """True while the clock is armed."""
        return self._running

    def start(self) -> None:
        """Arm the clock (no-op if already running)."""
        if self._running:
            return
        if self._dead_pending:
            raise RuntimeError(
                "cannot restart a non-cancellable clock while a stale fire "
                "is still queued; run the simulator past it first"
            )
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Disarm the clock; a pending fire is cancelled (or, on the
        non-cancellable fast path, left to drain as a no-op)."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
            self.events_cancelled += 1
        if self._armed_count:
            self._dead_pending += self._armed_count
            self._armed_count = 0

    def set_rate(self, rate: float) -> None:
        """Change the firing rate, rescheduling the next fire accordingly."""
        if rate < 0 or not math.isfinite(rate):
            raise ValueError(f"rate must be finite and >= 0, got {rate!r}")
        if self._armed_count:
            raise RuntimeError(
                "set_rate on an armed non-cancellable clock is not "
                "supported; construct the process with cancellable=True"
            )
        self._rate = rate
        del self._gap_buffer[:]  # memorylessness: re-draw at the new rate
        if self._running:
            if self._handle is not None:
                self._handle.cancel()
                self._handle = None
                self.events_cancelled += 1
            self._arm()

    def next_times(self, k: int) -> List[float]:
        """Absolute times of the next *k* fires, drawn in bulk.

        Consumes the per-stream draw sequence exactly as *k* successive
        fires would — the gap buffer is drained first and refilled in
        ``gap_batch`` chunks — so mixing bulk and single draws never changes
        the schedule.  The list may be shorter than *k*: a subnormal rate
        can overflow an exponential gap to infinity, beyond which the clock
        never fires.  The caller owns the returned times; the clock's own
        arming state is untouched.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        if self._rate <= 0:
            raise RuntimeError("next_times on a parked (rate 0) clock")
        times: List[float] = []
        t = self._sim.now
        while len(times) < k:
            gap = self._next_gap()
            if not math.isfinite(gap):
                break
            t += gap
            times.append(t)
        return times

    def _next_gap(self) -> float:
        if self._gap_batch <= 1:
            return exponential(self._rng, self._rate)
        buffer = self._gap_buffer
        if not buffer:
            rng = self._rng
            rate = self._rate
            buffer.extend(
                exponential(rng, rate) for _ in range(self._gap_batch)
            )
            buffer.reverse()  # consume in draw order via O(1) pops
        return buffer.pop()

    def _arm(self) -> None:
        if not self._running or self._rate <= 0:
            return
        if not self._cancellable and self._gap_batch > 1:
            # Bulk arm: schedule the whole pre-drawn run of fires at once,
            # entering the scheduler once per gap_batch fires.  Safe only
            # because the fast path forbids revocation anyway — stop() just
            # converts the remaining run into stale no-op fires.
            times = self.next_times(self._gap_batch)
            sim = self._sim
            fire = self._fire
            for when in times:
                sim.schedule_call_at(when, fire)
            self._armed_count = len(times)
            return
        gap = self._next_gap()
        if not math.isfinite(gap):
            # A subnormal rate can overflow expovariate to infinity; such a
            # clock will effectively never fire — park it (set_rate re-arms).
            return
        if self._cancellable:
            self._handle = self._sim.schedule(gap, self._fire)
        else:
            self._sim.schedule_call(gap, self._fire)
            self._armed_count = 1

    def _fire(self) -> None:
        if self._cancellable:
            self._handle = None
        else:
            if not self._running:
                # Stale fast-path fire from before stop(); drain silently.
                self._dead_pending -= 1
                return
            self._armed_count -= 1
        self.events_fired += 1
        # Re-arm before running the action so the action may stop/retime the
        # process and have that take effect immediately.  On the bulk path
        # later fires of the run are already queued, so re-arm only once the
        # run is exhausted.
        if self._armed_count == 0:
            self._arm()
        self._action()


class ThinnedPoissonProcess(PoissonProcess):
    """Non-homogeneous Poisson process via Lewis-Shedler thinning.

    Fires at time-varying rate ``rate_fn(t) <= max_rate``.  Used for the
    flash-crowd and diurnal workloads where the statistics-generation rate
    ``lambda(t)`` fluctuates — the core phenomenon the paper's buffering zone
    absorbs.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        max_rate: float,
        rate_fn: Callable[[float], float],
        action: Action,
        start: bool = True,
    ) -> None:
        if max_rate <= 0 or not math.isfinite(max_rate):
            raise ValueError(f"max_rate must be finite and > 0, got {max_rate!r}")
        self._rate_fn = rate_fn
        self._max_rate = max_rate
        self._thinning_rng = rng
        self._user_action = action
        super().__init__(sim, rng, max_rate, self._maybe_fire, start=start)

    def _maybe_fire(self) -> None:
        current = self._rate_fn(self._sim.now)
        if current < 0:
            raise ValueError(
                f"rate_fn returned negative rate {current} at t={self._sim.now}"
            )
        if current > self._max_rate * (1 + 1e-9):
            raise ValueError(
                f"rate_fn returned {current} above max_rate {self._max_rate} "
                f"at t={self._sim.now}"
            )
        if self._thinning_rng.random() * self._max_rate <= current:
            self._user_action()
