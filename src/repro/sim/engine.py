"""Discrete-event simulation engine.

A minimal, fast event loop: a binary heap of ``(time, sequence, event)``
entries with O(log n) scheduling, lazy cancellation, and helpers for the
Poisson (exponential-clock) processes that make up the entire protocol model
(segment injection at rate ``lambda/s``, gossip at rate ``mu``, server pulls
at rate ``c_s``, TTL expiry at rate ``gamma``, churn at rate ``1/L``).

The engine is deliberately single-threaded and deterministic: given the same
seeds and the same schedule of calls, two runs produce identical event
orderings (ties in time are broken by insertion sequence).
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from typing import Callable, List, Optional, Tuple

from repro.sim.rng import exponential

Action = Callable[[], None]


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "action", "cancelled")

    def __init__(self, time: float, action: Optional[Action]) -> None:
        self.time = time
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True
        self.action = None  # break reference cycles early


class Simulator:
    """Event loop with a virtual clock starting at time 0.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at", sim.now))
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._stopped = False

    @property
    def events_processed(self) -> int:
        """Total events executed so far (diagnostics and perf accounting)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Events still queued, including not-yet-collected cancelled ones."""
        return len(self._heap)

    def schedule(self, delay: float, action: Action) -> EventHandle:
        """Run *action* after *delay* time units; returns a cancellable handle."""
        if not math.isfinite(delay) or delay < 0:
            raise ValueError(f"delay must be finite and >= 0, got {delay!r}")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Run *action* at absolute *time* (>= now)."""
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        handle = EventHandle(time, action)
        heapq.heappush(self._heap, (time, next(self._sequence), handle))
        return handle

    def stop(self) -> None:
        """Request the current ``run_until`` call to return after this event."""
        self._stopped = True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Execute events with time <= *end_time* in order; advance the clock.

        Returns the number of events executed.  The clock lands exactly on
        *end_time* when the queue drains or only later events remain, so
        time-integrated metrics always cover the full horizon.  *max_events*
        is a safety valve for runaway schedules (raises RuntimeError).
        """
        if end_time < self.now:
            raise ValueError(f"end_time {end_time} is before now {self.now}")
        executed = 0
        self._stopped = False
        heap = self._heap
        while heap:
            time, _, handle = heap[0]
            if time > end_time:
                break
            heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            action = handle.action
            handle.action = None
            assert action is not None  # only cancel() clears a live action
            action()
            executed += 1
            self._events_processed += 1
            if self._stopped:
                # Leave the clock at the stopping event's time.
                return executed
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"run_until executed {executed} events without reaching "
                    f"t={end_time}; runaway schedule?"
                )
        self.now = end_time
        return executed


class PoissonProcess:
    """Self-rescheduling exponential clock driving a recurring action.

    Fires ``action()`` at the points of a Poisson process with the given
    *rate*.  The rate can be changed on the fly (``set_rate``), which, by the
    memorylessness of the exponential clock, simply means the *next* gap is
    drawn at the new rate.  A rate of 0 parks the process until a positive
    rate is set again.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        rate: float,
        action: Action,
        start: bool = True,
    ) -> None:
        if rate < 0 or not math.isfinite(rate):
            raise ValueError(f"rate must be finite and >= 0, got {rate!r}")
        self._sim = sim
        self._rng = rng
        self._rate = rate
        self._action = action
        self._handle: Optional[EventHandle] = None
        self._running = False
        if start:
            self.start()

    @property
    def rate(self) -> float:
        """Current firing rate (events per unit time)."""
        return self._rate

    @property
    def is_running(self) -> bool:
        """True while the clock is armed."""
        return self._running

    def start(self) -> None:
        """Arm the clock (no-op if already running)."""
        if self._running:
            return
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Disarm the clock; pending fire is cancelled."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def set_rate(self, rate: float) -> None:
        """Change the firing rate, rescheduling the next fire accordingly."""
        if rate < 0 or not math.isfinite(rate):
            raise ValueError(f"rate must be finite and >= 0, got {rate!r}")
        self._rate = rate
        if self._running:
            if self._handle is not None:
                self._handle.cancel()
                self._handle = None
            self._arm()

    def _arm(self) -> None:
        if not self._running or self._rate <= 0:
            return
        gap = exponential(self._rng, self._rate)
        if not math.isfinite(gap):
            # A subnormal rate can overflow expovariate to infinity; such a
            # clock will effectively never fire — park it (set_rate re-arms).
            return
        self._handle = self._sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        self._handle = None
        # Re-arm before running the action so the action may stop/retime the
        # process and have that take effect immediately.
        self._arm()
        self._action()


class ThinnedPoissonProcess(PoissonProcess):
    """Non-homogeneous Poisson process via Lewis-Shedler thinning.

    Fires at time-varying rate ``rate_fn(t) <= max_rate``.  Used for the
    flash-crowd and diurnal workloads where the statistics-generation rate
    ``lambda(t)`` fluctuates — the core phenomenon the paper's buffering zone
    absorbs.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        max_rate: float,
        rate_fn: Callable[[float], float],
        action: Action,
        start: bool = True,
    ) -> None:
        if max_rate <= 0 or not math.isfinite(max_rate):
            raise ValueError(f"max_rate must be finite and > 0, got {max_rate!r}")
        self._rate_fn = rate_fn
        self._max_rate = max_rate
        self._thinning_rng = rng
        self._user_action = action
        super().__init__(sim, rng, max_rate, self._maybe_fire, start=start)

    def _maybe_fire(self) -> None:
        current = self._rate_fn(self._sim.now)
        if current < 0:
            raise ValueError(
                f"rate_fn returned negative rate {current} at t={self._sim.now}"
            )
        if current > self._max_rate * (1 + 1e-9):
            raise ValueError(
                f"rate_fn returned {current} above max_rate {self._max_rate} "
                f"at t={self._sim.now}"
            )
        if self._thinning_rng.random() * self._max_rate <= current:
            self._user_action()
