"""Peer churn: the lifetime-based replacement model of Sec. 4.

"Peer dynamics is simulated via a replacement model, where each peer is
assigned a random lifetime L and leaves the network upon the expiration of
its lifetime.  A new peer will join at the same time to replace the departed
peer.  The peer lifetime follows an exponential distribution with mean L."

The replacement keeps the population size constant, isolating the effect of
*dynamics* from the effect of population change — we mirror that exactly:
each topology slot hosts a succession of peer generations, and a death event
atomically replaces the occupant with a fresh, empty-buffered peer.

This module owns only the lifetime clocks; the collection system registers a
callback that performs the actual state swap (dropping the departed peer's
buffered blocks, which is precisely the loss mechanism coding defends
against).
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import exponential
from repro.util.validation import require_positive, require_positive_int


class ChurnModel:
    """Exponential-lifetime replacement churn over ``n_slots`` peer slots.

    *mean_lifetime* of ``None`` (or ``math.inf``) disables churn entirely —
    the static-network configuration used for the paper's analytical curves.

    The model may also be used distributionally via :meth:`sample_lifetime`
    (e.g. by tests asserting the exponential fit).
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        n_slots: int,
        mean_lifetime: Optional[float],
        on_replace: Callable[[int], None],
    ) -> None:
        require_positive_int("n_slots", n_slots)
        if mean_lifetime is not None and not math.isinf(mean_lifetime):
            require_positive("mean_lifetime", mean_lifetime)
        self._sim = sim
        self._rng = rng
        self._n_slots = n_slots
        self._mean_lifetime = mean_lifetime
        self._on_replace = on_replace
        self._handles: List[Optional[EventHandle]] = [None] * n_slots
        self.departures = 0
        self._started = False

    @property
    def enabled(self) -> bool:
        """True when lifetimes are finite and churn clocks will run."""
        return self._mean_lifetime is not None and not math.isinf(self._mean_lifetime)

    @property
    def mean_lifetime(self) -> Optional[float]:
        """Configured mean lifetime ``L`` (None/inf means static)."""
        return self._mean_lifetime

    def sample_lifetime(self) -> float:
        """Draw one Exp(1/L) lifetime; raises if churn is disabled."""
        if not self.enabled:
            raise ValueError("churn is disabled; no lifetime distribution")
        assert self._mean_lifetime is not None  # enabled guarantees this
        return exponential(self._rng, 1.0 / self._mean_lifetime)

    def start(self) -> None:
        """Arm a lifetime clock for every slot's initial occupant."""
        if self._started:
            raise RuntimeError("churn model already started")
        self._started = True
        if not self.enabled:
            return
        for slot in range(self._n_slots):
            self._arm(slot)

    def stop(self) -> None:
        """Cancel all pending departures (used at teardown)."""
        self.drain()

    def drain(self) -> int:
        """Cancel every outstanding lifetime handle; returns how many.

        Idempotent.  Repeated experiment runs in one process must drain the
        previous run's clocks so dead departure events do not accumulate in
        (and leak peer state into) a shared simulator's heap.
        """
        drained = 0
        for slot, handle in enumerate(self._handles):
            if handle is not None:
                handle.cancel()
                self._handles[slot] = None
                drained += 1
        return drained

    def force_depart(self, slot: int) -> None:
        """Immediately depart the occupant of *slot* (correlated bursts).

        Works whether or not exponential churn is enabled: the slot's pending
        lifetime clock (if any) is cancelled, the replacement callback runs
        now, and a fresh lifetime is armed only when churn clocks are active.
        """
        if not 0 <= slot < self._n_slots:
            raise ValueError(f"slot must be in [0, {self._n_slots}), got {slot}")
        handle = self._handles[slot]
        if handle is not None:
            handle.cancel()
            self._handles[slot] = None
        self.departures += 1
        self._on_replace(slot)
        if self._started and self.enabled:
            self._arm(slot)

    def _arm(self, slot: int) -> None:
        delay = self.sample_lifetime()
        self._handles[slot] = self._sim.schedule(
            delay, lambda slot=slot: self._depart(slot)
        )

    def _depart(self, slot: int) -> None:
        self._handles[slot] = None
        self.departures += 1
        # Replace first, then arm the replacement's own lifetime; the
        # replacement model admits no gap between departure and join.
        self._on_replace(slot)
        self._arm(slot)
