"""P2P overlay topologies.

The gossip step transmits "to peer B chosen u.a.r. from among its neighbors"
(Sec. 2), while the ODE analysis of Sec. 3 draws the target u.a.r. from *all*
peers — i.e. it analyzes the mean-field (complete-graph) overlay.  This
module provides both: the complete graph used for the paper's figures, plus
bounded-degree overlays (random regular, Erdos-Renyi) for studying how far a
sparse neighborhood departs from the mean-field prediction.

Topologies are defined over *slots* ``0..n-1``.  The churn replacement model
reuses a departed peer's slot for its replacement, so the overlay itself is
static even under churn (the peer occupying a slot changes, the links do
not) — exactly the decoupling the paper's replacement model is designed for.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.util.validation import require_positive_int, require_probability


class Topology:
    """Interface: who can peer ``slot`` gossip to?"""

    @property
    def n_slots(self) -> int:
        raise NotImplementedError

    def neighbors(self, slot: int) -> Sequence[int]:
        """Neighbor slots of *slot* (never contains *slot* itself)."""
        raise NotImplementedError

    def sample_neighbor(self, slot: int, rng: random.Random) -> Optional[int]:
        """One uniformly random neighbor of *slot*, or None if isolated."""
        candidates = self.neighbors(slot)
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]

    def degree(self, slot: int) -> int:
        """Number of neighbors of *slot*."""
        return len(self.neighbors(slot))

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.n_slots})")


class CompleteTopology(Topology):
    """Mean-field overlay: every peer neighbors every other peer.

    ``sample_neighbor`` is O(1); ``neighbors`` materializes a list and is
    provided for interface completeness only.
    """

    def __init__(self, n_slots: int) -> None:
        self._n = require_positive_int("n_slots", n_slots)

    @property
    def n_slots(self) -> int:
        return self._n

    def neighbors(self, slot: int) -> List[int]:
        self._check_slot(slot)
        return [other for other in range(self._n) if other != slot]

    def sample_neighbor(self, slot: int, rng: random.Random) -> Optional[int]:
        self._check_slot(slot)
        if self._n == 1:
            return None
        other = rng.randrange(self._n - 1)
        return other if other < slot else other + 1

    def degree(self, slot: int) -> int:
        self._check_slot(slot)
        return self._n - 1


class ExplicitTopology(Topology):
    """Overlay given by an explicit adjacency mapping (symmetrized)."""

    def __init__(self, n_slots: int, adjacency: Dict[int, Sequence[int]]) -> None:
        self._n = require_positive_int("n_slots", n_slots)
        neighbor_sets: List[Set[int]] = [set() for _ in range(self._n)]
        for slot, neighbors in sorted(adjacency.items()):
            if not 0 <= slot < self._n:
                raise ValueError(f"slot {slot} out of range [0, {self._n})")
            for other in neighbors:
                if not 0 <= other < self._n:
                    raise ValueError(f"slot {other} out of range [0, {self._n})")
                if other == slot:
                    raise ValueError(f"self-loop at slot {slot}")
                neighbor_sets[slot].add(other)
                neighbor_sets[other].add(slot)
        self._neighbors: List[List[int]] = [sorted(s) for s in neighbor_sets]

    @property
    def n_slots(self) -> int:
        return self._n

    def neighbors(self, slot: int) -> List[int]:
        self._check_slot(slot)
        return self._neighbors[slot]


def erdos_renyi_topology(
    n_slots: int, edge_probability: float, rng: random.Random
) -> ExplicitTopology:
    """G(n, p) overlay; isolated slots are possible at small p."""
    require_positive_int("n_slots", n_slots)
    require_probability("edge_probability", edge_probability)
    adjacency: Dict[int, List[int]] = {slot: [] for slot in range(n_slots)}
    for a in range(n_slots):
        for b in range(a + 1, n_slots):
            if rng.random() < edge_probability:
                adjacency[a].append(b)
    return ExplicitTopology(n_slots, adjacency)


def random_regular_topology(
    n_slots: int, degree: int, rng: random.Random, max_attempts: int = 200
) -> ExplicitTopology:
    """Random *degree*-regular overlay via the configuration model.

    Pairs up ``n * degree`` half-edge stubs uniformly and retries on
    self-loops or multi-edges (rejection gives the uniform simple-graph
    distribution asymptotically and is fast for the moderate degrees an
    overlay uses).  ``n * degree`` must be even and ``degree < n``.
    """
    require_positive_int("n_slots", n_slots)
    require_positive_int("degree", degree)
    if degree >= n_slots:
        raise ValueError(f"degree {degree} must be < n_slots {n_slots}")
    if (n_slots * degree) % 2 != 0:
        raise ValueError(
            f"n_slots * degree must be even, got {n_slots} * {degree}"
        )
    for _ in range(max_attempts):
        # Incremental repair: pair up stubs, keep the good pairs, and
        # reshuffle only the conflicting stubs.  Whole-matching rejection has
        # acceptance probability ~exp(-(d^2-1)/4), hopeless beyond d~4.
        remaining = [slot for slot in range(n_slots) for _ in range(degree)]
        edges: Set[Tuple[int, int]] = set()
        stuck = 0
        while remaining and stuck < 50:
            rng.shuffle(remaining)
            leftover: List[int] = []
            for index in range(0, len(remaining), 2):
                a, b = remaining[index], remaining[index + 1]
                key = (min(a, b), max(a, b))
                if a == b or key in edges:
                    leftover.append(a)
                    leftover.append(b)
                else:
                    edges.add(key)
            stuck = stuck + 1 if len(leftover) == len(remaining) else 0
            remaining = leftover
        if not remaining:
            adjacency: Dict[int, List[int]] = {slot: [] for slot in range(n_slots)}
            for a, b in sorted(edges):
                adjacency[a].append(b)
            return ExplicitTopology(n_slots, adjacency)
    raise RuntimeError(
        f"failed to draw a simple {degree}-regular graph on {n_slots} slots "
        f"in {max_attempts} attempts"
    )
