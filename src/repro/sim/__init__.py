"""Simulation substrate: event engine, RNG, topology, churn, metrics."""

from repro.sim.churn import ChurnModel
from repro.sim.engine import (
    EventHandle,
    PoissonProcess,
    Simulator,
    ThinnedPoissonProcess,
)
from repro.sim.metrics import MetricsCollector, MetricsReport, WindowedAverage, WindowedCounter
from repro.sim.rng import SeedSequenceRegistry, exponential
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.topology import (
    CompleteTopology,
    ExplicitTopology,
    Topology,
    erdos_renyi_topology,
    random_regular_topology,
)

__all__ = [
    "ChurnModel",
    "EventHandle",
    "PoissonProcess",
    "Simulator",
    "ThinnedPoissonProcess",
    "MetricsCollector",
    "MetricsReport",
    "WindowedAverage",
    "WindowedCounter",
    "SeedSequenceRegistry",
    "TraceEvent",
    "Tracer",
    "exponential",
    "CompleteTopology",
    "ExplicitTopology",
    "Topology",
    "erdos_renyi_topology",
    "random_regular_topology",
]
