"""Deterministic random-number management for simulations.

Every stochastic component of the simulator draws from a named substream
derived from one root seed, so

- a whole experiment is reproducible from a single integer,
- adding a new random component does not perturb the draws of existing ones
  (substreams are independent by name, not by draw order), and
- scalar event-timing draws use ``random.Random`` (fast for single values)
  while vectorized coding draws use ``numpy.random.Generator``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for substream *name* from *root_seed*."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SeedSequenceRegistry:
    """Factory of named, independent random substreams.

    Example::

        seeds = SeedSequenceRegistry(42)
        gossip_rng = seeds.python("gossip")     # random.Random
        coding_rng = seeds.numpy("coding")      # numpy Generator

    Requesting the same name twice returns the *same* generator object so
    components can share a stream deliberately; distinct names never collide
    (modulo SHA-256).
    """

    def __init__(self, root_seed: int) -> None:
        if isinstance(root_seed, bool) or not isinstance(root_seed, int):
            raise ValueError(f"root seed must be an integer, got {root_seed!r}")
        self.root_seed = root_seed
        self._python: Dict[str, random.Random] = {}
        self._numpy: Dict[str, np.random.Generator] = {}

    def python(self, name: str) -> random.Random:
        """Return the ``random.Random`` substream called *name*."""
        stream = self._python.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.root_seed, "py:" + name))
            self._python[name] = stream
        return stream

    def numpy(self, name: str) -> np.random.Generator:
        """Return the ``numpy.random.Generator`` substream called *name*."""
        stream = self._numpy.get(name)
        if stream is None:
            stream = np.random.default_rng(_derive_seed(self.root_seed, "np:" + name))
            self._numpy[name] = stream
        return stream

    def spawn(self, name: str) -> "SeedSequenceRegistry":
        """Derive a child registry (for nested components such as repeats)."""
        return SeedSequenceRegistry(_derive_seed(self.root_seed, "child:" + name))

    def __repr__(self) -> str:
        return f"SeedSequenceRegistry(root_seed={self.root_seed})"


def exponential(rng: random.Random, rate: float) -> float:
    """Draw an Exp(rate) waiting time; ``rate`` must be > 0."""
    if rate <= 0:
        raise ValueError(f"exponential rate must be > 0, got {rate}")
    return rng.expovariate(rate)
