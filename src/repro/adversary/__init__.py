"""Byzantine peer-behavior models and server-side defenses.

This package is the active-misbehavior counterpart of :mod:`repro.faults`:
:class:`AdversaryPlan` declares which strategies are in play (liars,
free-riders, strategic polluters, sybil bursts), the
:class:`AdversaryInjector` executes them against a running simulation, and
:class:`PullSourceScorer` implements the server-side defenses (pull-source
scoring with quarantine, advertisement discounting).  See
``docs/ADVERSARY.md`` for the threat model and the E-ADVERSARY experiment.
"""

from repro.adversary.defense import (
    OUTCOME_JUNK,
    OUTCOME_REDUNDANT,
    OUTCOME_USEFUL,
    PullSourceScorer,
    SourceScore,
)
from repro.adversary.injector import AdversaryInjector
from repro.adversary.plan import (
    TARGET_LOW_DEGREE,
    TARGET_UNIFORM,
    VALID_TARGETING,
    AdversaryPlan,
)

__all__ = [
    "AdversaryInjector",
    "AdversaryPlan",
    "PullSourceScorer",
    "SourceScore",
    "OUTCOME_USEFUL",
    "OUTCOME_REDUNDANT",
    "OUTCOME_JUNK",
    "TARGET_LOW_DEGREE",
    "TARGET_UNIFORM",
    "VALID_TARGETING",
]
