"""Server-side defenses: pull-source scoring and advertisement discounting.

The servers cannot inspect a peer's buffer, but they *can* remember what
each identity delivered.  :class:`PullSourceScorer` keeps a per-identity
exponentially weighted moving average of "useful rank delivered" over the
pulls the servers issued to it:

- a block the decoder accepts as innovative scores **1.0**,
- a clean but redundant block scores **0.5** (honest peers serve these
  constantly — redundancy is the protocol's cost, not a crime),
- a detected junk block scores **0.0**.

Two defenses read the same score, each independently toggleable through
:class:`repro.core.params.Parameters`:

- **pull-source scoring** (``pull_scoring``) — identities whose score
  falls below ``quarantine_threshold`` after at least ``scoring_min_pulls``
  observations are quarantined: the server re-draws its pull target.
  Every ``probation_interval``-th rejected attempt is let through as a
  probe, so an identity that starts behaving (or was wrongly demoted under
  fault-channel pollution) can climb back out.
- **advertisement discounting** (``advert_discounting``) — the liar
  capture model (see :mod:`repro.adversary.injector`) multiplies its
  capture acceptance by the target's :meth:`PullSourceScorer.trust`, so an
  identity that has served junk loses exactly the inflated attraction it
  was exploiting.

Identity is ``(slot, generation)``: churn replacing a peer resets its
score, mirroring how a real deployment can only score the identity it
talks to, not the physical machine behind it.  The scorer is fully
deterministic — it draws no randomness — so enabling it perturbs no RNG
substream.

Honest-path safety at default thresholds: with no adversaries and no
fault-channel pollution every recorded outcome is useful or redundant, so
a score is a convex combination of values >= 0.5 and can never cross the
default threshold of 0.25 — zero false quarantines, which the property
test asserts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.util.validation import (
    require_in_range,
    require_positive_int,
    require_probability,
)

#: Outcome labels for one scored pull.
OUTCOME_USEFUL = "useful"
OUTCOME_REDUNDANT = "redundant"
OUTCOME_JUNK = "junk"

#: Useful-rank value of each outcome (the EWMA input).
OUTCOME_VALUES: Dict[str, float] = {
    OUTCOME_USEFUL: 1.0,
    OUTCOME_REDUNDANT: 0.5,
    OUTCOME_JUNK: 0.0,
}


class SourceScore:
    """Mutable per-identity scoring state."""

    __slots__ = ("generation", "score", "pulls", "quarantined", "denied")

    def __init__(self, generation: int) -> None:
        self.generation = generation
        #: EWMA of useful-rank delivered; starts at full benefit of doubt.
        self.score = 1.0
        #: scored pulls observed for this identity.
        self.pulls = 0
        self.quarantined = False
        #: rejected draws since quarantine (drives the probation probe).
        self.denied = 0


class PullSourceScorer:
    """Per-identity EWMA of useful-rank-delivered, with quarantine.

    Args:
        alpha: EWMA step size in (0, 1]; larger forgets faster.
        threshold: quarantine when the score falls below this value.
        min_pulls: observations required before quarantine may trigger
            (a single unlucky redundant pull must not demote anyone).
        probation_interval: every Nth rejected draw against a quarantined
            identity is admitted as a probe so scores can recover.
        quarantine: when False the scorer only tracks trust (the
            advertisement-discounting-only configuration) and
            :meth:`admit` always returns True.
    """

    def __init__(
        self,
        alpha: float = 0.25,
        threshold: float = 0.25,
        min_pulls: int = 8,
        probation_interval: int = 64,
        quarantine: bool = True,
    ) -> None:
        require_probability("alpha", alpha)
        if alpha == 0.0:
            raise ValueError("alpha must be > 0, got 0.0 (score would freeze)")
        require_in_range("threshold", threshold, low=0.0, high=1.0)
        require_positive_int("min_pulls", min_pulls)
        require_positive_int("probation_interval", probation_interval)
        self.alpha = alpha
        self.threshold = threshold
        self.min_pulls = min_pulls
        self.probation_interval = probation_interval
        self.quarantine_enabled = quarantine
        self._scores: Dict[int, SourceScore] = {}
        #: lifetime quarantine transitions (an identity counts once).
        self.quarantines = 0

    def _score_for(self, slot: int, generation: int) -> SourceScore:
        """The identity's state; a new generation is a fresh identity."""
        state = self._scores.get(slot)
        if state is None or state.generation != generation:
            state = SourceScore(generation)
            self._scores[slot] = state
        return state

    # -- the scoring hot path ---------------------------------------------------

    def record(self, slot: int, generation: int, outcome: str) -> bool:
        """Fold one pull outcome into the identity's score.

        Returns True exactly when this observation newly quarantined the
        identity (so the caller can count/trace the transition once).
        """
        value = OUTCOME_VALUES.get(outcome)
        if value is None:
            raise ValueError(
                f"outcome must be one of {sorted(OUTCOME_VALUES)}, "
                f"got {outcome!r}"
            )
        state = self._score_for(slot, generation)
        state.pulls += 1
        state.score += self.alpha * (value - state.score)
        if not self.quarantine_enabled or state.quarantined:
            # Already quarantined identities can only *leave* via probation
            # probes lifting the score back over the threshold.
            if state.quarantined and state.score >= self.threshold:
                state.quarantined = False
                state.denied = 0
            return False
        if state.pulls >= self.min_pulls and state.score < self.threshold:
            state.quarantined = True
            state.denied = 0
            self.quarantines += 1
            return True
        return False

    def admit(self, slot: int, generation: int) -> bool:
        """Should the server pull from this identity right now?

        Non-quarantined identities are always admitted.  Quarantined ones
        are rejected, except that every ``probation_interval``-th rejection
        is converted into an admitted probe.
        """
        if not self.quarantine_enabled:
            return True
        state = self._scores.get(slot)
        if state is None or state.generation != generation:
            return True
        if not state.quarantined:
            return True
        state.denied += 1
        return state.denied % self.probation_interval == 0

    def trust(self, slot: int, generation: int) -> float:
        """Trust weight in [0, 1] for advertisement discounting.

        Unknown or barely observed identities get full trust (the servers
        have no evidence yet); scored identities get their EWMA.
        """
        state = self._scores.get(slot)
        if state is None or state.generation != generation:
            return 1.0
        if state.pulls < self.min_pulls:
            return 1.0
        return state.score

    # -- diagnostics ------------------------------------------------------------

    def is_quarantined(self, slot: int, generation: int) -> bool:
        """True when the identity is currently quarantined."""
        state = self._scores.get(slot)
        return (
            state is not None
            and state.generation == generation
            and state.quarantined
        )

    def quarantined_identities(self) -> List[Tuple[int, int]]:
        """Currently quarantined (slot, generation) pairs, sorted."""
        return sorted(
            (slot, state.generation)
            for slot, state in self._scores.items()
            if state.quarantined
        )

    def tracked_identities(self) -> int:
        """Identities with at least one scored pull."""
        return sum(1 for state in self._scores.values() if state.pulls > 0)
