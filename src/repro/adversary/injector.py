"""Runtime adversary execution: the machinery behind an :class:`AdversaryPlan`.

The :class:`AdversaryInjector` is the single object the collection system
consults on its adversary-relevant hot paths (gossip emission, server pull
targeting) and the owner of the sybil-burst clock.  It follows the same
design rules as :class:`repro.faults.injector.FaultInjector`:

- **Own randomness.**  Every adversarial draw comes from the dedicated
  ``"adversary"`` RNG substream, so enabling a strategy never perturbs the
  draws of injection, gossip, server, TTL, churn, or fault clocks.
- **Bitwise neutrality at zero.**  A null plan constructs no injector at
  all (the system guards every hook on ``None``), and each query
  short-circuits before touching the RNG when its strategy is off.
- **Hooks, not references.**  Sybil bursts act through an injected
  kill-slots callback and read replacement generations through an injected
  accessor, so the injector is testable standalone and never imports the
  core layer.

Role assignment is by *slot* (like the fault channel's polluters): the
static liar/free-rider/polluter sets are disjoint slot sets sampled once at
construction and persist across churn generations.  Sybil conversions are
by *identity*: a burst force-departs slots through the churn model and
marks each replacement ``(slot, generation)`` as adversarial; when natural
churn replaces that generation, the slot reverts to honest.  An active
sybil behaves as liar + free-rider.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.adversary.plan import TARGET_LOW_DEGREE, AdversaryPlan
from repro.sim.engine import EventHandle, Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.rng import exponential
from repro.sim.trace import Tracer


class AdversaryInjector:
    """Executes one :class:`AdversaryPlan` against a running simulation.

    Args:
        plan: The adversary configuration (must be non-null).
        sim: The simulation engine (sybil bursts are scheduled on it).
        rng: Dedicated ``random.Random`` substream for adversarial draws.
        n_slots: Number of peer slots (role sampling, capture arithmetic).
        metrics: Collector for degradation accounting.
        tracer: Optional tracer (the system emits the sybil events).
    """

    def __init__(
        self,
        plan: AdversaryPlan,
        sim: Simulator,
        rng: random.Random,
        n_slots: int,
        metrics: MetricsCollector,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.plan = plan
        self._sim = sim
        self._rng = rng
        self._n_slots = n_slots
        self._metrics = metrics
        self._tracer = tracer
        liars, freeriders, polluters = self._sample_roles()
        #: static role slot sets, disjoint by construction.
        self.liars: FrozenSet[int] = liars
        self.freeriders: FrozenSet[int] = freeriders
        self.polluters: FrozenSet[int] = polluters
        #: pre-sorted liar slots for deterministic capture choice.
        self._liar_list: Tuple[int, ...] = tuple(sorted(liars))
        #: active sybil identities: slot -> adversarial generation.
        self._sybils: Dict[int, int] = {}
        self._handles: List[EventHandle] = []
        self._started = False
        # hooks bound by the system before start()
        self._kill_slots: Optional[Callable[[Sequence[int]], None]] = None
        self._get_generation: Optional[Callable[[int], int]] = None
        #: lifetime tallies (diagnostics; metrics hold windowed counts).
        self.sybil_bursts_fired = 0
        self.sybil_conversions = 0

    def _sample_roles(
        self,
    ) -> Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
        """Draw the disjoint liar/free-rider/polluter slot sets."""
        plan = self.plan
        n = self._n_slots
        if plan.static_fraction <= 0.0:
            return frozenset(), frozenset(), frozenset()
        order = self._rng.sample(range(n), n)
        counts = []
        remaining = n
        for fraction in (
            plan.liar_fraction,
            plan.freerider_fraction,
            plan.polluter_fraction,
        ):
            count = 0
            if fraction > 0.0:
                count = min(remaining, max(1, round(fraction * n)))
            counts.append(count)
            remaining -= count
        liar_end = counts[0]
        freerider_end = liar_end + counts[1]
        polluter_end = freerider_end + counts[2]
        return (
            frozenset(order[:liar_end]),
            frozenset(order[liar_end:freerider_end]),
            frozenset(order[freerider_end:polluter_end]),
        )

    # -- lifecycle -------------------------------------------------------------

    def bind(
        self,
        kill_slots: Callable[[Sequence[int]], None],
        get_generation: Callable[[int], int],
    ) -> None:
        """Attach the system hooks sybil bursts act through."""
        self._kill_slots = kill_slots
        self._get_generation = get_generation

    def start(self) -> None:
        """Arm the sybil-burst clock (no-op when the strategy is off)."""
        if self._started:
            raise RuntimeError("adversary injector already started")
        self._started = True
        if self.plan.sybil_rate > 0:
            if self._kill_slots is None or self._get_generation is None:
                raise RuntimeError("bind() must be called before start()")
            self._arm_next_sybil_burst()

    def stop(self) -> None:
        """Cancel every pending sybil burst (teardown for repeated runs)."""
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    # -- hot-path queries (off strategies must not touch the RNG) ----------------

    def is_sybil(self, slot: int, generation: int) -> bool:
        """True when this identity is an active sybil conversion."""
        return bool(self._sybils) and self._sybils.get(slot) == generation

    def suppress_gossip(self, slot: int, generation: int) -> bool:
        """True when the peer free-rides (gossips nothing)."""
        if not self.freeriders and not self._sybils:
            return False
        return slot in self.freeriders or self.is_sybil(slot, generation)

    def targets_low_degree(self, slot: int) -> bool:
        """True when *slot* is a strategic polluter steering its emissions
        at the least-replicated segment it holds."""
        if not self.polluters:
            return False
        return (
            self.plan.polluter_targeting == TARGET_LOW_DEGREE
            and slot in self.polluters
        )

    def pollutes_gossip(self, slot: int) -> bool:
        """True when *slot* corrupts the block it is about to gossip."""
        return bool(self.polluters) and slot in self.polluters

    def serves_junk(self, slot: int, generation: int) -> bool:
        """True when a server pull from this identity yields a junk block.

        Liars and active sybils bait-and-switch; polluters corrupt every
        emission.  Free-riders serve honest blocks — hoarding, not lying.
        """
        if not self.liars and not self.polluters and not self._sybils:
            return False
        return (
            slot in self.liars
            or slot in self.polluters
            or self.is_sybil(slot, generation)
        )

    def is_adversarial(self, slot: int, generation: int) -> bool:
        """True when this identity plays any adversarial role."""
        return (
            slot in self.liars
            or slot in self.freeriders
            or slot in self.polluters
            or self.is_sybil(slot, generation)
        )

    # -- liar advertisement capture ----------------------------------------------

    def _active_attractors(self) -> Sequence[int]:
        """Slots currently advertising inflated buffers (liars + sybils)."""
        if not self._sybils:
            return self._liar_list
        self._prune_sybils()
        if not self._sybils:
            return self._liar_list
        extra = [
            slot for slot in sorted(self._sybils) if slot not in self.liars
        ]
        return list(self._liar_list) + extra

    def _prune_sybils(self) -> None:
        """Drop sybil marks whose identity natural churn already replaced."""
        get_generation = self._get_generation
        if get_generation is None:
            return
        stale = [
            slot
            for slot, generation in self._sybils.items()
            if get_generation(slot) != generation
        ]
        for slot in stale:
            del self._sybils[slot]

    def capture_pull(self) -> Optional[int]:
        """Decide whether an advertising adversary captures one pull.

        With ``k`` advertising adversaries each inflating its apparent
        buffer by factor ``A``, a rank-weighted target selection lands on
        some adversary with probability ``A*k / (A*k + (N - k))``; the
        captured slot is then uniform among them.  Returns the capturing
        slot, or None when the pull proceeds through the honest selection
        path.  Runs with no liars and no sybils return None without
        touching the RNG.
        """
        if not self.liars and not self._sybils:
            return None
        attractors = self._active_attractors()
        k = len(attractors)
        if k == 0:
            return None
        weight = self.plan.liar_inflation * k
        honest = self._n_slots - k
        if self._rng.random() >= weight / (weight + honest):
            return None
        return attractors[self._rng.randrange(k)]

    def accept_capture(self, trust: float) -> bool:
        """Advertisement discounting: a capture survives with prob *trust*."""
        if trust >= 1.0:
            return True
        return trust > 0.0 and self._rng.random() < trust

    # -- sybil bursts ------------------------------------------------------------

    def sybil_burst_size(self) -> int:
        """Slots converted per burst event (at least one, at most all)."""
        return min(
            self._n_slots,
            max(1, round(self.plan.sybil_fraction * self._n_slots)),
        )

    def active_sybil_count(self) -> int:
        """Currently active sybil identities (stale marks pruned)."""
        if not self._sybils:
            return 0
        self._prune_sybils()
        return len(self._sybils)

    def _arm_next_sybil_burst(self) -> None:
        gap = exponential(self._rng, self.plan.sybil_rate)
        self._handles.append(self._sim.schedule(gap, self._fire_sybil_burst))

    def _fire_sybil_burst(self) -> None:
        slots = self._rng.sample(range(self._n_slots), self.sybil_burst_size())
        self.sybil_bursts_fired += 1
        assert self._kill_slots is not None  # start() enforces bind()
        assert self._get_generation is not None
        # The kill hook rides the churn replacement model: each slot's
        # occupant departs and a fresh identity joins; we mark exactly that
        # replacement generation as the adversarial identity.
        self._kill_slots(slots)
        for slot in slots:
            self._sybils[slot] = self._get_generation(slot)
        self.sybil_conversions += len(slots)
        self._arm_next_sybil_burst()
