"""Declarative adversary configuration: who misbehaves, and how.

An :class:`AdversaryPlan` is the Byzantine counterpart of
:class:`repro.faults.plan.FaultPlan`: a frozen bundle of *strategic*
misbehavior knobs the collection system threads into its hot paths through
an :class:`repro.adversary.injector.AdversaryInjector`.  Where the fault
plan models passive failures (links drop, servers crash, peers churn), the
adversary plan models peers that follow the protocol's letter while
violating its spirit — the behaviors the eDonkey measurement studies
document at deployed scale:

- **liars** — advertise inflated buffer rank/degree so the servers' pull
  selection gravitates toward them, then serve junk blocks;
- **free-riders** — accept gossiped blocks but never gossip anything,
  draining replication from the swarm while consuming its bandwidth;
- **strategic polluters** — corrupt their emissions like the fault
  channel's polluters, but target the *lowest-degree* segments, attacking
  exactly the segments with the least redundancy to spare;
- **sybil bursts** — Poisson-timed events that convert a random fraction
  of peer slots into fresh adversarial identities, riding the churn
  replacement model (a sybil identity behaves as liar + free-rider until
  natural churn replaces it).

All knobs default to "off"; a default-constructed plan is *null* and the
injector built from it is never constructed at all — a run with a null
plan is event-for-event identical to a run with no plan (the neutrality
property test in ``tests/test_adversary.py`` asserts exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.validation import (
    require_in_range,
    require_nonnegative,
    require_probability,
)

#: Strategic polluter segment-targeting rules.
TARGET_LOW_DEGREE = "low-degree"
TARGET_UNIFORM = "uniform"
VALID_TARGETING = (TARGET_LOW_DEGREE, TARGET_UNIFORM)


@dataclass(frozen=True)
class AdversaryPlan:
    """Complete Byzantine-behavior configuration for one session."""

    #: fraction of peer slots that lie about their buffers to attract pulls
    #: and then serve junk.
    liar_fraction: float = 0.0
    #: advertisement inflation factor A >= 1: a pull is captured by some
    #: liar with probability A*k / (A*k + (N - k)) where k counts the
    #: currently advertising adversaries (liars plus active sybils).
    liar_inflation: float = 8.0
    #: fraction of peer slots that accept blocks but never gossip.
    freerider_fraction: float = 0.0
    #: fraction of peer slots that corrupt every block they emit.
    polluter_fraction: float = 0.0
    #: which segments strategic polluters spread junk into:
    #: ``"low-degree"`` targets the held segment with the least network
    #: redundancy; ``"uniform"`` keeps the protocol's own selection rule.
    polluter_targeting: str = TARGET_LOW_DEGREE
    #: Poisson rate of sybil-burst events (correlated adversarial joins).
    sybil_rate: float = 0.0
    #: fraction of peer slots converted to sybil identities per burst.
    sybil_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_probability("liar_fraction", self.liar_fraction)
        require_in_range("liar_inflation", self.liar_inflation, low=1.0)
        require_probability("freerider_fraction", self.freerider_fraction)
        require_probability("polluter_fraction", self.polluter_fraction)
        require_nonnegative("sybil_rate", self.sybil_rate)
        require_probability("sybil_fraction", self.sybil_fraction)
        if self.polluter_targeting not in VALID_TARGETING:
            raise ValueError(
                f"polluter_targeting must be one of {VALID_TARGETING}, "
                f"got {self.polluter_targeting!r}"
            )
        total = (
            self.liar_fraction
            + self.freerider_fraction
            + self.polluter_fraction
        )
        if total > 1.0:
            raise ValueError(
                "liar_fraction + freerider_fraction + polluter_fraction must "
                f"be <= 1 (roles are disjoint slot sets), got {total!r}"
            )
        if self.sybil_rate > 0 and self.sybil_fraction <= 0:
            raise ValueError(
                "sybil bursts need sybil_fraction > 0 when sybil_rate > 0"
            )

    # -- derived ---------------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when every adversarial strategy is disabled."""
        return (
            self.liar_fraction == 0.0
            and self.freerider_fraction == 0.0
            and self.polluter_fraction == 0.0
            and self.sybil_rate == 0.0
        )

    @property
    def static_fraction(self) -> float:
        """Fraction of slots adversarial from t=0 (excludes sybil churn)."""
        return (
            self.liar_fraction
            + self.freerider_fraction
            + self.polluter_fraction
        )

    def describe(self) -> str:
        """One-line human-readable summary of the active strategies."""
        parts: List[str] = []
        if self.liar_fraction:
            parts.append(
                f"liars={self.liar_fraction:g}x{self.liar_inflation:g}"
            )
        if self.freerider_fraction:
            parts.append(f"freeriders={self.freerider_fraction:g}")
        if self.polluter_fraction:
            parts.append(
                f"polluters={self.polluter_fraction:g}"
                f"({self.polluter_targeting})"
            )
        if self.sybil_rate:
            parts.append(
                f"sybils(rate={self.sybil_rate:g},"
                f"frac={self.sybil_fraction:g})"
            )
        return " ".join(parts) if parts else "no adversaries"
