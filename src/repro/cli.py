"""Command-line interface: ``python -m repro <experiment>`` or ``repro ...``.

Regenerates any of the paper's figures (and the extra validations) from the
terminal and optionally writes the series to JSON::

    repro fig3 --quality fast
    repro fig5 --quality full --json results/fig5.json
    repro all --quality fast
    repro fig4 --seeds 1,2,3,4          # override the preset seed list

The parallel sweep runner executes the same experiments as sharded task
grids on a worker pool, journaling each cell for checkpoint/resume (see
``docs/RUNNER.md``)::

    repro run fig5 --quality fast --workers 4
    repro run fig5 --workers 4 --resume fig5-001

The static determinism checker is exposed as a subcommand (see
``docs/LINTING.md``)::

    repro lint --strict src/repro

The chaos campaign engine searches the fault space under runtime invariant
monitors and replays minimal reproducers (see ``docs/CHAOS.md``)::

    repro chaos run --budget 200 --workers 4 --seed 7
    repro chaos replay runs/chaos-campaign-001/repro-00013.json

The live deployment runtime serves the protocol over real TCP sockets
(see ``docs/LIVE.md``)::

    repro live swarm --n-peers 64 --duration 8 --json
    repro live serve --port 9000 &
    repro live peer --server-host 10.0.0.1 --server-port 9000
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    QUALITY_FAST,
    QUALITY_FULL,
    SeriesResult,
    SimBudget,
    budget_for,
    override_budget,
    parse_seeds,
    run_adversary,
    run_baseline_comparison,
    run_buffer_ablation,
    run_coding_ablation,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_live,
    run_live_chaos,
    run_robustness,
    run_scale,
    run_scheduler_ablation,
    run_selection_ablation,
    run_theorem1,
    run_topology_ablation,
    run_transient,
    run_ttl_ablation,
)

RUNNERS: Dict[str, Callable[..., SeriesResult]] = {
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "theorem1": run_theorem1,
    "transient": run_transient,
    "baseline": run_baseline_comparison,
    "robustness": run_robustness,
    "adversary": run_adversary,
    "scale": run_scale,
    "live": run_live,
    "live-chaos": run_live_chaos,
    "ablation-ttl": run_ttl_ablation,
    "ablation-buffer": run_buffer_ablation,
    "ablation-selection": run_selection_ablation,
    "ablation-scheduler": run_scheduler_ablation,
    "ablation-coding": run_coding_ablation,
    "ablation-topology": run_topology_ablation,
}

#: Exit code when a runner session checkpoints before the grid completes
#: (``--stop-after``): the run is resumable, not failed.
EXIT_CHECKPOINTED = 3


def _add_budget_overrides(parser: argparse.ArgumentParser) -> None:
    """Budget-override flags shared by the legacy and runner paths."""
    parser.add_argument(
        "--seeds",
        default=None,
        metavar="N,N,...",
        help=(
            "comma-separated replication seeds overriding the quality "
            "preset (e.g. '--seeds 1,2,3'; duplicates are rejected)"
        ),
    )
    parser.add_argument(
        "--n-peers", type=int, default=None, metavar="N",
        help="override the preset peer population",
    )
    parser.add_argument(
        "--warmup", type=float, default=None, metavar="T",
        help="override the preset warmup interval",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="T",
        help="override the preset measurement interval",
    )
    parser.add_argument(
        "--n-servers", type=int, default=None, metavar="N",
        help="override the preset server count",
    )
    parser.add_argument(
        "--engine", choices=["event", "fast"], default=None,
        help=(
            "simulation engine: 'event' (event-exact, the default) or "
            "'fast' (vectorized struct-of-arrays; abstract mode only)"
        ),
    )
    parser.add_argument(
        "--tau", type=float, default=None, metavar="T",
        help=(
            "fast-engine tau-leap step in simulated time units "
            "(0 = exact aggregate clocks; default 0.01)"
        ),
    )


def _resolve_budget(args: argparse.Namespace) -> Optional[SimBudget]:
    """Apply any budget-override flags; ``None`` means 'use the preset'."""
    seeds = parse_seeds(args.seeds) if args.seeds is not None else None
    overrides = (
        seeds, args.n_peers, args.warmup, args.duration, args.n_servers,
        args.engine, args.tau,
    )
    if all(value is None for value in overrides):
        return None
    return override_budget(
        budget_for(args.quality),
        seeds=seeds,
        n_peers=args.n_peers,
        warmup=args.warmup,
        duration=args.duration,
        n_servers=args.n_servers,
        engine=args.engine,
        tau=args.tau,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Circumventing Server Bottlenecks: "
            "Indirect Large-Scale P2P Data Collection' (ICDCS 2008)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(RUNNERS) + ["all"],
        help=(
            "which figure/ablation to regenerate ('all' runs everything); "
            "'repro lint' runs the static determinism checker; 'repro run' "
            "drives the parallel sweep runner; 'repro chaos' runs the "
            "chaos campaign engine"
        ),
    )
    parser.add_argument(
        "--quality",
        choices=[QUALITY_FAST, QUALITY_FULL],
        default=QUALITY_FAST,
        help="simulation budget: 'fast' for minutes, 'full' for paper-scale",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the series to a JSON file (or directory for 'all')",
    )
    _add_budget_overrides(parser)
    return parser


def build_run_parser() -> argparse.ArgumentParser:
    """Parser of the ``repro run`` subcommand (the parallel runner)."""
    parser = argparse.ArgumentParser(
        prog="repro run",
        description=(
            "Execute one experiment as a sharded task grid on a worker "
            "pool with checkpoint/resume; results are byte-identical to "
            "the serial path (docs/RUNNER.md)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment name (as in 'repro <experiment>')",
    )
    parser.add_argument(
        "--quality",
        choices=[QUALITY_FAST, QUALITY_FULL],
        default=QUALITY_FAST,
        help="simulation budget preset",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes (default 1)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help=(
            "resume an interrupted run: execute only the cells missing "
            "from its journal (the spec is restored from the manifest)"
        ),
    )
    parser.add_argument(
        "--run-id", default=None, metavar="ID",
        help="name the run directory (default: auto '<experiment>-NNN')",
    )
    parser.add_argument(
        "--runs-dir", type=Path, default=Path("runs"), metavar="DIR",
        help="parent directory for run journals (default: runs/)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the merged series to a JSON file",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry any task exceeding this wall-clock budget",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-executions allowed per task before the run fails "
        "(default 2)",
    )
    parser.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help=(
            "checkpoint: end the session after N cells complete in it "
            "(resume later with --resume)"
        ),
    )
    parser.add_argument(
        "--no-progress", action="store_true",
        help="suppress the live progress line",
    )
    _add_budget_overrides(parser)
    return parser


def run_experiment(
    name: str, quality: str, budget: Optional[SimBudget] = None
) -> SeriesResult:
    """Run one named experiment and return its series."""
    runner = RUNNERS.get(name)
    if runner is None:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(RUNNERS)}"
        )
    if budget is not None:
        return runner(quality=quality, budget=budget)
    return runner(quality=quality)


def run_main(argv: List[str]) -> int:
    """Entry point of ``repro run ...`` (the parallel sweep runner)."""
    from repro.runner import JournalError, RunJournal, RunSpec, execute_run

    args = build_run_parser().parse_args(argv)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2

    try:
        if args.resume is not None:
            # The journal manifest is the source of truth for a resumed
            # spec; the fingerprint check still guards against drift.
            journal = RunJournal.load(args.runs_dir / args.resume)
            manifest_spec = journal.manifest()["spec"]
            spec = RunSpec.from_dict(manifest_spec)
            if args.experiment != spec.experiment:
                print(
                    f"error: run {args.resume} is a {spec.experiment!r} "
                    f"sweep, not {args.experiment!r}",
                    file=sys.stderr,
                )
                return 2
        else:
            budget = _resolve_budget(args) or budget_for(args.quality)
            spec = RunSpec.create(args.experiment, args.quality, budget)
        outcome = execute_run(
            spec,
            workers=args.workers,
            runs_dir=args.runs_dir,
            run_id=args.run_id,
            resume=args.resume,
            task_timeout=args.task_timeout,
            retries=args.retries,
            stop_after=args.stop_after,
            progress=not args.no_progress,
        )
    except (JournalError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if not outcome.complete:
        print(
            f"checkpointed {outcome.run_id}: "
            f"{outcome.completed_tasks}/{outcome.total_tasks} cells "
            f"journaled in {outcome.run_dir}; continue with "
            f"'repro run {spec.experiment} --resume {outcome.run_id}'",
            file=sys.stderr,
        )
        return EXIT_CHECKPOINTED

    result = outcome.result
    assert result is not None
    print(result.to_table())
    print()
    print(
        f"run {outcome.run_id}: {outcome.total_tasks} cells "
        f"({outcome.resumed_tasks} from journal, "
        f"{outcome.executed_this_session} executed) -> "
        f"{outcome.run_dir / 'result.json'}",
        file=sys.stderr,
    )
    if args.json is not None:
        if args.json.parent != Path("."):
            args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(result.to_json())
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.lint.__main__ import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "run":
        return run_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.chaos.cli import chaos_main

        return chaos_main(argv[1:])
    if (
        argv
        and argv[0] == "live"
        and len(argv) > 1
        and argv[1] in ("serve", "peer", "swarm")
    ):
        # 'repro live serve|peer|swarm' is the deployment runtime;
        # bare 'repro live' (no subcommand) runs the E-LIVE experiment.
        from repro.live.cli import live_main

        return live_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        budget = _resolve_budget(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = run_experiment(name, args.quality, budget)
        print(result.to_table())
        print()
        if args.json is not None:
            if args.experiment == "all":
                args.json.mkdir(parents=True, exist_ok=True)
                target = args.json / f"{result.name}.json"
            else:
                target = args.json
                if target.parent != Path("."):
                    target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(result.to_json())
            print(f"wrote {target}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
