"""Command-line interface: ``python -m repro <experiment>`` or ``repro ...``.

Regenerates any of the paper's figures (and the extra validations) from the
terminal and optionally writes the series to JSON::

    repro fig3 --quality fast
    repro fig5 --quality full --json results/fig5.json
    repro all --quality fast

The static determinism checker is exposed as a subcommand (see
``docs/LINTING.md``)::

    repro lint --strict src/repro
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    QUALITY_FAST,
    QUALITY_FULL,
    SeriesResult,
    run_baseline_comparison,
    run_buffer_ablation,
    run_coding_ablation,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_robustness,
    run_scheduler_ablation,
    run_selection_ablation,
    run_theorem1,
    run_topology_ablation,
    run_transient,
    run_ttl_ablation,
)

RUNNERS: Dict[str, Callable[..., SeriesResult]] = {
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "theorem1": run_theorem1,
    "transient": run_transient,
    "baseline": run_baseline_comparison,
    "robustness": run_robustness,
    "ablation-ttl": run_ttl_ablation,
    "ablation-buffer": run_buffer_ablation,
    "ablation-selection": run_selection_ablation,
    "ablation-scheduler": run_scheduler_ablation,
    "ablation-coding": run_coding_ablation,
    "ablation-topology": run_topology_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Circumventing Server Bottlenecks: "
            "Indirect Large-Scale P2P Data Collection' (ICDCS 2008)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(RUNNERS) + ["all"],
        help=(
            "which figure/ablation to regenerate ('all' runs everything); "
            "'repro lint' runs the static determinism checker"
        ),
    )
    parser.add_argument(
        "--quality",
        choices=[QUALITY_FAST, QUALITY_FULL],
        default=QUALITY_FAST,
        help="simulation budget: 'fast' for minutes, 'full' for paper-scale",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the series to a JSON file (or directory for 'all')",
    )
    return parser


def run_experiment(name: str, quality: str) -> SeriesResult:
    """Run one named experiment and return its series."""
    runner = RUNNERS.get(name)
    if runner is None:
        raise ValueError(f"unknown experiment {name!r}; choose from {sorted(RUNNERS)}")
    return runner(quality=quality)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.lint.__main__ import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = run_experiment(name, args.quality)
        print(result.to_table())
        print()
        if args.json is not None:
            if args.experiment == "all":
                args.json.mkdir(parents=True, exist_ok=True)
                target = args.json / f"{result.name}.json"
            else:
                target = args.json
                if target.parent != Path("."):
                    target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(result.to_json())
            print(f"wrote {target}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
