"""E-FIG5 — Fig. 5: average block delivery delay T for different s.

Paper setting: ``lambda = 20, mu = 10, gamma = 1``.  Block delay is the
delivery delay of a segment divided by the segment size (Theorem 3).

Reproduced series per capacity ``c``:

- ``analytic`` — Theorem 3's Little's-law expression
  ``T(s) = sum w_i / lambda - sum m_i^s / (lambda sigma)`` on the ODE steady
  state.  Faithfulness note: the expression is derived assuming blocks are
  eventually reconstructed; in heavy-loss corners (small s, small c) it can
  go slightly negative — we report it as computed and flag such points.
- ``sim`` — mean over segments actually completed in the measurement
  window of ``(completion time - injection time) / s``.

Expected shape: delay peaks at a small coded segment size (paper: around
s = 5) and decreases again for large s; the paper's conclusion combines
this with Fig. 3 into the recommendation ``s in [20, 40]``.
"""

from __future__ import annotations

from functools import partial
from typing import Mapping, Optional, Sequence

from repro.analysis.theorems import analyze
from repro.core.params import Parameters
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    seed_mean,
    simulate_cell,
)
from repro.experiments.fig3 import (
    ARRIVAL_RATE,
    CAPACITIES,
    DELETION_RATE,
    GOSSIP_RATE,
    SEGMENT_SIZES,
)

METRICS = ("mean_block_delay",)


def plan_fig5(
    quality: str = QUALITY_FAST,
    segment_sizes: Optional[Sequence[int]] = None,
    capacities: Sequence[float] = CAPACITIES,
    budget: Optional[SimBudget] = None,
    include_simulation: bool = True,
) -> ExperimentPlan:
    """Fig. 5 as a task grid: one cell per (c, s, seed) simulation."""
    if segment_sizes is None:
        segment_sizes = SEGMENT_SIZES["full" if quality == "full" else "fast"]
    budget = budget or budget_for(quality)

    tasks = []
    if include_simulation:
        for c in capacities:
            for s in segment_sizes:
                params = Parameters(
                    n_peers=budget.n_peers,
                    arrival_rate=ARRIVAL_RATE,
                    gossip_rate=GOSSIP_RATE,
                    deletion_rate=DELETION_RATE,
                    normalized_capacity=c,
                    segment_size=s,
                    n_servers=budget.n_servers,
                    engine=budget.engine,
                    tau=budget.tau,
                )
                for seed in budget.seeds:
                    tasks.append(SimTask(
                        task_id=f"c={c:g}:s={s}:seed={seed}",
                        thunk=partial(
                            simulate_cell, params, budget.warmup,
                            budget.duration, METRICS, seed,
                        ),
                    ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="fig5",
            title=(
                "Fig. 5 — average block delivery delay T(s) "
                f"(lambda={ARRIVAL_RATE:g}, mu={GOSSIP_RATE:g}, "
                f"gamma={DELETION_RATE:g})"
            ),
            x_name="s",
            x_values=[float(s) for s in segment_sizes],
        )
        negative_flagged = False
        for c in capacities:
            analytic = []
            for s in segment_sizes:
                point = analyze(ARRIVAL_RATE, GOSSIP_RATE, DELETION_RATE, s, c)
                delay = point.delay.block_delay
                if delay < 0:
                    negative_flagged = True
                analytic.append(delay)
            result.add_series(f"analytic c={c:g}", analytic)
            if include_simulation:
                simulated = [
                    seed_mean(
                        payloads, f"c={c:g}:s={s}", budget.seeds,
                        "mean_block_delay",
                    )
                    for s in segment_sizes
                ]
                result.add_series(f"sim c={c:g}", simulated)
        if negative_flagged:
            result.add_note(
                "negative analytic delays mark heavy-loss corners where "
                "Theorem 3's eventually-reconstructed assumption fails; the "
                "simulated (observed) delay is the physical value there"
            )
        result.add_note(
            "shape target: delay peaks at a small coded s (paper: ~5) and "
            "decreases for large s"
        )
        return result

    return ExperimentPlan("fig5", tasks, merge)


def run_fig5(
    quality: str = QUALITY_FAST,
    segment_sizes: Optional[Sequence[int]] = None,
    capacities: Sequence[float] = CAPACITIES,
    budget: Optional[SimBudget] = None,
    include_simulation: bool = True,
) -> SeriesResult:
    """Regenerate Fig. 5's series; returns the table-ready result."""
    return plan_fig5(
        quality, segment_sizes, capacities, budget, include_simulation
    ).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_fig5(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
