"""E-FIG6 — Fig. 6: data saved in each peer for future delivery.

Paper setting: ``lambda = 20, mu = 10, gamma = 1``.  The quantity is
Theorem 4's ``S / N = s * sum_{i >= s} (w_i - m_i^s)`` — the average number
of original blocks per peer that are decodable from network-buffered coded
blocks but have not been reconstructed by the servers yet.  This is the
"buffering zone": data the servers can still pull later, when demand falls.

Reproduced series per capacity ``c``: ``analytic`` (Theorem 4 on the ODE
steady state) and ``sim`` (exact time-average of the
decodable-but-unreconstructed population).

Expected shape: the saved amount *decreases* with s — total buffered data
is s-independent (Theorem 1) while throughput grows with s (Theorem 2), so
more of the buffered data is already reconstructed; yet it stays positive
at every s, the guaranteed delayed-delivery reserve the paper emphasizes.
"""

from __future__ import annotations

from functools import partial
from typing import Mapping, Optional, Sequence

from repro.analysis.theorems import analyze
from repro.core.params import Parameters
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    seed_mean,
    simulate_cell,
)
from repro.experiments.fig3 import (
    ARRIVAL_RATE,
    CAPACITIES,
    DELETION_RATE,
    GOSSIP_RATE,
    SEGMENT_SIZES,
)

METRICS = ("saved_blocks_per_peer",)


def plan_fig6(
    quality: str = QUALITY_FAST,
    segment_sizes: Optional[Sequence[int]] = None,
    capacities: Sequence[float] = CAPACITIES,
    budget: Optional[SimBudget] = None,
    include_simulation: bool = True,
) -> ExperimentPlan:
    """Fig. 6 as a task grid: one cell per (c, s, seed) simulation."""
    if segment_sizes is None:
        segment_sizes = SEGMENT_SIZES["full" if quality == "full" else "fast"]
    budget = budget or budget_for(quality)

    tasks = []
    if include_simulation:
        for c in capacities:
            for s in segment_sizes:
                params = Parameters(
                    n_peers=budget.n_peers,
                    arrival_rate=ARRIVAL_RATE,
                    gossip_rate=GOSSIP_RATE,
                    deletion_rate=DELETION_RATE,
                    normalized_capacity=c,
                    segment_size=s,
                    n_servers=budget.n_servers,
                    engine=budget.engine,
                    tau=budget.tau,
                )
                for seed in budget.seeds:
                    tasks.append(SimTask(
                        task_id=f"c={c:g}:s={s}:seed={seed}",
                        thunk=partial(
                            simulate_cell, params, budget.warmup,
                            budget.duration, METRICS, seed,
                        ),
                    ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="fig6",
            title=(
                "Fig. 6 — original blocks per peer saved for future "
                f"delivery (lambda={ARRIVAL_RATE:g}, mu={GOSSIP_RATE:g}, "
                f"gamma={DELETION_RATE:g})"
            ),
            x_name="s",
            x_values=[float(s) for s in segment_sizes],
        )
        for c in capacities:
            analytic = []
            for s in segment_sizes:
                point = analyze(ARRIVAL_RATE, GOSSIP_RATE, DELETION_RATE, s, c)
                analytic.append(point.saved.saved_blocks_per_peer)
            result.add_series(f"analytic c={c:g}", analytic)
            if include_simulation:
                simulated = [
                    seed_mean(
                        payloads, f"c={c:g}:s={s}", budget.seeds,
                        "saved_blocks_per_peer",
                    )
                    for s in segment_sizes
                ]
                result.add_series(f"sim c={c:g}", simulated)
        result.add_note(
            "shape target: saved data decreases with s (throughput rises "
            "while total buffering is s-independent) but stays positive — "
            "the guaranteed delayed-delivery reserve"
        )
        return result

    return ExperimentPlan("fig6", tasks, merge)


def run_fig6(
    quality: str = QUALITY_FAST,
    segment_sizes: Optional[Sequence[int]] = None,
    capacities: Sequence[float] = CAPACITIES,
    budget: Optional[SimBudget] = None,
    include_simulation: bool = True,
) -> SeriesResult:
    """Regenerate Fig. 6's series; returns the table-ready result."""
    return plan_fig6(
        quality, segment_sizes, capacities, budget, include_simulation
    ).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_fig6(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
