"""E-ADVERSARY: graceful degradation under Byzantine peers, with defenses.

E-ROBUST stresses the protocol with *passive* faults; this family stresses
it with peers that misbehave *strategically* (see :mod:`repro.adversary`):
liars that bait server pulls and serve junk, free-riders that hoard,
polluters that target the least-replicated segments, and sybil bursts that
convert slots into adversarial identities through the churn model.  The
grid sweeps adversary fraction x strategy x defenses on/off and reports,
per (strategy, defense arm), against the honest baseline of the same arm:

- **delivery ratio** — normalized goodput over the honest baseline's
  (1.0 = no degradation);
- **delay inflation** — mean per-block delivery delay over the honest
  baseline's (1.0 = no slowdown);
- **junk ratio** — junk blocks served per server pull (the bandwidth the
  adversary burns);

plus defense-quality notes: false-quarantine counts on every defended cell
and, per strategy, the fraction of the lost headroom the defenses
(pull-source scoring + advertisement discounting, both on in the "on" arm)
claw back at adversary fractions >= 0.2.  Recovery is computed on goodput
and on *collection delay per delivered original block* (measurement window
over delivered blocks, i.e. 1/goodput): the survivor-only ``mean_block_delay``
is reported as a curve but is biased exactly where degradation is worst —
under a total collapse no segment completes, so the survivors' mean delay
is undefined while the per-block collection delay correctly diverges (and
a defense that restores completion recovers that headroom in full).

All cells — including the baselines — run under the eDonkey-shaped
:class:`repro.stats.workload.TraceWorkload` (diurnal base x heavy-tailed
sessions), so the degradation ratios are measured on the workload the
motivation section argues actually matters, and the workload realization
is identical across cells (fixed trace seed) so ratios compare like with
like.

Free-riders are the honest-blocks edge case: they serve *clean* blocks
when pulled, so the pull-scoring defense has nothing to convict them of —
their damage (lost replication) and its defense-resistance are reported
as-is rather than hidden.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence

from repro.adversary.plan import AdversaryPlan
from repro.core.params import Parameters
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    seed_mean,
    simulate_cell,
)
from repro.stats.workload import TraceWorkload

#: The four Byzantine strategies, swept one at a time.
STRATEGIES = ("liars", "freeriders", "polluters", "sybils")
#: Defense arms: every cell runs once per arm against a same-arm baseline.
DEFENSE_ARMS = ("off", "on")
#: Default adversary-fraction sweep (0.0 rides the shared baselines).
DEFAULT_FRACTIONS = (0.0, 0.1, 0.2, 0.35, 0.5)

#: Fixed knobs for the non-swept part of each strategy.
LIAR_INFLATION = 8.0
SYBIL_RATE = 0.5
#: Finite churn so sybil identities are eventually replaced (the strategy
#: rides the churn model by construction).
MEAN_LIFETIME = 12.0
#: Frozen workload realization shared by every cell.
TRACE_SEED = 0
#: Operating point: gossip bandwidth is kept scarce (mu close to lambda)
#: so replication is a real resource — the regime where free-riding has
#: something to drain; c < mu preserves the Theorem 2 assumption.
ARRIVAL_RATE = 4.0
GOSSIP_RATE = 4.0
CAPACITY = 2.0
SEGMENT_SIZE = 4

WANTED = (
    "normalized_goodput",
    "mean_block_delay",
    "pulls",
    "junk_blocks_served",
    "pulls_captured",
    "gossip_suppressed",
    "pulls_quarantine_rejected",
    "slots_quarantined",
    "false_quarantines",
    "sybil_conversions",
)


def plan_for(strategy: str, fraction: float) -> AdversaryPlan:
    """Build the :class:`AdversaryPlan` of one (strategy, fraction) cell."""
    if fraction == 0.0:
        return AdversaryPlan()
    if strategy == "liars":
        return AdversaryPlan(
            liar_fraction=fraction, liar_inflation=LIAR_INFLATION
        )
    if strategy == "freeriders":
        return AdversaryPlan(freerider_fraction=fraction)
    if strategy == "polluters":
        return AdversaryPlan(polluter_fraction=fraction)
    if strategy == "sybils":
        return AdversaryPlan(sybil_rate=SYBIL_RATE, sybil_fraction=fraction)
    raise ValueError(f"unknown adversary strategy {strategy!r}")


def _base_params(
    budget: SimBudget, plan: AdversaryPlan, defended: bool
) -> Parameters:
    return Parameters(
        n_peers=budget.n_peers,
        arrival_rate=ARRIVAL_RATE,
        gossip_rate=GOSSIP_RATE,
        deletion_rate=1.0,
        normalized_capacity=CAPACITY,
        segment_size=SEGMENT_SIZE,
        n_servers=budget.n_servers,
        mean_lifetime=MEAN_LIFETIME,
        adversary=None if plan.is_null else plan,
        pull_scoring=defended,
        advert_discounting=defended,
    )


def _workload(budget: SimBudget) -> TraceWorkload:
    """The shared eDonkey-shaped trace, sized to cover the whole run."""
    return TraceWorkload(
        base_rate=ARRIVAL_RATE,
        amplitude=0.6,
        period=24.0,
        session_rate=0.25,
        mean_session=4.0,
        boost_per_session=0.5,
        peak_boost=1.0,
        horizon=budget.warmup + budget.duration + 1.0,
        seed=TRACE_SEED,
    )


def _ratio(value: float, baseline: float) -> float:
    if not baseline or math.isnan(value) or math.isnan(baseline):
        return math.nan
    return value / baseline


def _recovery(base: float, off: float, on: float) -> float:
    """Fraction of the headroom lost (base - off) that the defenses win
    back (on - off); NaN when there was no loss to recover."""
    lost = base - off
    if not lost or math.isnan(lost) or math.isnan(on):
        return math.nan
    return (on - off) / lost


def _collection_time(goodput: float) -> float:
    """Collection delay per delivered original block: 1/goodput.

    Diverges (inf) when nothing is delivered — the honest accounting of a
    total collapse, where the survivor-only mean delay is just undefined.
    """
    if math.isnan(goodput):
        return math.nan
    if goodput <= 0.0:
        return math.inf
    return 1.0 / goodput


def _time_recovery(base: float, off: float, on: float) -> float:
    """Recovery on the collection-time axis (headroom *grows* downward).

    ``(t_off - t_on) / (t_off - t_base)``; as the undefended arm's
    collection time diverges this tends to 1.0 for any finite defended
    time — restored delivery recovers the whole (unbounded) delay loss —
    and to 0.0 when the defended arm is equally collapsed.
    """
    t_base = _collection_time(base)
    t_off = _collection_time(off)
    t_on = _collection_time(on)
    if math.isnan(t_base) or math.isnan(t_off) or math.isnan(t_on):
        return math.nan
    if math.isinf(t_off):
        return 0.0 if math.isinf(t_on) else 1.0
    lost = t_off - t_base
    if not lost:
        return math.nan
    return (t_off - t_on) / lost


def plan_adversary(
    quality: str = QUALITY_FAST,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """E-ADVERSARY as a task grid.

    One honest baseline per (defense arm, seed) — the defended baseline
    doubles as the zero-false-positive check — plus one cell per
    (strategy, fraction > 0, defense arm, seed).
    """
    budget = budget or budget_for(quality)
    workload = _workload(budget)

    tasks = []
    for arm in DEFENSE_ARMS:
        params = _base_params(budget, AdversaryPlan(), defended=arm == "on")
        for seed in budget.seeds:
            tasks.append(SimTask(
                task_id=f"baseline:defense={arm}:seed={seed}",
                thunk=partial(
                    simulate_cell, params, budget.warmup, budget.duration,
                    WANTED, seed, workload,
                ),
            ))
    for strategy in STRATEGIES:
        for fraction in fractions:
            if fraction == 0.0:
                continue
            plan = plan_for(strategy, fraction)
            for arm in DEFENSE_ARMS:
                params = _base_params(budget, plan, defended=arm == "on")
                for seed in budget.seeds:
                    tasks.append(SimTask(
                        task_id=(
                            f"{strategy}:fraction={fraction:g}"
                            f":defense={arm}:seed={seed}"
                        ),
                        thunk=partial(
                            simulate_cell, params, budget.warmup,
                            budget.duration, WANTED, seed, workload,
                        ),
                    ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="adversary",
            title="Adversary — Byzantine strategies: delivery ratio, delay "
            "inflation, and junk ratio vs honest baseline, defenses "
            "off/on (lambda=4, mu=4, gamma=1, c=2, s=4, trace workload)",
            x_name="fraction",
            x_values=[float(f) for f in fractions],
        )
        base: Dict[str, Dict[str, float]] = {}
        for arm in DEFENSE_ARMS:
            base[arm] = {
                name: seed_mean(
                    payloads, f"baseline:defense={arm}", budget.seeds, name
                )
                for name in WANTED
            }
        result.add_note(
            "honest baselines (defenses off/on): normalized goodput "
            f"{base['off']['normalized_goodput']:.4f}/"
            f"{base['on']['normalized_goodput']:.4f}, mean block delay "
            f"{base['off']['mean_block_delay']:.4f}/"
            f"{base['on']['mean_block_delay']:.4f}"
        )
        false_quarantines = base["on"]["false_quarantines"]

        def cell(strategy: str, fraction: float, arm: str) -> Dict[str, float]:
            if fraction == 0.0:
                return base[arm]
            prefix = f"{strategy}:fraction={fraction:g}:defense={arm}"
            return {
                name: seed_mean(payloads, prefix, budget.seeds, name)
                for name in WANTED
            }

        recovery_notes: List[str] = []
        for strategy in STRATEGIES:
            for arm in DEFENSE_ARMS:
                delivery, inflation, junk = [], [], []
                for fraction in fractions:
                    metrics = cell(strategy, fraction, arm)
                    delivery.append(_ratio(
                        metrics["normalized_goodput"],
                        base[arm]["normalized_goodput"],
                    ))
                    inflation.append(_ratio(
                        metrics["mean_block_delay"],
                        base[arm]["mean_block_delay"],
                    ))
                    pulls = metrics["pulls"]
                    junk.append(
                        metrics["junk_blocks_served"] / pulls
                        if pulls
                        else math.nan
                    )
                    if arm == "on" and fraction > 0.0:
                        false_quarantines += metrics["false_quarantines"]
                tag = f"{strategy} [defenses {arm}]"
                result.add_series(f"delivery ratio: {tag}", delivery)
                result.add_series(f"delay inflation: {tag}", inflation)
                result.add_series(f"junk ratio: {tag}", junk)
            # Defense recovery at the acceptance fractions (>= 0.2): how
            # much of the goodput loss and the per-block collection-delay
            # inflation the defended arm claws back against the undefended
            # honest baseline.
            goodput_rec, delay_rec = [], []
            for fraction in fractions:
                if fraction < 0.2:
                    continue
                off = cell(strategy, fraction, "off")
                on = cell(strategy, fraction, "on")
                goodput_rec.append(_recovery(
                    base["off"]["normalized_goodput"],
                    off["normalized_goodput"],
                    on["normalized_goodput"],
                ))
                delay_rec.append(_time_recovery(
                    base["off"]["normalized_goodput"],
                    off["normalized_goodput"],
                    on["normalized_goodput"],
                ))
            goodput_values = [v for v in goodput_rec if not math.isnan(v)]
            delay_values = [v for v in delay_rec if not math.isnan(v)]
            mean_goodput = (
                math.fsum(goodput_values) / len(goodput_values)
                if goodput_values
                else math.nan
            )
            mean_delay = (
                math.fsum(delay_values) / len(delay_values)
                if delay_values
                else math.nan
            )
            recovery_notes.append(
                f"{strategy}: goodput recovery {mean_goodput:.2f}, "
                f"collection-delay recovery {mean_delay:.2f}"
            )
        result.add_note(
            "defense recovery at fractions >= 0.2 (1.0 = full headroom "
            "recovered, 0 = none; collection delay = window per delivered "
            "original block): " + "; ".join(recovery_notes)
        )
        result.add_note(
            f"false quarantines across every defended cell: "
            f"{false_quarantines:g} (honest identities wrongly quarantined; "
            "must be 0 at default thresholds)"
        )
        result.add_note(
            "expected: liars collapse goodput via captured pulls and are "
            "the defenses' best case (scoring quarantines them, discounting "
            "removes their attraction); polluters burn pulls until scored "
            "out; free-riders serve clean blocks so scoring cannot convict "
            "them — their (milder) replication damage stands; sybils are "
            "liars with identity churn, so defenses must re-learn each "
            "burst"
        )
        return result

    return ExperimentPlan("adversary", tasks, merge)


def run_adversary(
    quality: str = QUALITY_FAST,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """E-ADVERSARY: sweep adversary fraction x strategy x defenses."""
    return plan_adversary(quality, fractions, budget).run_serial()


def main(quality: str = QUALITY_FAST) -> None:
    """CLI entry: run and print the adversary sweep."""
    print(run_adversary(quality).to_table())


if __name__ == "__main__":
    main()
