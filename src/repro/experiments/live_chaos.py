"""E-LIVE-CHAOS — crash tolerance of the live swarm under process faults.

E-LIVE establishes that the live runtime and the event simulator agree in
steady state.  This experiment establishes that the agreement *survives
crashes*: a supervised multi-process swarm (``repro live swarm
--supervised``) is subjected to the process-level fault plane — the
logging-server process SIGKILLed mid-measurement-window, then a cohort of
peer processes SIGKILLed — and is compared against the event simulator
executing the *same* :class:`~repro.faults.plan.FaultPlan` through its
fault injector.

What the fault path exercises, end to end:

- the server's decode-state **checkpoint journal** — the SIGKILL lands
  between checkpoint writes, the supervised respawn restores the decoder
  pool bit-for-bit (the restore path *raises* on any rank mismatch, so a
  completed run is itself the zero-rank-lost proof) and resumes the same
  collection window on the restored clock epoch;
- peer **reconnect/resume** — every peer re-registers against the
  restarted server under the unified backoff policy and replays its
  buffer state;
- the **supervisor's restart budget** — chaos kills are indistinguishable
  from crashes to the monitor tasks.

Verdict: the faulted live run's steady-state metrics (throughput,
efficiency, occupancy, block-delay mean and p95) must stay within the
widened chaos tolerance bands of the simulator's faulted prediction, all
decoded segments must hash-verify, and the fault plane must actually have
fired (>= 1 server kill survived, >= 1 peer-cohort kill survived).
Bands are wider than E-LIVE's (:data:`CHAOS_TOLERANCES`) because both
estimates come from short faulted windows and the live outage length is
real wall time (respawn backoff) rather than a configured constant.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Mapping, Optional, Tuple

from repro.core.params import MODE_RLNC, Parameters
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    simulate_cell,
)
from repro.faults.plan import FaultPlan
from repro.live.crossval import compare_reports
from repro.live.supervisor import supervised_cell
from repro.util.summary import summarize

#: The operating point (same low-load corner as E-LIVE).
ARRIVAL_RATE = 0.25
GOSSIP_RATE = 1.0
DELETION_RATE = 0.25
CAPACITY = 1.0
PAYLOAD_BYTES = 64
SEGMENT_SIZE = 2

#: Widened sim-vs-live bands for faulted short windows (see module doc).
CHAOS_TOLERANCES: Dict[str, float] = {
    "normalized_throughput": 0.25,
    "efficiency": 0.25,
    "mean_buffer_occupancy": 0.35,
    "mean_block_delay": 0.60,
    "p95_block_delay": 0.75,
}

CROSSVAL_METRICS = tuple(CHAOS_TOLERANCES) + ("outage_time",)
LIVE_METRICS = CROSSVAL_METRICS + (
    "hash_verified",
    "hash_failures",
    "server_restarts",
    "restored_rank",
    "checkpoint_writes",
    "peer_proc_restarts",
    "process_faults_executed",
)

#: Swarm shape per quality: peers, peer processes, warmup, duration,
#: time scale.  Both engines run the SAME windows here — the fault onsets
#: are absolute sim times, so the outage must land at the same place in
#: the measurement window on both sides.
CHAOS_SHAPE: Dict[str, Tuple[int, int, float, float, float]] = {
    "fast": (200, 4, 6.0, 18.0, 1.0),
    "full": (200, 8, 8.0, 24.0, 1.0),
}

#: The campaign: SIGKILL the collector at t=10 (mid-window), then SIGKILL
#: a quarter of the peer processes at t=16.  The simulator charges the
#: server kill as an outage of restart_latency sim units; the live side
#: pays the real respawn+restore+reconnect time.
KILL_SERVER_AT = 10.0
KILL_PEERS_AT = 16.0
KILL_PEERS_FRACTION = 0.25
RESTART_LATENCY = 2.0

CONDITIONS = ("base", "fault")


def _chaos_plan() -> FaultPlan:
    return FaultPlan(
        process_faults=(
            ("kill-server", KILL_SERVER_AT, 0.0, 0.0),
            ("kill-peers", KILL_PEERS_AT, 0.0, KILL_PEERS_FRACTION),
        ),
        process_restart_latency=RESTART_LATENCY,
    )


def plan_live_chaos(
    quality: str = QUALITY_FAST,
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """E-LIVE-CHAOS as a task grid: one cell per (engine, condition, seed).

    Live cells run a complete supervised multi-process swarm inside the
    task, so they monopolize the box while they run; the grid stays small
    (2 live cells per seed) by design.
    """
    budget = budget or budget_for(quality)
    n_peers, peer_procs, warmup, duration, time_scale = CHAOS_SHAPE[
        "full" if quality == "full" else "fast"
    ]
    preset = budget_for(quality)
    if budget.n_peers != preset.n_peers:
        # explicit --n-peers override: chaos that population instead
        n_peers = budget.n_peers
        peer_procs = min(peer_procs, n_peers)
    seeds = budget.seeds

    def params_for(condition: str) -> Parameters:
        return Parameters(
            n_peers=n_peers,
            arrival_rate=ARRIVAL_RATE,
            gossip_rate=GOSSIP_RATE,
            deletion_rate=DELETION_RATE,
            normalized_capacity=CAPACITY,
            segment_size=SEGMENT_SIZE,
            n_servers=budget.n_servers,
            mode=MODE_RLNC,
            payload_bytes=PAYLOAD_BYTES,
            faults=_chaos_plan() if condition == "fault" else None,
        )

    tasks = []
    for condition in CONDITIONS:
        params = params_for(condition)
        for seed in seeds:
            tasks.append(SimTask(
                task_id=f"sim:{condition}:seed={seed}",
                thunk=partial(
                    simulate_cell, params, warmup, duration,
                    CROSSVAL_METRICS, seed,
                ),
            ))
            tasks.append(SimTask(
                task_id=f"live:{condition}:seed={seed}",
                thunk=partial(
                    supervised_cell, params, seed, warmup, duration,
                    time_scale, peer_procs, LIVE_METRICS,
                ),
            ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="live_chaos",
            title=(
                "E-LIVE-CHAOS — crash-tolerant live swarm under process "
                f"faults (N={n_peers}, procs={peer_procs}, "
                f"s={SEGMENT_SIZE}, kill-server@{KILL_SERVER_AT:g}, "
                f"kill-peers@{KILL_PEERS_AT:g}x{KILL_PEERS_FRACTION:g}, "
                f"time_scale={time_scale:g})"
            ),
            x_name="faulted",
            x_values=[float(i) for i, _ in enumerate(CONDITIONS)],
        )

        def seed_mean(
            prefix: str, condition: str, metric: str
        ) -> Optional[float]:
            samples = [
                float(value)
                for seed in seeds
                for value in [
                    payloads[f"{prefix}:{condition}:seed={seed}"][metric]
                ]
                if value is not None
            ]
            return summarize(samples).mean if samples else None

        def live_sum(condition: str, metric: str) -> int:
            return sum(
                int(value)
                for seed in seeds
                for value in [
                    payloads[f"live:{condition}:seed={seed}"][metric]
                ]
                if value is not None
            )

        verdicts = []
        for condition in CONDITIONS:
            sim_report = {
                metric: seed_mean("sim", condition, metric)
                for metric in CHAOS_TOLERANCES
            }
            live_report = {
                metric: seed_mean("live", condition, metric)
                for metric in CHAOS_TOLERANCES
            }
            verdicts.append((condition, compare_reports(
                sim_report, live_report, tolerances=CHAOS_TOLERANCES
            )))

        for metric in CROSSVAL_METRICS:
            result.add_series(
                f"sim {metric}",
                [seed_mean("sim", c, metric) for c in CONDITIONS],
            )
            result.add_series(
                f"live {metric}",
                [seed_mean("live", c, metric) for c in CONDITIONS],
            )

        for condition, report in verdicts:
            worst = report.worst
            if worst is None or worst.deviation is None:
                detail = "no compared metric produced samples on both sides"
            else:
                detail = (
                    f"worst {worst.metric}: "
                    f"dev {worst.deviation:.1%} vs tol {worst.tolerance:.0%}"
                )
            result.add_note(
                f"{condition}: "
                f"{'agrees' if report.agrees else 'DISAGREES'} ({detail}) "
                f"[bands: "
                + ", ".join(
                    f"{m}<={t:.0%}" for m, t in CHAOS_TOLERANCES.items()
                )
                + "]"
            )

        # Outage-induced delay degradation, engine by engine.
        for metric in ("mean_block_delay", "normalized_throughput"):
            for prefix in ("sim", "live"):
                base = seed_mean(prefix, "base", metric)
                fault = seed_mean(prefix, "fault", metric)
                if base is not None and fault is not None:
                    result.add_note(
                        f"{prefix} {metric} degradation: "
                        f"{base:.4f} -> {fault:.4f} "
                        f"({fault - base:+.4f})"
                    )

        restarts = live_sum("fault", "server_restarts")
        peer_kills = sum(
            1
            for seed in seeds
            for executed in [
                payloads[f"live:fault:seed={seed}"][
                    "process_faults_executed"
                ]
            ]
            if executed
            for event in executed
            if event.get("kind") == "kill-peers"
        )
        restored = live_sum("fault", "restored_rank")
        failures = sum(
            live_sum(condition, "hash_failures") for condition in CONDITIONS
        )
        verified = sum(
            live_sum(condition, "hash_verified") for condition in CONDITIONS
        )
        result.add_note(
            f"fault plane: {restarts} server SIGKILL(s) survived "
            f"(decoder pool restored with {restored} rank unit(s), "
            f"zero rank lost — the restore path raises on mismatch), "
            f"{peer_kills} peer-cohort kill(s) executed"
        )
        result.add_note(
            f"end-to-end decode verification: {verified} segment(s) "
            f"hash-verified on the wire, {failures} failure(s)"
        )
        passed = (
            all(report.agrees for _, report in verdicts)
            and failures == 0
            and verified > 0
            and restarts >= 1
            and peer_kills >= 1
        )
        result.add_note(
            "E-LIVE-CHAOS PASSED" if passed else "E-LIVE-CHAOS FAILED"
        )
        return result

    return ExperimentPlan("live_chaos", tasks, merge)


def run_live_chaos(
    quality: str = QUALITY_FAST,
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """Run E-LIVE-CHAOS serially; returns the table-ready result."""
    return plan_live_chaos(quality, budget).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_live_chaos(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
