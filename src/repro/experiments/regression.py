"""Regression comparison of experiment results across runs.

Reproduction results should not drift silently as the library evolves.
This module diffs two :class:`~repro.experiments.base.SeriesResult`
objects (typically: a JSON archive produced by ``repro <exp> --json``
against a fresh run) point by point with per-series tolerances, producing
a structured report CI can assert on::

    baseline = SeriesResult.from_json(path.read_text())
    fresh = run_fig3(quality="fast")
    diff = compare_results(baseline, fresh, rel_tolerance=0.1)
    assert diff.matches, diff.summary()

Analytic series are deterministic and compared tightly; simulation series
carry seed noise, so tolerances are caller-chosen per comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.base import SeriesResult
from repro.util.validation import require_nonnegative


@dataclass(frozen=True)
class PointDiff:
    """One diverging data point."""

    series: str
    x: float
    baseline: Optional[float]
    current: Optional[float]

    def __str__(self) -> str:
        return (
            f"{self.series} @ x={self.x:g}: baseline "
            f"{self._fmt(self.baseline)} vs current {self._fmt(self.current)}"
        )

    @staticmethod
    def _fmt(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:.5f}"


@dataclass
class ComparisonReport:
    """Outcome of comparing two results of the same experiment."""

    name: str
    structural_errors: List[str] = field(default_factory=list)
    diverging_points: List[PointDiff] = field(default_factory=list)
    points_compared: int = 0

    @property
    def matches(self) -> bool:
        """True when structures agree and every point is within tolerance."""
        return not self.structural_errors and not self.diverging_points

    def summary(self) -> str:
        """Human-readable digest of the comparison."""
        if self.matches:
            return (
                f"{self.name}: {self.points_compared} points match"
            )
        lines = [f"{self.name}: MISMATCH"]
        lines.extend(f"  structure: {error}" for error in self.structural_errors)
        lines.extend(f"  {diff}" for diff in self.diverging_points[:20])
        hidden = len(self.diverging_points) - 20
        if hidden > 0:
            lines.append(f"  ... and {hidden} more diverging points")
        return "\n".join(lines)


def compare_results(
    baseline: SeriesResult,
    current: SeriesResult,
    rel_tolerance: float = 0.05,
    abs_floor: float = 1e-3,
    series_tolerances: Optional[Dict[str, float]] = None,
) -> ComparisonReport:
    """Diff *current* against *baseline* point by point.

    A point diverges when ``|cur - base| > max(rel * |base|, abs_floor)``
    with ``rel`` taken from *series_tolerances* (by series label) or
    *rel_tolerance*.  ``None``/NaN points match only ``None``/NaN points.
    Structural differences (experiment name, x-axis, series sets) are
    reported separately and make the comparison fail outright.
    """
    require_nonnegative("rel_tolerance", rel_tolerance)
    require_nonnegative("abs_floor", abs_floor)
    report = ComparisonReport(name=baseline.name)

    if baseline.name != current.name:
        report.structural_errors.append(
            f"experiment name changed: {baseline.name!r} -> {current.name!r}"
        )
    if baseline.x_values != current.x_values:
        report.structural_errors.append(
            f"x-axis changed: {baseline.x_values} -> {current.x_values}"
        )
    missing = set(baseline.series) - set(current.series)
    added = set(current.series) - set(baseline.series)
    if missing:
        report.structural_errors.append(f"series removed: {sorted(missing)}")
    if added:
        report.structural_errors.append(f"series added: {sorted(added)}")
    if report.structural_errors:
        return report

    tolerances = series_tolerances or {}
    for label, baseline_values in baseline.series.items():
        rel = tolerances.get(label, rel_tolerance)
        current_values = current.series[label]
        for x, base, cur in zip(
            baseline.x_values, baseline_values, current_values
        ):
            report.points_compared += 1
            base_missing = base is None or (
                isinstance(base, float) and math.isnan(base)
            )
            cur_missing = cur is None or (
                isinstance(cur, float) and math.isnan(cur)
            )
            if base_missing or cur_missing:
                if base_missing != cur_missing:
                    report.diverging_points.append(
                        PointDiff(label, x, None if base_missing else base,
                                  None if cur_missing else cur)
                    )
                continue
            allowed = max(rel * abs(base), abs_floor)
            if abs(cur - base) > allowed:
                report.diverging_points.append(PointDiff(label, x, base, cur))
    return report


def compare_archives(
    baselines: Dict[str, SeriesResult],
    currents: Dict[str, SeriesResult],
    rel_tolerance: float = 0.05,
) -> Dict[str, ComparisonReport]:
    """Compare whole result archives keyed by experiment name.

    Experiments present on only one side produce a structural-error report.
    """
    reports: Dict[str, ComparisonReport] = {}
    for name in sorted(set(baselines) | set(currents)):
        if name not in currents:
            report = ComparisonReport(name=name)
            report.structural_errors.append("experiment missing from current run")
            reports[name] = report
        elif name not in baselines:
            report = ComparisonReport(name=name)
            report.structural_errors.append("experiment missing from baseline")
            reports[name] = report
        else:
            reports[name] = compare_results(
                baselines[name], currents[name], rel_tolerance=rel_tolerance
            )
    return reports
