"""Ablations over the design choices DESIGN.md calls out.

- **E-ABL-TTL** — the TTL deletion rate gamma trades storage overhead
  against persistence/throughput: sweeping gamma at fixed (lambda, mu, c)
  shows occupancy ~ (mu + lambda)/gamma shrinking while throughput and the
  saved-data reserve degrade once blocks die faster than servers can pull.
- **E-ABL-BUF** — the buffer cap B: once B falls toward the natural
  occupancy rho, injections start blocking and gossip targets disappear;
  the sweep locates the knee.
- **E-ABL-SELECT** — segment-selection rule: degree-proportional (the
  paper's analytical assumption, our default) versus uniform-over-distinct-
  segments (the literal Sec. 2 protocol text).  The uniform rule loses
  measurable throughput to redundant pulls at large s — the one place where
  the paper's model and its stated protocol genuinely differ.
- **E-ABL-CODE** — the "every coded block is innovative" idealization:
  full-RLNC simulation (real GF(2^8) rank arithmetic) versus the abstract
  mode, quantifying how little real coding loses (non-innovative
  combinations occur with probability ~1/256 per dimension).
"""

from __future__ import annotations

import math
from functools import partial
from typing import Mapping, Optional, Sequence

from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    seed_mean,
    simulate_cell,
)


def _raw(value: float) -> Optional[float]:
    """Encode one raw (un-averaged) metric for a JSON payload."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return None
    return float(value)


def _thaw(value: Optional[float]) -> float:
    """Decode :func:`_raw`'s encoding back to the in-memory float."""
    return math.nan if value is None else float(value)


def plan_ttl_ablation(
    quality: str = QUALITY_FAST,
    gammas: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """E-ABL-TTL as a task grid: one cell per (gamma, seed)."""
    budget = budget or budget_for(quality)
    metrics = (
        "mean_buffer_occupancy",
        "normalized_throughput",
        "saved_blocks_per_peer",
    )

    tasks = []
    for gamma in gammas:
        params = Parameters(
            n_peers=budget.n_peers,
            arrival_rate=8.0,
            gossip_rate=10.0,
            deletion_rate=gamma,
            normalized_capacity=4.0,
            segment_size=16,
            n_servers=budget.n_servers,
        )
        for seed in budget.seeds:
            tasks.append(SimTask(
                task_id=f"gamma={gamma:g}:seed={seed}",
                thunk=partial(
                    simulate_cell, params, budget.warmup, budget.duration,
                    metrics, seed,
                ),
            ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="ablation-ttl",
            title="Ablation — TTL rate gamma: storage vs throughput "
            "(lambda=8, mu=10, c=4, s=16)",
            x_name="gamma",
            x_values=[float(g) for g in gammas],
        )
        occupancy, throughput, saved = [], [], []
        for gamma in gammas:
            prefix = f"gamma={gamma:g}"
            occupancy.append(
                seed_mean(payloads, prefix, budget.seeds,
                          "mean_buffer_occupancy")
            )
            throughput.append(
                seed_mean(payloads, prefix, budget.seeds,
                          "normalized_throughput")
            )
            saved.append(
                seed_mean(payloads, prefix, budget.seeds,
                          "saved_blocks_per_peer")
            )
        result.add_series("occupancy rho", occupancy)
        result.add_series("normalized throughput", throughput)
        result.add_series("saved blocks/peer", saved)
        result.add_note(
            "expected: occupancy ~ (mu+lambda)/gamma; throughput and the "
            "saved reserve fall as gamma grows (blocks die before they can "
            "be pulled)"
        )
        return result

    return ExperimentPlan("ablation-ttl", tasks, merge)


def run_ttl_ablation(
    quality: str = QUALITY_FAST,
    gammas: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """E-ABL-TTL: sweep the deletion rate gamma."""
    return plan_ttl_ablation(quality, gammas, budget).run_serial()


def plan_buffer_ablation(
    quality: str = QUALITY_FAST,
    capacities: Sequence[int] = (16, 24, 32, 48, 96),
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """E-ABL-BUF as a task grid: one cell per (B, seed)."""
    budget = budget or budget_for(quality)
    metrics = (
        "normalized_throughput",
        "blocked_injections",
        "mean_buffer_occupancy",
    )

    tasks = []
    for capacity in capacities:
        params = Parameters(
            n_peers=budget.n_peers,
            arrival_rate=8.0,
            gossip_rate=10.0,
            deletion_rate=1.0,
            normalized_capacity=4.0,
            segment_size=8,
            n_servers=budget.n_servers,
            buffer_capacity=capacity,
        )
        for seed in budget.seeds:
            tasks.append(SimTask(
                task_id=f"B={capacity}:seed={seed}",
                thunk=partial(
                    simulate_cell, params, budget.warmup, budget.duration,
                    metrics, seed,
                ),
            ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="ablation-buffer",
            title="Ablation — buffer cap B: blocking vs throughput "
            "(lambda=8, mu=10, gamma=1, c=4, s=8; natural rho~18)",
            x_name="B",
            x_values=[float(b) for b in capacities],
        )
        throughput, blocked, occupancy = [], [], []
        for capacity in capacities:
            prefix = f"B={capacity}"
            throughput.append(
                seed_mean(payloads, prefix, budget.seeds,
                          "normalized_throughput")
            )
            blocked.append(
                seed_mean(payloads, prefix, budget.seeds,
                          "blocked_injections")
            )
            occupancy.append(
                seed_mean(payloads, prefix, budget.seeds,
                          "mean_buffer_occupancy")
            )
        result.add_series("normalized throughput", throughput)
        result.add_series("blocked injections", blocked)
        result.add_series("occupancy rho", occupancy)
        result.add_note(
            "expected: blocking vanishes and throughput saturates once B "
            "clears the natural occupancy; below it peers refuse "
            "injections and gossip"
        )
        return result

    return ExperimentPlan("ablation-buffer", tasks, merge)


def run_buffer_ablation(
    quality: str = QUALITY_FAST,
    capacities: Sequence[int] = (16, 24, 32, 48, 96),
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """E-ABL-BUF: sweep the per-peer buffer cap B."""
    return plan_buffer_ablation(quality, capacities, budget).run_serial()


def plan_selection_ablation(
    quality: str = QUALITY_FAST,
    segment_sizes: Sequence[int] = (1, 5, 20, 40),
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """E-ABL-SELECT as a task grid: one cell per (rule, s, seed)."""
    budget = budget or budget_for(quality)
    metrics = ("normalized_throughput", "normalized_goodput")

    tasks = []
    for selection in ("proportional", "uniform"):
        for s in segment_sizes:
            params = Parameters(
                n_peers=budget.n_peers,
                arrival_rate=20.0,
                gossip_rate=10.0,
                deletion_rate=1.0,
                normalized_capacity=8.0,
                segment_size=s,
                n_servers=budget.n_servers,
                segment_selection=selection,
            )
            for seed in budget.seeds:
                tasks.append(SimTask(
                    task_id=f"{selection}:s={s}:seed={seed}",
                    thunk=partial(
                        simulate_cell, params, budget.warmup,
                        budget.duration, metrics, seed,
                    ),
                ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="ablation-selection",
            title="Ablation — segment selection rule "
            "(lambda=20, mu=10, gamma=1, c=8)",
            x_name="s",
            x_values=[float(s) for s in segment_sizes],
        )
        for selection in ("proportional", "uniform"):
            throughput, goodput = [], []
            for s in segment_sizes:
                prefix = f"{selection}:s={s}"
                throughput.append(
                    seed_mean(payloads, prefix, budget.seeds,
                              "normalized_throughput")
                )
                goodput.append(
                    seed_mean(payloads, prefix, budget.seeds,
                              "normalized_goodput")
                )
            result.add_series(f"{selection} throughput", throughput)
            result.add_series(f"{selection} goodput", goodput)
        result.add_note(
            "proportional matches the paper's analysis (Eq. 2 equivalence); "
            "uniform is the literal Sec. 2 text — it pays ~20% throughput "
            "at large s to redundant pulls but concentrates pulls so "
            "completed-segment goodput is higher"
        )
        return result

    return ExperimentPlan("ablation-selection", tasks, merge)


def run_selection_ablation(
    quality: str = QUALITY_FAST,
    segment_sizes: Sequence[int] = (1, 5, 20, 40),
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """E-ABL-SELECT: degree-proportional vs uniform segment selection."""
    return plan_selection_ablation(quality, segment_sizes, budget).run_serial()


def _coding_cell(
    n_peers: int, mode: str, s: int, seed: int, warmup: float, duration: float
) -> Payload:
    """One fidelity-mode run: raw efficiency/throughput, no seed average."""
    params = Parameters(
        n_peers=n_peers,
        arrival_rate=6.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=3.0,
        segment_size=s,
        n_servers=2,
        mode=mode,
    )
    system = CollectionSystem(params, seed=seed)
    report = system.run(warmup, duration)
    return {
        "efficiency": _raw(report.efficiency),
        "normalized_throughput": _raw(report.normalized_throughput),
    }


def plan_coding_ablation(
    quality: str = QUALITY_FAST,
    segment_sizes: Sequence[int] = (2, 4, 8),
    budget: Optional[SimBudget] = None,
    seed: int = 11,
) -> ExperimentPlan:
    """E-ABL-CODE as a task grid: one cell per (fidelity mode, s)."""
    budget = budget or budget_for(quality)
    # Full RLNC carries real rank computations: keep the network small.
    n_peers = min(budget.n_peers, 60)

    tasks = []
    for mode in ("abstract", "rlnc"):
        for s in segment_sizes:
            tasks.append(SimTask(
                task_id=f"{mode}:s={s}:seed={seed}",
                thunk=partial(
                    _coding_cell, n_peers, mode, s, seed,
                    budget.warmup, budget.duration,
                ),
            ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="ablation-coding",
            title="Ablation — abstract innovation assumption vs real RLNC "
            f"(N={n_peers}, lambda=6, mu=8, gamma=1, c=3)",
            x_name="s",
            x_values=[float(s) for s in segment_sizes],
        )
        for mode in ("abstract", "rlnc"):
            efficiency, throughput = [], []
            for s in segment_sizes:
                cell = payloads[f"{mode}:s={s}:seed={seed}"]
                efficiency.append(_thaw(cell["efficiency"]))
                throughput.append(_thaw(cell["normalized_throughput"]))
            result.add_series(f"{mode} efficiency", efficiency)
            result.add_series(f"{mode} throughput", throughput)
        result.add_note(
            "finding: real RLNC loses 10-30% of collection efficiency to "
            "the idealization in this deliberately adversarial "
            "configuration (small network, generous capacity) — not the "
            "~2^-8 coefficient-collision rate, but subspace-correlated "
            "holdings: a pulled peer's blocks can span dimensions the "
            "servers already hold; the gap shrinks as the network grows "
            "relative to s"
        )
        return result

    return ExperimentPlan("ablation-coding", tasks, merge)


def run_coding_ablation(
    quality: str = QUALITY_FAST,
    segment_sizes: Sequence[int] = (2, 4, 8),
    budget: Optional[SimBudget] = None,
    seed: int = 11,
) -> SeriesResult:
    """E-ABL-CODE: abstract innovation idealization vs real GF(2^8) RLNC.

    Runs a small network in both fidelity modes with identical parameters
    and compares collection efficiency; the RLNC mode additionally reports
    the measured redundant fraction among pulls of *incomplete* segments —
    the quantity the abstract mode idealizes to zero.
    """
    return plan_coding_ablation(
        quality, segment_sizes, budget, seed
    ).run_serial()


def plan_scheduler_ablation(
    quality: str = QUALITY_FAST,
    policies: Sequence[str] = (
        "random",
        "round-robin",
        "avoid-redundant",
        "greedy-completion",
    ),
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """E-ABL-SCHED as a task grid: one cell per (policy, seed)."""
    budget = budget or budget_for(quality)
    metrics = (
        "normalized_throughput",
        "normalized_goodput",
        "efficiency",
        "mean_block_delay",
    )

    tasks = []
    for policy in policies:
        params = Parameters(
            n_peers=budget.n_peers,
            arrival_rate=20.0,
            gossip_rate=10.0,
            deletion_rate=1.0,
            normalized_capacity=8.0,
            segment_size=20,
            n_servers=budget.n_servers,
            pull_policy=policy,
        )
        for seed in budget.seeds:
            tasks.append(SimTask(
                task_id=f"{policy}:seed={seed}",
                thunk=partial(
                    simulate_cell, params, budget.warmup, budget.duration,
                    metrics, seed,
                ),
            ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="ablation-scheduler",
            title="Ablation — server pull scheduling "
            "(lambda=20, mu=10, gamma=1, c=8, s=20)",
            x_name="policy#",
            x_values=[float(i) for i in range(len(policies))],
        )
        throughput, goodput, efficiency, delay = [], [], [], []
        for policy in policies:
            throughput.append(
                seed_mean(payloads, policy, budget.seeds,
                          "normalized_throughput")
            )
            goodput.append(
                seed_mean(payloads, policy, budget.seeds,
                          "normalized_goodput")
            )
            efficiency.append(
                seed_mean(payloads, policy, budget.seeds, "efficiency")
            )
            delay.append(
                seed_mean(payloads, policy, budget.seeds, "mean_block_delay")
            )
        result.add_series("throughput", throughput)
        result.add_series("goodput", goodput)
        result.add_series("efficiency", efficiency)
        result.add_series("block delay", delay)
        for index, policy in enumerate(policies):
            result.add_note(f"policy {index}: {policy}")
        result.add_note(
            "finding: greedy-completion matches the paper-metric throughput "
            "but multiplies reconstructed-data goodput and cuts delivery "
            "delay — the redundancy the random policy pays is recoverable "
            "with a few-candidate lookahead"
        )
        return result

    return ExperimentPlan("ablation-scheduler", tasks, merge)


def run_scheduler_ablation(
    quality: str = QUALITY_FAST,
    policies: Sequence[str] = (
        "random",
        "round-robin",
        "avoid-redundant",
        "greedy-completion",
    ),
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """E-ABL-SCHED: server pull-scheduling policies (extension study).

    The paper's random coupon-collector pull spends its budget evenly over
    segment *blocks*; a greedy variant that finishes the segment closest to
    completion converts the same pull budget into far more fully
    reconstructed data.  Series are indexed by policy (x is the policy
    ordinal; the table labels carry the names).
    """
    return plan_scheduler_ablation(quality, policies, budget).run_serial()


def _topology_cell(
    n_peers: int, n_servers: int, degree: int, seed: int,
    warmup: float, duration: float,
) -> Payload:
    """One overlay run: raw counts so the merge reproduces the ratio."""
    from repro.sim.rng import SeedSequenceRegistry
    from repro.sim.topology import CompleteTopology, random_regular_topology

    params = Parameters(
        n_peers=n_peers,
        arrival_rate=12.0,
        gossip_rate=10.0,
        deletion_rate=1.0,
        normalized_capacity=5.0,
        segment_size=16,
        n_servers=n_servers,
    )
    # Overlay wiring rides its own named substream per degree, so adding or
    # reordering sweep points never perturbs the other overlays' draws —
    # and any worker can rebuild exactly this overlay from (seed, degree).
    if degree == 0:
        topology = CompleteTopology(n_peers)
    else:
        overlay_seeds = SeedSequenceRegistry(seed).spawn("overlay-wiring")
        topology = random_regular_topology(
            n_peers, degree, overlay_seeds.python(f"degree:{degree}")
        )
    system = CollectionSystem(params, seed=seed, topology=topology)
    report = system.run(warmup, duration)
    return {
        "normalized_throughput": _raw(report.normalized_throughput),
        "gossip_no_target": report.gossip_no_target,
        "gossip_transfers": report.gossip_transfers,
        "mean_buffer_occupancy": _raw(report.mean_buffer_occupancy),
    }


def plan_topology_ablation(
    quality: str = QUALITY_FAST,
    degrees: Sequence[int] = (2, 4, 8, 16, 0),  # 0 = complete graph
    budget: Optional[SimBudget] = None,
    seed: int = 17,
) -> ExperimentPlan:
    """E-ABL-TOPO as a task grid: one cell per overlay degree."""
    budget = budget or budget_for(quality)

    tasks = [
        SimTask(
            task_id=f"degree={degree}:seed={seed}",
            thunk=partial(
                _topology_cell, budget.n_peers, budget.n_servers, degree,
                seed, budget.warmup, budget.duration,
            ),
        )
        for degree in degrees
    ]

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="ablation-topology",
            title="Ablation — overlay degree vs mean-field "
            "(lambda=12, mu=10, gamma=1, c=5, s=16; "
            "degree 0 = complete graph)",
            x_name="degree",
            x_values=[float(d) for d in degrees],
        )
        throughput, gossip_failures, occupancy = [], [], []
        for degree in degrees:
            cell = payloads[f"degree={degree}:seed={seed}"]
            throughput.append(_thaw(cell["normalized_throughput"]))
            gossip_failures.append(
                cell["gossip_no_target"] / max(cell["gossip_transfers"], 1)
            )
            occupancy.append(_thaw(cell["mean_buffer_occupancy"]))
        result.add_series("normalized throughput", throughput)
        result.add_series("gossip failure ratio", gossip_failures)
        result.add_series("occupancy rho", occupancy)
        result.add_note(
            "finding: the mean-field analysis is remarkably robust — even "
            "a degree-2 overlay matches complete-graph throughput, because "
            "server pulls sample peers globally so local gossip clustering "
            "does not bias the coupon collector; gossip failures stay "
            "negligible while neighborhoods have any headroom"
        )
        return result

    return ExperimentPlan("ablation-topology", tasks, merge)


def run_topology_ablation(
    quality: str = QUALITY_FAST,
    degrees: Sequence[int] = (2, 4, 8, 16, 0),  # 0 = complete graph
    budget: Optional[SimBudget] = None,
    seed: int = 17,
) -> SeriesResult:
    """E-ABL-TOPO: overlay density vs the mean-field assumption.

    Sec. 2 gossips "to peer B chosen u.a.r. from among its *neighbors*",
    while the Sec. 3 analysis draws targets from all peers (the complete
    graph).  This ablation sweeps random-regular overlays of increasing
    degree to locate how dense a neighborhood must be before the mean-field
    prediction holds.
    """
    return plan_topology_ablation(quality, degrees, budget, seed).run_serial()


def main(quality: str = QUALITY_FAST) -> None:
    """CLI entry: run and print all five ablations."""
    for runner in (
        run_ttl_ablation,
        run_buffer_ablation,
        run_selection_ablation,
        run_coding_ablation,
        run_scheduler_ablation,
        run_topology_ablation,
    ):
        print(runner(quality).to_table())
        print()


if __name__ == "__main__":
    main()
