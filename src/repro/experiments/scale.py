"""E-SCALE — million-peer fast-path scale-out: Fig. 5 trends vs N.

The paper's analysis is a mean-field limit, so its predictions (normalized
throughput, block delay) should be *invariant in N* once finite-size noise
washes out — but the event-exact engine cannot check that beyond a few
tens of thousands of peers on one box.  E-SCALE runs the vectorized fast
engine (:mod:`repro.fastsim`), peer-partition sharded across the runner
pool, and reports the Fig. 5 / Fig. 3 steady-state metrics as a function
of N up to 10^6:

- ``block delay s=...`` — mean block delivery delay (Fig. 5's y-axis) at
  the paper's delay-peak segment size and at the recommended one;
- ``efficiency s=...`` — useful-pull fraction (capacity utilization);
- ``throughput s=...`` — normalized session throughput (Fig. 3's y-axis).

Expected shape: every curve is flat in N (the mean-field prediction); the
interesting output is the *scale* — events applied and monitor-clean
million-peer sessions — recorded in the notes.

Each task cell is ONE shard of one (N, s, seed) session; the merge folds
shard payloads with :func:`repro.fastsim.merge_shard_payloads` (exact
counter sums, population-weighted averages, histogram-merged delays), so
sharded results are deterministic and identical for any worker count.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.params import ENGINE_FAST, Parameters
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
)
from repro.experiments.fig3 import ARRIVAL_RATE, DELETION_RATE, GOSSIP_RATE
from repro.fastsim import merge_shard_payloads, run_shard
from repro.util.summary import summarize

#: Server capacity for the N sweep (the middle Fig. 3 curve).
CAPACITY = 8.0

#: Segment sizes tracked across the sweep: the paper's delay-peak region
#: (s ~ 5) and its recommended operating point (s in [20, 40]).
SEGMENT_SIZES = (5, 20)

#: Peer populations per quality preset.  ``--n-peers`` overrides the
#: whole sweep to a single population (detected against the preset).
N_VALUES: Dict[str, Tuple[int, ...]] = {
    "fast": (5_000, 20_000),
    "full": (100_000, 1_000_000),
}

#: Peer-partition shards per session; also the natural ``--workers`` for
#: ``repro run scale``.
DEFAULT_SHARDS = 8

METRIC_LABELS = (
    ("mean_block_delay", "block delay"),
    ("efficiency", "efficiency"),
    ("normalized_throughput", "throughput"),
)


def plan_scale(
    quality: str = QUALITY_FAST,
    n_values: Optional[Sequence[int]] = None,
    segment_sizes: Sequence[int] = SEGMENT_SIZES,
    shards: int = DEFAULT_SHARDS,
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """E-SCALE as a task grid: one cell per (N, s, seed, shard).

    The engine is always the fast one regardless of ``budget.engine``
    (the whole point is the scale the event engine cannot reach); the
    tau step is taken from the budget.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    budget = budget or budget_for(quality)
    if n_values is None:
        preset = budget_for(quality)
        if budget.n_peers != preset.n_peers:
            # explicit --n-peers override: sweep that single population
            n_values = (budget.n_peers,)
        else:
            n_values = N_VALUES["full" if quality == "full" else "fast"]
    n_values = tuple(int(n) for n in n_values)
    for n in n_values:
        if n < shards:
            raise ValueError(
                f"n_peers={n} cannot be split into {shards} shards"
            )

    tasks = []
    grids: List[Tuple[int, int]] = []
    for n in n_values:
        for s in segment_sizes:
            grids.append((n, s))
            params = Parameters(
                n_peers=n,
                arrival_rate=ARRIVAL_RATE,
                gossip_rate=GOSSIP_RATE,
                deletion_rate=DELETION_RATE,
                normalized_capacity=CAPACITY,
                segment_size=s,
                n_servers=budget.n_servers,
                engine=ENGINE_FAST,
                tau=budget.tau,
            )
            for seed in budget.seeds:
                for shard in range(shards):
                    tasks.append(SimTask(
                        task_id=(
                            f"N={n}:s={s}:seed={seed}:"
                            f"shard={shard:02d}of{shards:02d}"
                        ),
                        thunk=partial(
                            run_shard, params, seed, shard, shards,
                            budget.warmup, budget.duration,
                        ),
                    ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="scale",
            title=(
                "E-SCALE — fast-path steady state vs N "
                f"(lambda={ARRIVAL_RATE:g}, mu={GOSSIP_RATE:g}, "
                f"gamma={DELETION_RATE:g}, c={CAPACITY:g}, "
                f"{shards} shards, tau={budget.tau:g})"
            ),
            x_name="N",
            x_values=[float(n) for n in n_values],
        )
        merged: Dict[Tuple[int, int, int], Dict[str, object]] = {}
        for n, s in grids:
            for seed in budget.seeds:
                merged[(n, s, seed)] = merge_shard_payloads([
                    payloads[
                        f"N={n}:s={s}:seed={seed}:"
                        f"shard={shard:02d}of{shards:02d}"
                    ]
                    for shard in range(shards)
                ])
        for s in segment_sizes:
            for metric, label in METRIC_LABELS:
                values: List[Optional[float]] = []
                for n in n_values:
                    samples = [
                        float(value)
                        for seed in budget.seeds
                        for value in [merged[(n, s, seed)][metric]]
                        if value is not None
                    ]
                    values.append(
                        summarize(samples).mean if samples else None
                    )
                result.add_series(f"{label} s={s}", values)
        dirty = sorted(
            f"N={n}:s={s}:seed={seed}"
            for (n, s, seed), report in merged.items()
            if not report["monitors_clean"]
        )
        if dirty:
            result.add_note(
                f"INVARIANT VIOLATIONS in {len(dirty)} session(s): "
                + ", ".join(dirty)
            )
        else:
            result.add_note(
                "all array-level invariant monitors clean in every shard"
            )
        for n in n_values:
            events = sum(
                int(report["engine_events_fired"])  # type: ignore[call-overload]
                for (grid_n, _, _), report in merged.items()
                if grid_n == n
            )
            result.add_note(
                f"N={n}: {events} channel events applied across "
                f"{shards} shards x {len(segment_sizes)} segment sizes "
                f"x {len(budget.seeds)} seed(s)"
            )
        result.add_note(
            "mean-field prediction: every series is flat in N once "
            "finite-size noise washes out"
        )
        return result

    return ExperimentPlan("scale", tasks, merge)


def run_scale(
    quality: str = QUALITY_FAST,
    n_values: Optional[Sequence[int]] = None,
    segment_sizes: Sequence[int] = SEGMENT_SIZES,
    shards: int = DEFAULT_SHARDS,
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """Run E-SCALE serially; returns the table-ready result."""
    return plan_scale(
        quality, n_values, segment_sizes, shards, budget
    ).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_scale(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
