"""E-T1 — Theorem 1: storage overhead and buffer occupancy validation.

Theorem 1 states that in steady state the average number of buffered coded
blocks per peer is ``rho = (1 - z0) mu/gamma + lambda/gamma`` regardless of
the segment size, with gossip-attributable overhead ``(1 - z0) mu/gamma``
bounded by ``mu/gamma`` — the knob the operator turns to budget peer memory
(the paper keeps ``mu/gamma`` under 20 in its simulations).

This experiment sweeps segment size and compares three independent values
of occupancy and the empty-peer fraction:

- ``closed form`` — the fixed point z0 = exp(-(1-z0) mu/gamma - lambda/gamma),
- ``ODE`` — the steady state of Eq. (7),
- ``sim`` — the time-averaged measurement from the protocol simulator.
"""

from __future__ import annotations

from functools import partial
from typing import Mapping, Optional, Sequence

from repro.analysis.ode import CollectionODE
from repro.analysis.theorems import theorem1_storage
from repro.core.params import Parameters
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    seed_mean,
    simulate_cell,
)
from repro.experiments.fig3 import ARRIVAL_RATE, DELETION_RATE, GOSSIP_RATE

SEGMENT_SIZES = {
    "fast": (1, 5, 20),
    "full": (1, 2, 5, 10, 20, 40),
}
#: any c works for Theorem 1 (collection does not change buffering); use a
#: mid-range value so the same runs double as a throughput sanity check.
CAPACITY = 8.0

METRICS = ("mean_buffer_occupancy", "empty_peer_fraction", "storage_overhead")


def plan_theorem1(
    quality: str = QUALITY_FAST,
    segment_sizes: Optional[Sequence[int]] = None,
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """Theorem 1 validation as a task grid: one cell per (s, seed)."""
    if segment_sizes is None:
        segment_sizes = SEGMENT_SIZES["full" if quality == "full" else "fast"]
    budget = budget or budget_for(quality)

    tasks = []
    for s in segment_sizes:
        params = Parameters(
            n_peers=budget.n_peers,
            arrival_rate=ARRIVAL_RATE,
            gossip_rate=GOSSIP_RATE,
            deletion_rate=DELETION_RATE,
            normalized_capacity=CAPACITY,
            segment_size=s,
            n_servers=budget.n_servers,
            engine=budget.engine,
            tau=budget.tau,
        )
        for seed in budget.seeds:
            tasks.append(SimTask(
                task_id=f"s={s}:seed={seed}",
                thunk=partial(
                    simulate_cell, params, budget.warmup, budget.duration,
                    METRICS, seed,
                ),
            ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        closed = theorem1_storage(ARRIVAL_RATE, GOSSIP_RATE, DELETION_RATE)
        result = SeriesResult(
            name="theorem1",
            title=(
                "Theorem 1 — buffer occupancy rho and storage overhead "
                f"(lambda={ARRIVAL_RATE:g}, mu={GOSSIP_RATE:g}, "
                f"gamma={DELETION_RATE:g}; bound mu/gamma="
                f"{GOSSIP_RATE / DELETION_RATE:g})"
            ),
            x_name="s",
            x_values=[float(s) for s in segment_sizes],
        )
        n_points = len(segment_sizes)
        result.add_series("closed-form rho", [closed.occupancy] * n_points)
        result.add_series("closed-form z0", [closed.z0] * n_points)

        ode_rho, ode_z0 = [], []
        for s in segment_sizes:
            model = CollectionODE(
                ARRIVAL_RATE, GOSSIP_RATE, DELETION_RATE, s, CAPACITY
            )
            z, _ = model.steady_z()
            degrees = range(len(z))
            ode_rho.append(float(sum(i * z[i] for i in degrees)))
            ode_z0.append(float(z[0]))
        result.add_series("ODE rho", ode_rho)
        result.add_series("ODE z0", ode_z0)

        sim_rho, sim_z0, sim_overhead = [], [], []
        for s in segment_sizes:
            prefix = f"s={s}"
            sim_rho.append(
                seed_mean(payloads, prefix, budget.seeds,
                          "mean_buffer_occupancy")
            )
            sim_z0.append(
                seed_mean(payloads, prefix, budget.seeds,
                          "empty_peer_fraction")
            )
            sim_overhead.append(
                seed_mean(payloads, prefix, budget.seeds, "storage_overhead")
            )
        result.add_series("sim rho", sim_rho)
        result.add_series("sim z0", sim_z0)
        result.add_series("sim overhead", sim_overhead)
        result.add_note(
            "Theorem 1 claims rho is independent of s and overhead < "
            f"mu/gamma = {GOSSIP_RATE / DELETION_RATE:g}"
        )
        return result

    return ExperimentPlan("theorem1", tasks, merge)


def run_theorem1(
    quality: str = QUALITY_FAST,
    segment_sizes: Optional[Sequence[int]] = None,
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """Validate Theorem 1's occupancy/overhead across segment sizes."""
    return plan_theorem1(quality, segment_sizes, budget).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_theorem1(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
