"""E-T1 — Theorem 1: storage overhead and buffer occupancy validation.

Theorem 1 states that in steady state the average number of buffered coded
blocks per peer is ``rho = (1 - z0) mu/gamma + lambda/gamma`` regardless of
the segment size, with gossip-attributable overhead ``(1 - z0) mu/gamma``
bounded by ``mu/gamma`` — the knob the operator turns to budget peer memory
(the paper keeps ``mu/gamma`` under 20 in its simulations).

This experiment sweeps segment size and compares three independent values
of occupancy and the empty-peer fraction:

- ``closed form`` — the fixed point z0 = exp(-(1-z0) mu/gamma - lambda/gamma),
- ``ODE`` — the steady state of Eq. (7),
- ``sim`` — the time-averaged measurement from the protocol simulator.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.ode import CollectionODE
from repro.analysis.theorems import theorem1_storage
from repro.core.params import Parameters
from repro.experiments.base import (
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    budget_for,
    simulate_metrics,
)
from repro.experiments.fig3 import ARRIVAL_RATE, DELETION_RATE, GOSSIP_RATE

SEGMENT_SIZES = {
    "fast": (1, 5, 20),
    "full": (1, 2, 5, 10, 20, 40),
}
#: any c works for Theorem 1 (collection does not change buffering); use a
#: mid-range value so the same runs double as a throughput sanity check.
CAPACITY = 8.0


def run_theorem1(
    quality: str = QUALITY_FAST,
    segment_sizes: Optional[Sequence[int]] = None,
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """Validate Theorem 1's occupancy/overhead across segment sizes."""
    if segment_sizes is None:
        segment_sizes = SEGMENT_SIZES["full" if quality == "full" else "fast"]
    budget = budget or budget_for(quality)
    closed = theorem1_storage(ARRIVAL_RATE, GOSSIP_RATE, DELETION_RATE)

    result = SeriesResult(
        name="theorem1",
        title=(
            "Theorem 1 — buffer occupancy rho and storage overhead "
            f"(lambda={ARRIVAL_RATE:g}, mu={GOSSIP_RATE:g}, "
            f"gamma={DELETION_RATE:g}; bound mu/gamma="
            f"{GOSSIP_RATE / DELETION_RATE:g})"
        ),
        x_name="s",
        x_values=[float(s) for s in segment_sizes],
    )
    n_points = len(segment_sizes)
    result.add_series("closed-form rho", [closed.occupancy] * n_points)
    result.add_series("closed-form z0", [closed.z0] * n_points)

    ode_rho, ode_z0 = [], []
    for s in segment_sizes:
        model = CollectionODE(
            ARRIVAL_RATE, GOSSIP_RATE, DELETION_RATE, s, CAPACITY
        )
        z, _ = model.steady_z()
        degrees = range(len(z))
        ode_rho.append(float(sum(i * z[i] for i in degrees)))
        ode_z0.append(float(z[0]))
    result.add_series("ODE rho", ode_rho)
    result.add_series("ODE z0", ode_z0)

    sim_rho, sim_z0, sim_overhead = [], [], []
    for s in segment_sizes:
        params = Parameters(
            n_peers=budget.n_peers,
            arrival_rate=ARRIVAL_RATE,
            gossip_rate=GOSSIP_RATE,
            deletion_rate=DELETION_RATE,
            normalized_capacity=CAPACITY,
            segment_size=s,
            n_servers=budget.n_servers,
        )
        metrics = simulate_metrics(
            params,
            budget,
            ("mean_buffer_occupancy", "empty_peer_fraction", "storage_overhead"),
        )
        sim_rho.append(metrics["mean_buffer_occupancy"])
        sim_z0.append(metrics["empty_peer_fraction"])
        sim_overhead.append(metrics["storage_overhead"])
    result.add_series("sim rho", sim_rho)
    result.add_series("sim z0", sim_z0)
    result.add_series("sim overhead", sim_overhead)
    result.add_note(
        "Theorem 1 claims rho is independent of s and overhead < mu/gamma "
        f"= {GOSSIP_RATE / DELETION_RATE:g}"
    )
    return result


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_theorem1(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
