"""E-TRANS — the flash crowd at the fluid limit versus the event simulator.

Not a numbered figure in the paper, but the quantitative form of its
central promise (abstract: "a 'buffering' zone and a 'smoothing' factor"):
drive the ODE model of Sec. 3 with the time-varying flash-crowd demand and
compare the resulting trajectories against the finite-N event simulation.

Reported on a shared time grid:

- ``demand`` — offered load λ(t) per peer,
- ``fluid occupancy`` / ``sim occupancy`` — buffered blocks per peer,
- ``fluid intake`` / ``sim intake`` — useful server pulls per peer per
  unit time.

Expected shape: occupancy swells through the burst (the buffering zone)
and drains afterwards, while intake moves far less than demand (the
smoothing factor), staying near the capacity line ``c`` until the backlog
is cleared — and the fluid and event-level curves track each other.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import numpy as np

from repro.analysis.transient import TransientCollectionODE
from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
)
from repro.stats.workload import FlashCrowdWorkload

BASE_RATE = 4.0
BURST_MULTIPLIER = 5.0
BURST_START, BURST_END = 10.0, 15.0
GOSSIP_RATE = 8.0
DELETION_RATE = 0.5
CAPACITY = 5.0
SEGMENT_SIZE = 8
HORIZON = 40.0


def _workload() -> FlashCrowdWorkload:
    return FlashCrowdWorkload(
        base_rate=BASE_RATE,
        burst_start=BURST_START,
        burst_end=BURST_END,
        multiplier=BURST_MULTIPLIER,
    )


def plan_transient(
    quality: str = QUALITY_FAST,
    budget: Optional[SimBudget] = None,
    n_samples: int = 9,
    seed: int = 1,
) -> ExperimentPlan:
    """The flash-crowd comparison as a (single-task) grid.

    The event simulation samples its phases sequentially against one
    shared system, so it is indivisible — one task carries the whole
    phase sweep; the fluid model and demand curve are deterministic and
    computed in the merge step.
    """
    budget = budget or budget_for(quality)
    sample_times = np.linspace(HORIZON / n_samples, HORIZON, n_samples)

    def run_phases() -> Payload:
        params = Parameters(
            n_peers=budget.n_peers,
            arrival_rate=BASE_RATE,
            gossip_rate=GOSSIP_RATE,
            deletion_rate=DELETION_RATE,
            normalized_capacity=CAPACITY,
            segment_size=SEGMENT_SIZE,
            n_servers=budget.n_servers,
        )
        system = CollectionSystem(params, seed=seed, workload=_workload())
        sim_occupancy: List[float] = []
        sim_intake: List[float] = []
        previous = 0.0
        for t in sample_times:
            report = system.run_phase(float(t - previous))
            previous = float(t)
            sim_occupancy.append(report.mean_buffer_occupancy)
            sim_intake.append(report.throughput / budget.n_peers)
        return {"sim_occupancy": sim_occupancy, "sim_intake": sim_intake}

    tasks = [SimTask(task_id=f"phases:seed={seed}", thunk=run_phases)]

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        phases = payloads[f"phases:seed={seed}"]

        model = TransientCollectionODE(
            workload=_workload(),
            gossip_rate=GOSSIP_RATE,
            deletion_rate=DELETION_RATE,
            segment_size=SEGMENT_SIZE,
            normalized_capacity=CAPACITY,
        )
        trajectory = model.simulate(HORIZON, n_points=160)

        def fluid_at(series: np.ndarray, t: float) -> float:
            return float(np.interp(t, trajectory.times, series))

        result = SeriesResult(
            name="transient",
            title=(
                "Flash crowd at the fluid limit vs event simulation "
                f"(x{BURST_MULTIPLIER:g} burst on "
                f"[{BURST_START:g},{BURST_END:g}), "
                f"c={CAPACITY:g}, s={SEGMENT_SIZE})"
            ),
            x_name="t",
            x_values=[float(t) for t in sample_times],
        )
        result.add_series(
            "demand", [_workload().rate(t - 1e-9) for t in sample_times]
        )
        result.add_series(
            "fluid occupancy",
            [fluid_at(trajectory.occupancy, t) for t in sample_times],
        )
        result.add_series(
            "sim occupancy", [float(v) for v in phases["sim_occupancy"]]
        )
        result.add_series(
            "fluid intake",
            [fluid_at(trajectory.collection_rate, t) for t in sample_times],
        )
        result.add_series(
            "sim intake", [float(v) for v in phases["sim_intake"]]
        )
        result.add_note(
            "occupancy = buffered blocks per peer; intake = useful server "
            "pulls per peer per unit time (capacity line c = "
            f"{CAPACITY:g}); sim values are per-interval averages"
        )
        result.add_note(
            "shape target: occupancy swells through the burst and drains "
            "after (buffering zone); intake swings far less than demand "
            "(smoothing) and the fluid and event curves track each other"
        )
        return result

    return ExperimentPlan("transient", tasks, merge)


def run_transient(
    quality: str = QUALITY_FAST,
    budget: Optional[SimBudget] = None,
    n_samples: int = 9,
    seed: int = 1,
) -> SeriesResult:
    """Run the fluid model and the event simulator through the same burst."""
    return plan_transient(quality, budget, n_samples, seed).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_transient(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
