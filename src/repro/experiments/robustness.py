"""E-ROBUST: graceful degradation under injected faults.

The paper's pitch is that indirect collection *survives* conditions that
melt a centralized log server, but its simulations only exercise benign
independent churn.  This experiment stresses the protocol with the four
fault channels of :mod:`repro.faults` — lossy links, block pollution,
server outages, correlated churn bursts — each swept over a severity axis,
and reports two degradation curves per channel against the shared
fault-free baseline:

- **delivery ratio** — normalized goodput divided by the fault-free
  goodput (1.0 = no degradation, 0 = collapse);
- **delay inflation** — mean per-block delivery delay divided by the
  fault-free delay (1.0 = no slowdown).

Severity means: i.i.d. loss probability on both link channels (loss),
fraction of polluting peers (pollution), long-run server downtime duty
cycle (outage), and the slot fraction killed per correlated burst
(bursts, at a fixed burst rate).

The run also performs an end-to-end RLNC pollution audit: a full-RLNC
session with polluting peers must reject every corrupted block through
GF(2^8) rank arithmetic and decode every completed segment back to its
original bytes — zero tolerance, recorded as a table note.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.coding.block import SegmentDescriptor
from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    seed_mean,
    simulate_cell,
)
from repro.faults import FaultPlan
from repro.sim.rng import SeedSequenceRegistry

#: Fixed knobs for the non-swept part of each channel.
OUTAGE_DURATION = 2.0
BURST_RATE = 0.5

#: The four fault channels: name -> FaultPlan builder over the severity.
CHANNELS = ("loss", "pollution", "outage", "bursts")

WANTED = ("normalized_goodput", "mean_block_delay", "transfers_dropped",
          "blocks_rejected_polluted", "outage_time", "burst_departures")


def plan_for(channel: str, severity: float) -> FaultPlan:
    """Build the :class:`FaultPlan` of one (channel, severity) cell."""
    if severity == 0.0:
        return FaultPlan()
    if channel == "loss":
        return FaultPlan(gossip_loss_rate=severity, pull_loss_rate=severity)
    if channel == "pollution":
        return FaultPlan(pollution_fraction=severity)
    if channel == "outage":
        return FaultPlan.renewal_outages(
            duty_cycle=severity, duration=OUTAGE_DURATION
        )
    if channel == "bursts":
        return FaultPlan(burst_rate=BURST_RATE, burst_fraction=severity)
    raise ValueError(f"unknown fault channel {channel!r}")


def _base_params(budget: SimBudget, plan: FaultPlan) -> Parameters:
    return Parameters(
        n_peers=budget.n_peers,
        arrival_rate=8.0,
        gossip_rate=10.0,
        deletion_rate=1.0,
        normalized_capacity=4.0,
        segment_size=8,
        n_servers=budget.n_servers,
        faults=None if plan.is_null else plan,
    )


def _ratio(value: float, baseline: float) -> float:
    if not baseline or math.isnan(value) or math.isnan(baseline):
        return math.nan
    return value / baseline


def _audit_cell() -> Payload:
    rejected, corrupted, decoded = rlnc_pollution_audit()
    return {"rejected": rejected, "corrupted": corrupted, "decoded": decoded}


def plan_robustness(
    quality: str = QUALITY_FAST,
    severities: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.45),
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """E-ROBUST as a task grid.

    One shared fault-free baseline cell per seed (reused by every
    channel's severity-0 point), one cell per (channel, severity > 0,
    seed), plus the standalone RLNC pollution-audit task.
    """
    budget = budget or budget_for(quality)

    tasks = []
    for seed in budget.seeds:
        tasks.append(SimTask(
            task_id=f"baseline:seed={seed}",
            thunk=partial(
                simulate_cell, _base_params(budget, FaultPlan()),
                budget.warmup, budget.duration, WANTED, seed,
            ),
        ))
    for channel in CHANNELS:
        for severity in severities:
            if severity == 0.0:
                continue
            params = _base_params(budget, plan_for(channel, severity))
            for seed in budget.seeds:
                tasks.append(SimTask(
                    task_id=f"{channel}:severity={severity:g}:seed={seed}",
                    thunk=partial(
                        simulate_cell, params, budget.warmup,
                        budget.duration, WANTED, seed,
                    ),
                ))
    tasks.append(SimTask(task_id="audit", thunk=_audit_cell))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="robustness",
            title="Robustness — fault injection: delivery ratio and delay "
            "inflation vs fault-free baseline "
            "(lambda=8, mu=10, gamma=1, c=4, s=8)",
            x_name="severity",
            x_values=[float(s) for s in severities],
        )
        baseline: Dict[str, float] = {
            name: seed_mean(payloads, "baseline", budget.seeds, name)
            for name in WANTED
        }
        base_goodput = baseline["normalized_goodput"]
        base_delay = baseline["mean_block_delay"]
        result.add_note(
            f"fault-free baseline: normalized goodput {base_goodput:.4f}, "
            f"mean block delay {base_delay:.4f}"
        )
        for channel in CHANNELS:
            delivery, inflation = [], []
            for severity in severities:
                if severity == 0.0:
                    metrics = baseline
                else:
                    prefix = f"{channel}:severity={severity:g}"
                    metrics = {
                        name: seed_mean(payloads, prefix, budget.seeds, name)
                        for name in ("normalized_goodput", "mean_block_delay")
                    }
                delivery.append(
                    _ratio(metrics["normalized_goodput"], base_goodput)
                )
                inflation.append(
                    _ratio(metrics["mean_block_delay"], base_delay)
                )
            result.add_series(f"delivery ratio: {channel}", delivery)
            result.add_series(f"delay inflation: {channel}", inflation)
        audit = payloads["audit"]
        result.add_note(
            f"rlnc pollution audit: {audit['rejected']} polluted blocks "
            f"rejected by rank detection, {audit['corrupted']} corrupted "
            f"decodes across {audit['decoded']} reconstructed segments "
            "(must be 0 corrupted)"
        )
        result.add_note(
            "expected: delivery ratio degrades monotonically in loss "
            "severity; outages trade delay for little goodput (buffers "
            "absorb downtime); pollution wastes bandwidth in proportion to "
            "the polluter fraction"
        )
        return result

    return ExperimentPlan("robustness", tasks, merge)


def run_robustness(
    quality: str = QUALITY_FAST,
    severities: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.45),
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """E-ROBUST: sweep fault severity per channel vs the fault-free run."""
    return plan_robustness(quality, severities, budget).run_serial()


def rlnc_pollution_audit(
    seed: int = 5,
    pollution_fraction: float = 0.3,
    payload_bytes: int = 16,
) -> Tuple[int, int, int]:
    """End-to-end pollution-detection audit in full-RLNC mode.

    Runs a small RLNC session with polluting peers and known payloads and
    returns ``(rejected, corrupted, decoded)``: polluted blocks rejected by
    the servers' rank arithmetic, completed segments whose decoded bytes
    differ from the injected originals (must be zero — a corrupted block
    carries a zeroed coefficient header and can never enter the decoder
    basis), and completed segments checked.
    """
    originals: Dict[int, np.ndarray] = {}
    # Payload bytes ride a dedicated substream family so the audit's data is
    # reproducible from the session seed without perturbing protocol draws.
    payload_seeds = SeedSequenceRegistry(seed).spawn("pollution-audit-payloads")

    def provider(descriptor: SegmentDescriptor) -> np.ndarray:
        rng = payload_seeds.numpy(f"segment:{descriptor.segment_id}")
        rows = rng.integers(
            0, 256, size=(descriptor.size, payload_bytes), dtype=np.uint8
        )
        originals[descriptor.segment_id] = rows
        return rows

    params = Parameters(
        n_peers=40,
        arrival_rate=6.0,
        gossip_rate=8.0,
        deletion_rate=1.0,
        normalized_capacity=3.0,
        segment_size=4,
        n_servers=2,
        mode="rlnc",
        payload_bytes=payload_bytes,
        faults=FaultPlan(pollution_fraction=pollution_fraction),
    )
    system = CollectionSystem(params, seed=seed, payload_provider=provider)
    system.run(warmup=4.0, duration=10.0)
    corrupted = 0
    for segment_id, (_, payload) in system.collected_data.items():
        if not np.array_equal(payload, originals[segment_id]):
            corrupted += 1
    rejected = system.metrics.blocks_rejected_polluted.total
    return rejected, corrupted, len(system.collected_data)


def main(quality: str = QUALITY_FAST) -> None:
    """CLI entry: run and print the robustness sweep."""
    print(run_robustness(quality).to_table())


if __name__ == "__main__":
    main()
