"""E-FIG3 — Fig. 3: session throughput as a function of segment size s.

Paper setting: ``lambda = 20, mu = 10, gamma = 1``; the y-axis is the
session throughput normalized by the aggregate demand ``N * lambda``; one
curve per normalized server capacity ``c``, each approaching its dashed
capacity line ``c / lambda`` as ``s`` grows.

Reproduced series per ``c``:

- ``analytic`` — Theorem 2 on the ODE steady state (the closed form for
  s = 1, which the tests verify agrees with the ODE),
- ``sim`` — the event-driven protocol simulator,
- ``capacity`` — the dashed line ``c / lambda``.

Expected shape: throughput increases monotonically with ``s`` toward the
capacity line, saturating around ``s = 20..30``; the relative gap to
capacity is widest for the largest ``c`` (the paper's closing observation
for this figure).
"""

from __future__ import annotations

from functools import partial
from typing import Mapping, Optional, Sequence

from repro.analysis.theorems import analyze
from repro.core.params import Parameters
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    seed_mean,
    simulate_cell,
)

#: Paper parameters for Fig. 3.
ARRIVAL_RATE = 20.0
GOSSIP_RATE = 10.0
DELETION_RATE = 1.0

SEGMENT_SIZES = {
    "fast": (1, 2, 5, 10, 20, 30),
    "full": (1, 2, 5, 10, 20, 30, 50),
}
CAPACITIES = (4.0, 8.0, 12.0)

METRICS = ("normalized_throughput",)


def plan_fig3(
    quality: str = QUALITY_FAST,
    segment_sizes: Optional[Sequence[int]] = None,
    capacities: Sequence[float] = CAPACITIES,
    budget: Optional[SimBudget] = None,
    include_simulation: bool = True,
) -> ExperimentPlan:
    """Fig. 3 as a task grid: one cell per (c, s, seed) simulation."""
    if segment_sizes is None:
        segment_sizes = SEGMENT_SIZES["full" if quality == "full" else "fast"]
    budget = budget or budget_for(quality)
    x_values = [float(s) for s in segment_sizes]

    tasks = []
    if include_simulation:
        for c in capacities:
            for s in segment_sizes:
                params = Parameters(
                    n_peers=budget.n_peers,
                    arrival_rate=ARRIVAL_RATE,
                    gossip_rate=GOSSIP_RATE,
                    deletion_rate=DELETION_RATE,
                    normalized_capacity=c,
                    segment_size=s,
                    n_servers=budget.n_servers,
                    engine=budget.engine,
                    tau=budget.tau,
                )
                for seed in budget.seeds:
                    tasks.append(SimTask(
                        task_id=f"c={c:g}:s={s}:seed={seed}",
                        thunk=partial(
                            simulate_cell, params, budget.warmup,
                            budget.duration, METRICS, seed,
                        ),
                    ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="fig3",
            title=(
                "Fig. 3 — normalized session throughput vs segment size s "
                f"(lambda={ARRIVAL_RATE:g}, mu={GOSSIP_RATE:g}, "
                f"gamma={DELETION_RATE:g})"
            ),
            x_name="s",
            x_values=x_values,
        )
        for c in capacities:
            analytic = []
            for s in segment_sizes:
                point = analyze(ARRIVAL_RATE, GOSSIP_RATE, DELETION_RATE, s, c)
                analytic.append(point.throughput.normalized_throughput)
            result.add_series(f"analytic c={c:g}", analytic)
            if include_simulation:
                simulated = [
                    seed_mean(
                        payloads, f"c={c:g}:s={s}", budget.seeds,
                        "normalized_throughput",
                    )
                    for s in segment_sizes
                ]
                result.add_series(f"sim c={c:g}", simulated)
            capacity_line = min(c / ARRIVAL_RATE, 1.0)
            result.add_series(
                f"capacity c={c:g}", [capacity_line] * len(x_values)
            )
        result.add_note(
            "shape target: throughput rises with s toward each capacity "
            "line, saturating by s~20-30; the gap is widest for the "
            "largest c"
        )
        return result

    return ExperimentPlan("fig3", tasks, merge)


def run_fig3(
    quality: str = QUALITY_FAST,
    segment_sizes: Optional[Sequence[int]] = None,
    capacities: Sequence[float] = CAPACITIES,
    budget: Optional[SimBudget] = None,
    include_simulation: bool = True,
) -> SeriesResult:
    """Regenerate Fig. 3's series; returns the table-ready result."""
    return plan_fig3(
        quality, segment_sizes, capacities, budget, include_simulation
    ).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_fig3(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
