"""Experiment harness: one runner per paper figure plus ablations.

====================  =====================================================
runner                regenerates
====================  =====================================================
``run_fig3``          Fig. 3 — throughput vs segment size
``run_fig4``          Fig. 4 — throughput vs mu under churn
``run_fig5``          Fig. 5 — block delivery delay vs segment size
``run_fig6``          Fig. 6 — data saved per peer vs segment size
``run_theorem1``      Theorem 1 — storage overhead validation
``run_baseline_comparison``  Fig. 1(a) vs 1(b) flash-crowd head-to-head
``run_transient``     flash crowd: fluid (ODE) limit vs event simulation
``run_*_ablation``    design-choice ablations (TTL, buffer, selection,
                      scheduler, RLNC, topology)
``run_robustness``    E-ROBUST — graceful degradation under fault injection
====================  =====================================================

Supporting machinery: quality budgets and :class:`SeriesResult`
(:mod:`repro.experiments.base`), and cross-run regression diffing
(:mod:`repro.experiments.regression`).
"""

from repro.experiments.ablations import (
    run_buffer_ablation,
    run_coding_ablation,
    run_scheduler_ablation,
    run_selection_ablation,
    run_topology_ablation,
    run_ttl_ablation,
)
from repro.experiments.base import (
    BUDGETS,
    QUALITY_FAST,
    QUALITY_FULL,
    SeriesResult,
    SimBudget,
    budget_for,
    simulate_metrics,
)
from repro.experiments.baseline import FlashCrowdScenario, run_baseline_comparison
from repro.experiments.fig3 import run_fig3
from repro.experiments.regression import (
    ComparisonReport,
    compare_archives,
    compare_results,
)
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.robustness import rlnc_pollution_audit, run_robustness
from repro.experiments.theorem1 import run_theorem1
from repro.experiments.transient import run_transient

__all__ = [
    "run_buffer_ablation",
    "run_scheduler_ablation",
    "run_topology_ablation",
    "run_coding_ablation",
    "run_selection_ablation",
    "run_ttl_ablation",
    "BUDGETS",
    "QUALITY_FAST",
    "QUALITY_FULL",
    "SeriesResult",
    "SimBudget",
    "budget_for",
    "simulate_metrics",
    "FlashCrowdScenario",
    "run_baseline_comparison",
    "run_fig3",
    "ComparisonReport",
    "compare_archives",
    "compare_results",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "rlnc_pollution_audit",
    "run_robustness",
    "run_theorem1",
    "run_transient",
]
