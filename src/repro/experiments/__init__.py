"""Experiment harness: one runner per paper figure plus ablations.

====================  =====================================================
runner                regenerates
====================  =====================================================
``run_fig3``          Fig. 3 — throughput vs segment size
``run_fig4``          Fig. 4 — throughput vs mu under churn
``run_fig5``          Fig. 5 — block delivery delay vs segment size
``run_fig6``          Fig. 6 — data saved per peer vs segment size
``run_theorem1``      Theorem 1 — storage overhead validation
``run_baseline_comparison``  Fig. 1(a) vs 1(b) flash-crowd head-to-head
``run_transient``     flash crowd: fluid (ODE) limit vs event simulation
``run_*_ablation``    design-choice ablations (TTL, buffer, selection,
                      scheduler, RLNC, topology)
``run_robustness``    E-ROBUST — graceful degradation under fault injection
``run_adversary``     E-ADVERSARY — Byzantine strategies vs server defenses
====================  =====================================================

Every runner is a thin wrapper over a ``plan_*`` builder that exposes the
experiment as a deterministic task grid (:class:`ExperimentPlan`):
``run_X(...) == plan_X(...).run_serial()``.  The parallel sweep runner
(:mod:`repro.runner`) executes the same grids on a worker pool and merges
through the same code path, which is what makes sharded execution
byte-identical to serial (see ``docs/RUNNER.md``).  ``PLAN_BUILDERS`` maps
each CLI experiment name to its plan builder.

Supporting machinery: quality budgets and :class:`SeriesResult`
(:mod:`repro.experiments.base`), and cross-run regression diffing
(:mod:`repro.experiments.regression`).
"""

from typing import Callable, Dict

from repro.experiments.adversary import plan_adversary, run_adversary
from repro.experiments.ablations import (
    plan_buffer_ablation,
    plan_coding_ablation,
    plan_scheduler_ablation,
    plan_selection_ablation,
    plan_topology_ablation,
    plan_ttl_ablation,
    run_buffer_ablation,
    run_coding_ablation,
    run_scheduler_ablation,
    run_selection_ablation,
    run_topology_ablation,
    run_ttl_ablation,
)
from repro.experiments.base import (
    BUDGETS,
    ExperimentPlan,
    QUALITY_FAST,
    QUALITY_FULL,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_as_dict,
    budget_for,
    budget_from_dict,
    override_budget,
    parse_seeds,
    simulate_metrics,
)
from repro.experiments.baseline import (
    FlashCrowdScenario,
    plan_baseline_comparison,
    run_baseline_comparison,
)
from repro.experiments.fig3 import plan_fig3, run_fig3
from repro.experiments.regression import (
    ComparisonReport,
    compare_archives,
    compare_results,
)
from repro.experiments.fig4 import plan_fig4, run_fig4
from repro.experiments.fig5 import plan_fig5, run_fig5
from repro.experiments.fig6 import plan_fig6, run_fig6
from repro.experiments.live import plan_live, run_live
from repro.experiments.live_chaos import plan_live_chaos, run_live_chaos
from repro.experiments.robustness import (
    plan_robustness,
    rlnc_pollution_audit,
    run_robustness,
)
from repro.experiments.scale import plan_scale, run_scale
from repro.experiments.theorem1 import plan_theorem1, run_theorem1
from repro.experiments.transient import plan_transient, run_transient

#: CLI experiment name -> task-grid builder.  Every builder accepts
#: ``(quality=..., budget=...)`` keywords; passing an explicit budget
#: bypasses the quality presets entirely (the parallel runner always does,
#: so workers never consult possibly-monkeypatched globals).
PLAN_BUILDERS: Dict[str, Callable[..., ExperimentPlan]] = {
    "fig3": plan_fig3,
    "fig4": plan_fig4,
    "fig5": plan_fig5,
    "fig6": plan_fig6,
    "theorem1": plan_theorem1,
    "transient": plan_transient,
    "baseline": plan_baseline_comparison,
    "robustness": plan_robustness,
    "adversary": plan_adversary,
    "scale": plan_scale,
    "live": plan_live,
    "live-chaos": plan_live_chaos,
    "ablation-ttl": plan_ttl_ablation,
    "ablation-buffer": plan_buffer_ablation,
    "ablation-selection": plan_selection_ablation,
    "ablation-scheduler": plan_scheduler_ablation,
    "ablation-coding": plan_coding_ablation,
    "ablation-topology": plan_topology_ablation,
}

__all__ = [
    "PLAN_BUILDERS",
    "plan_buffer_ablation",
    "plan_scheduler_ablation",
    "plan_topology_ablation",
    "plan_coding_ablation",
    "plan_selection_ablation",
    "plan_ttl_ablation",
    "run_buffer_ablation",
    "run_scheduler_ablation",
    "run_topology_ablation",
    "run_coding_ablation",
    "run_selection_ablation",
    "run_ttl_ablation",
    "BUDGETS",
    "ExperimentPlan",
    "QUALITY_FAST",
    "QUALITY_FULL",
    "SeriesResult",
    "SimBudget",
    "SimTask",
    "budget_as_dict",
    "budget_for",
    "budget_from_dict",
    "override_budget",
    "parse_seeds",
    "simulate_metrics",
    "FlashCrowdScenario",
    "plan_baseline_comparison",
    "run_baseline_comparison",
    "plan_fig3",
    "run_fig3",
    "ComparisonReport",
    "compare_archives",
    "compare_results",
    "plan_fig4",
    "run_fig4",
    "plan_fig5",
    "run_fig5",
    "plan_fig6",
    "run_fig6",
    "plan_adversary",
    "run_adversary",
    "plan_robustness",
    "rlnc_pollution_audit",
    "run_robustness",
    "plan_live",
    "run_live",
    "plan_live_chaos",
    "run_live_chaos",
    "plan_scale",
    "run_scale",
    "plan_theorem1",
    "run_theorem1",
    "plan_transient",
    "run_transient",
]
