"""E-BASE — traditional collection (Fig. 1a) versus indirect (Fig. 1b).

Three architectures run the same flash-crowd + churn scenario:

- **push** — the paper's "traditional solution": peers upload every block
  immediately; servers are finite queues and inbound overload is dropped
  (the "de facto DDoS" of Sec. 1).  Must be provisioned for the *peak*.
- **pull** — the naive remedy Sec. 1 also dismisses: servers proactively
  pull pending blocks from peers.  Capacity-efficient, but a departing
  peer's un-pulled backlog is lost with it, and nothing of a departed peer
  is ever recoverable later.
- **indirect** — the paper's design: RLNC gossip buffering plus
  coupon-collector pulls.

Reported, per phase of the scenario (steady / burst / drain / drain):

- ``intake`` — usefully collected blocks per unit time over the base
  demand ``N*lambda_base`` (for push/pull: delivered originals; for
  indirect: innovative coded blocks — the paper's throughput notion);

and, as end-of-run notes, the postmortem splits: what fraction of
*departed* peers' data each architecture ever collected, and what remains
recoverable.

Expected shape: during the burst the push system saturates and drops the
excess permanently (its drain-phase intake collapses to the base rate),
while pull and indirect keep collecting backlog after the burst; under
churn the indirect system's departed-peer coverage beats pull's, because
coded copies outlive their source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Tuple, Union

from repro.core.baseline import DirectCollectionSystem
from repro.core.params import Parameters
from repro.core.push import PushCollectionSystem
from repro.core.system import CollectionSystem
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
)
from repro.stats.workload import FlashCrowdWorkload


@dataclass(frozen=True)
class FlashCrowdScenario:
    """Shared workload/provisioning of the three-way comparison."""

    base_rate: float = 4.0
    burst_multiplier: float = 5.0
    burst_start: float = 10.0
    burst_end: float = 15.0
    gossip_rate: float = 10.0
    deletion_rate: float = 0.5  # mean retention 2 time units
    normalized_capacity: float = 6.0  # covers the 4-6 average, not the 20 peak
    segment_size: int = 20
    mean_lifetime: float = 4.0
    phase_ends: Tuple[float, ...] = (10.0, 15.0, 25.0, 40.0)

    def workload(self) -> FlashCrowdWorkload:
        return FlashCrowdWorkload(
            base_rate=self.base_rate,
            burst_start=self.burst_start,
            burst_end=self.burst_end,
            multiplier=self.burst_multiplier,
        )

    def phase_labels(self) -> List[str]:
        return ["steady", "burst", "drain-1", "drain-2"]


def plan_baseline_comparison(
    quality: str = QUALITY_FAST,
    scenario: Optional[FlashCrowdScenario] = None,
    budget: Optional[SimBudget] = None,
    seed: int = 1,
) -> ExperimentPlan:
    """The three-way comparison as a task grid: one task per architecture.

    Each architecture's phase sweep is sequential against its own shared
    system state, so the natural cell is one whole system run; the three
    systems are mutually independent and parallelize cleanly.
    """
    scenario = scenario or FlashCrowdScenario()
    budget = budget or budget_for(quality)
    base_demand = budget.n_peers * scenario.base_rate

    params = Parameters(
        n_peers=budget.n_peers,
        arrival_rate=scenario.base_rate,
        gossip_rate=scenario.gossip_rate,
        deletion_rate=scenario.deletion_rate,
        normalized_capacity=scenario.normalized_capacity,
        segment_size=scenario.segment_size,
        n_servers=budget.n_servers,
        mean_lifetime=scenario.mean_lifetime,
    )

    def phase_intake(
        system: Union[
            CollectionSystem, DirectCollectionSystem, PushCollectionSystem
        ],
    ) -> List[float]:
        intake: List[float] = []
        previous_end = 0.0
        for phase_end in scenario.phase_ends:
            duration = phase_end - previous_end
            previous_end = phase_end
            intake.append(system.run_phase(duration).throughput / base_demand)
        return intake

    def run_push() -> Payload:
        push = PushCollectionSystem(
            params, seed=seed, workload=scenario.workload()
        )
        intake = phase_intake(push)
        return {"intake": intake, "loss_fraction": push.loss_fraction()}

    def departed_payload(
        system: Union[CollectionSystem, DirectCollectionSystem],
    ) -> Payload:
        departed = system.postmortem().departed
        return {
            "collected_fraction": departed.collected_fraction,
            "recoverable": departed.recoverable,
            "injected": departed.injected,
        }

    def run_pull() -> Payload:
        pull = DirectCollectionSystem(
            params, seed=seed, workload=scenario.workload()
        )
        intake = phase_intake(pull)
        return {"intake": intake, **departed_payload(pull)}

    def run_indirect() -> Payload:
        indirect = CollectionSystem(
            params, seed=seed, workload=scenario.workload()
        )
        intake = phase_intake(indirect)
        return {"intake": intake, **departed_payload(indirect)}

    builders: List[Tuple[str, Callable[[], Payload]]] = [
        ("push", run_push), ("pull", run_pull), ("indirect", run_indirect)
    ]
    tasks = [
        SimTask(task_id=f"{label}:seed={seed}", thunk=thunk)
        for label, thunk in builders
    ]

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        push = payloads[f"push:seed={seed}"]
        pull = payloads[f"pull:seed={seed}"]
        indirect = payloads[f"indirect:seed={seed}"]

        result = SeriesResult(
            name="baseline",
            title=(
                "Fig. 1(a) vs 1(b) — push / pull / indirect through a "
                f"x{scenario.burst_multiplier:g} flash crowd with churn "
                f"(c={scenario.normalized_capacity:g}, "
                f"lambda_base={scenario.base_rate:g}, "
                f"L={scenario.mean_lifetime:g})"
            ),
            x_name="phase",
            x_values=list(range(1, len(scenario.phase_ends) + 1)),
        )
        for label, payload in (
            ("push", push), ("pull", pull), ("indirect", indirect)
        ):
            result.add_series(
                f"{label} intake", [float(v) for v in payload["intake"]]
            )

        for index, label in enumerate(scenario.phase_labels(), start=1):
            result.add_note(f"phase {index}: {label}")
        result.add_note(
            "intake = usefully collected blocks per unit time / "
            "(N*lambda_base); push and pull collect originals, indirect "
            "collects innovative coded blocks (the paper's throughput "
            "metric)"
        )
        result.add_note(
            f"push dropped {push['loss_fraction']:.1%} of all uploads at "
            "the servers (burst overload is lost permanently)"
        )
        result.add_note(
            "departed-peer coverage (collected fraction of departed "
            f"generations' data): pull {pull['collected_fraction']:.1%}, "
            f"indirect {indirect['collected_fraction']:.1%}"
        )
        result.add_note(
            "still recoverable from departed generations: pull "
            f"{pull['recoverable'] / max(pull['injected'], 1):.1%}, "
            "indirect "
            f"{indirect['recoverable'] / max(indirect['injected'], 1):.1%}"
        )
        return result

    return ExperimentPlan("baseline", tasks, merge)


def run_baseline_comparison(
    quality: str = QUALITY_FAST,
    scenario: Optional[FlashCrowdScenario] = None,
    budget: Optional[SimBudget] = None,
    seed: int = 1,
) -> SeriesResult:
    """Run the flash-crowd three-way comparison; x-axis is the phase."""
    return plan_baseline_comparison(
        quality, scenario, budget, seed
    ).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_baseline_comparison(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
