"""E-FIG4 — Fig. 4: session throughput vs peer bandwidth mu under churn.

Paper setting: ``lambda = 8, gamma = 1``; peer dynamics follow the
replacement model with exponential lifetimes of mean ``L``; the y-axis is
again throughput normalized by ``N * lambda``.

The figure's message has two regimes:

- **ample servers** (``c = 8 = lambda``): buffering is unnecessary; under
  severe churn, larger segments and more gossip *hurt* (segments become
  undecodable when holders abort) — the dashed churn curves fall below the
  static ones and degrade as ``s`` and ``mu`` grow;
- **scarce servers** (``c = 2``, ``c/lambda = 0.25``): the servers cannot
  keep up anyway, so added redundancy helps data survive until pulled —
  throughput *benefits* from larger ``s`` and larger ``mu`` even under
  churn.

Reproduced series: for each scenario (c, s) one static curve and one
churned curve (L = 5), swept over mu.  Simulation only: the paper's ODEs do
not model churn, so this figure is simulation-driven there as well.
"""

from __future__ import annotations

from functools import partial
from typing import Mapping, Optional, Sequence, Tuple

from repro.core.params import Parameters
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    seed_mean,
    simulate_cell,
)

#: Paper parameters for Fig. 4.
ARRIVAL_RATE = 8.0
DELETION_RATE = 1.0
#: Churn severity: mean peer lifetime (units of 1/gamma).
CHURN_LIFETIME = 5.0

MU_VALUES = {
    "fast": (2.0, 6.0, 10.0, 16.0),
    "full": (2.0, 6.0, 10.0, 14.0, 20.0),
}

#: (c, s) scenario grid: ample vs scarce capacity, no coding vs heavy coding.
SCENARIOS = ((8.0, 1), (8.0, 30), (2.0, 1), (2.0, 30))

METRICS = ("normalized_throughput",)


def plan_fig4(
    quality: str = QUALITY_FAST,
    mu_values: Optional[Sequence[float]] = None,
    scenarios: Sequence[Tuple[float, int]] = SCENARIOS,
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """Fig. 4 as a task grid: one cell per (c, s, regime, mu, seed)."""
    if mu_values is None:
        mu_values = MU_VALUES["full" if quality == "full" else "fast"]
    budget = budget or budget_for(quality)

    tasks = []
    for c, s in scenarios:
        for churned in (False, True):
            regime = "churn" if churned else "static"
            for mu in mu_values:
                params = Parameters(
                    n_peers=budget.n_peers,
                    arrival_rate=ARRIVAL_RATE,
                    gossip_rate=mu,
                    deletion_rate=DELETION_RATE,
                    normalized_capacity=c,
                    segment_size=s,
                    n_servers=budget.n_servers,
                    mean_lifetime=CHURN_LIFETIME if churned else None,
                    engine=budget.engine,
                    tau=budget.tau,
                )
                for seed in budget.seeds:
                    tasks.append(SimTask(
                        task_id=(
                            f"c={c:g}:s={s}:{regime}:mu={mu:g}:seed={seed}"
                        ),
                        thunk=partial(
                            simulate_cell, params, budget.warmup,
                            budget.duration, METRICS, seed,
                        ),
                    ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="fig4",
            title=(
                "Fig. 4 — normalized session throughput vs mu "
                f"(lambda={ARRIVAL_RATE:g}, gamma={DELETION_RATE:g}, "
                f"churn lifetime L={CHURN_LIFETIME:g})"
            ),
            x_name="mu",
            x_values=[float(mu) for mu in mu_values],
        )
        for c, s in scenarios:
            for churned in (False, True):
                regime = "churn" if churned else "static"
                values = [
                    seed_mean(
                        payloads, f"c={c:g}:s={s}:{regime}:mu={mu:g}",
                        budget.seeds, "normalized_throughput",
                    )
                    for mu in mu_values
                ]
                label = f"c={c:g} s={s}" + (
                    " churn" if churned else " static"
                )
                result.add_series(label, values)
        result.add_note(
            "shape target: with ample capacity (c=lambda=8) churn+large s "
            "degrades throughput; with scarce capacity (c=2) larger s and "
            "mu help even under churn"
        )
        return result

    return ExperimentPlan("fig4", tasks, merge)


def run_fig4(
    quality: str = QUALITY_FAST,
    mu_values: Optional[Sequence[float]] = None,
    scenarios: Sequence[Tuple[float, int]] = SCENARIOS,
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """Regenerate Fig. 4's series; returns the table-ready result."""
    return plan_fig4(quality, mu_values, scenarios, budget).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_fig4(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
