"""Shared experiment machinery: quality presets, sweeps, result records.

Every figure runner produces a :class:`SeriesResult` — one x-axis sweep with
several labelled y-series, which is exactly the structure of each figure in
the paper.  Results render as ASCII tables (for the benchmark logs and
EXPERIMENTS.md) and serialize to JSON (for archival/regression diffing).

Two quality presets control cost:

- ``fast`` — small network, single seed, coarse sweep; minutes of CPU.
  Used by the pytest-benchmark harness and CI.
- ``full`` — paper-scale sweep with seed replication; tens of minutes.
  Used to produce the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import Parameters
from repro.core.system import CollectionSystem
from repro.util.summary import summarize
from repro.util.tables import render_series

QUALITY_FAST = "fast"
QUALITY_FULL = "full"
VALID_QUALITIES = (QUALITY_FAST, QUALITY_FULL)


@dataclass(frozen=True)
class SimBudget:
    """Simulation sizing for one quality level."""

    n_peers: int
    warmup: float
    duration: float
    seeds: Tuple[int, ...]
    n_servers: int = 4


#: Default budgets.  The paper does not state its simulated N; these sizes
#: are chosen so that finite-N noise is well below the effects being shown
#: (validated by the convergence tests).
BUDGETS: Dict[str, SimBudget] = {
    QUALITY_FAST: SimBudget(n_peers=120, warmup=12.0, duration=16.0, seeds=(1,)),
    QUALITY_FULL: SimBudget(
        n_peers=250, warmup=20.0, duration=32.0, seeds=(1, 2)
    ),
}


def budget_for(quality: str) -> SimBudget:
    """Look up the :class:`SimBudget` for *quality* (raises on typos)."""
    if quality not in BUDGETS:
        raise ValueError(
            f"quality must be one of {sorted(BUDGETS)}, got {quality!r}"
        )
    return BUDGETS[quality]


@dataclass
class SeriesResult:
    """One figure's worth of reproduced data."""

    name: str
    title: str
    x_name: str
    x_values: List[float]
    series: "Dict[str, List[Optional[float]]]" = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, label: str, values: Sequence[Optional[float]]) -> None:
        """Attach one labelled y-series aligned with the x sweep."""
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points, x-axis has "
                f"{len(self.x_values)}"
            )
        if label in self.series:
            raise ValueError(f"duplicate series label {label!r}")
        self.series[label] = values

    def add_note(self, note: str) -> None:
        """Record a free-form caveat shown under the table."""
        self.notes.append(note)

    def to_table(self, float_fmt: str = "{:.4f}") -> str:
        """Render as an aligned ASCII table (plus notes)."""
        table = render_series(
            self.x_name,
            self.x_values,
            [(label, values) for label, values in self.series.items()],
            title=self.title,
            float_fmt=float_fmt,
        )
        if self.notes:
            table += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return table

    def to_json(self) -> str:
        """Serialize to JSON (NaN-safe: None stays null)."""
        payload = {
            "name": self.name,
            "title": self.title,
            "x_name": self.x_name,
            "x_values": self.x_values,
            "series": {
                label: [
                    None if v is None or (isinstance(v, float) and math.isnan(v))
                    else v
                    for v in values
                ]
                for label, values in self.series.items()
            },
            "notes": self.notes,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SeriesResult":
        """Round-trip counterpart of :meth:`to_json`."""
        payload = json.loads(text)
        result = cls(
            name=payload["name"],
            title=payload["title"],
            x_name=payload["x_name"],
            x_values=payload["x_values"],
        )
        for label, values in payload["series"].items():
            result.add_series(label, values)
        for note in payload.get("notes", []):
            result.add_note(note)
        return result


def simulate_metrics(
    params: Parameters,
    budget: SimBudget,
    metrics: Sequence[str],
    workload=None,
) -> Dict[str, float]:
    """Run one parameter point over the budget's seeds; mean each metric.

    *metrics* names attributes of :class:`repro.sim.metrics.MetricsReport`.
    ``None``-valued samples (e.g. no delay observations) are dropped; if a
    metric has no valid samples at all its mean is ``nan``.
    """
    samples: Dict[str, List[float]] = {name: [] for name in metrics}
    for seed in budget.seeds:
        system = CollectionSystem(params, seed=seed, workload=workload)
        report = system.run(budget.warmup, budget.duration)
        for name in metrics:
            value = getattr(report, name)
            if value is not None and not (
                isinstance(value, float) and math.isnan(value)
            ):
                samples[name].append(float(value))
    out: Dict[str, float] = {}
    for name, values in samples.items():
        out[name] = summarize(values).mean if values else math.nan
    return out
