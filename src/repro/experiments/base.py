"""Shared experiment machinery: quality presets, sweeps, result records.

Every figure runner produces a :class:`SeriesResult` — one x-axis sweep with
several labelled y-series, which is exactly the structure of each figure in
the paper.  Results render as ASCII tables (for the benchmark logs and
EXPERIMENTS.md) and serialize to JSON (for archival/regression diffing).

Two quality presets control cost:

- ``fast`` — small network, single seed, coarse sweep; minutes of CPU.
  Used by the pytest-benchmark harness and CI.
- ``full`` — paper-scale sweep with seed replication; tens of minutes.
  Used to produce the numbers recorded in EXPERIMENTS.md.

Task grids
----------

Each experiment additionally exposes its work as a deterministic **task
grid** (:class:`ExperimentPlan`): a flat, ordered list of independent
:class:`SimTask` cells — one per (sweep point, seed) — plus a ``merge``
function that folds the task payloads back into the figure's
:class:`SeriesResult`.  The serial runners (``run_fig3`` etc.) are thin
wrappers that execute their plan's tasks in order and merge; the parallel
sweep orchestrator (:mod:`repro.runner`) executes the *same* tasks on a
worker pool and calls the *same* merge, so parallel results are
byte-identical to serial ones by construction:

- every task seeds its own simulation from its ``(params, seed)`` cell —
  tasks share no RNG state, honoring the named-substream discipline of
  :class:`repro.sim.rng.SeedSequenceRegistry`;
- task payloads are normalized through a JSON round-trip on *every* path
  (in-process or journaled to disk), so merge always sees identical bytes;
- ``merge`` looks payloads up **by task id** and folds seeds in declared
  budget order — never in completion order — so float accumulation
  (the R2/R4 determinism contract) is reproduced exactly.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.params import (
    ENGINE_EVENT,
    ENGINE_FAST,
    VALID_ENGINES,
    Parameters,
)
from repro.core.system import CollectionSystem
from repro.stats.workload import Workload
from repro.util.summary import summarize
from repro.util.tables import render_series

QUALITY_FAST = "fast"
QUALITY_FULL = "full"
VALID_QUALITIES = (QUALITY_FAST, QUALITY_FULL)


@dataclass(frozen=True)
class SimBudget:
    """Simulation sizing for one quality level.

    ``engine``/``tau`` select the simulation engine for every cell of the
    sweep (see :class:`repro.core.params.Parameters`): ``"event"`` is the
    event-exact default, ``"fast"`` the vectorized struct-of-arrays
    engine with tau-leap step size ``tau`` (0 = exact aggregate clocks).
    """

    n_peers: int
    warmup: float
    duration: float
    seeds: Tuple[int, ...]
    n_servers: int = 4
    engine: str = ENGINE_EVENT
    tau: float = 0.01

    def __post_init__(self) -> None:
        if self.engine not in VALID_ENGINES:
            raise ValueError(
                f"engine must be one of {VALID_ENGINES}, got {self.engine!r}"
            )
        if self.tau < 0 or not math.isfinite(self.tau):
            raise ValueError(
                f"tau must be finite and >= 0, got {self.tau!r}"
            )


#: Default budgets.  The paper does not state its simulated N; these sizes
#: are chosen so that finite-N noise is well below the effects being shown
#: (validated by the convergence tests).
BUDGETS: Dict[str, SimBudget] = {
    QUALITY_FAST: SimBudget(n_peers=120, warmup=12.0, duration=16.0, seeds=(1,)),
    QUALITY_FULL: SimBudget(
        n_peers=250, warmup=20.0, duration=32.0, seeds=(1, 2)
    ),
}


def budget_for(quality: str) -> SimBudget:
    """Look up the :class:`SimBudget` for *quality* (raises on typos)."""
    if quality not in BUDGETS:
        raise ValueError(
            f"quality must be one of {sorted(BUDGETS)}, got {quality!r}"
        )
    return BUDGETS[quality]


def parse_seeds(text: str) -> Tuple[int, ...]:
    """Parse a CLI ``--seeds`` list ("1,2,3") into a seed tuple.

    Raises :class:`ValueError` on empty input, non-integer entries, and
    duplicates (a duplicated seed would silently double-weight one
    replication in every seed mean).
    """
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if not parts:
        raise ValueError("--seeds needs at least one integer (e.g. '1,2,3')")
    try:
        seeds = tuple(int(part) for part in parts)
    except ValueError:
        raise ValueError(
            f"--seeds entries must be integers, got {text!r}"
        ) from None
    duplicates = sorted({seed for seed in seeds if seeds.count(seed) > 1})
    if duplicates:
        raise ValueError(
            f"--seeds contains duplicate seed(s) {duplicates}: each seed "
            "must appear exactly once or one replication is double-counted"
        )
    return seeds


def override_budget(
    budget: SimBudget,
    seeds: Optional[Sequence[int]] = None,
    n_peers: Optional[int] = None,
    warmup: Optional[float] = None,
    duration: Optional[float] = None,
    n_servers: Optional[int] = None,
    engine: Optional[str] = None,
    tau: Optional[float] = None,
) -> SimBudget:
    """Return *budget* with any non-``None`` field replaced."""
    changes: Dict[str, Any] = {}
    if seeds is not None:
        changes["seeds"] = tuple(int(seed) for seed in seeds)
    if n_peers is not None:
        changes["n_peers"] = int(n_peers)
    if warmup is not None:
        changes["warmup"] = float(warmup)
    if duration is not None:
        changes["duration"] = float(duration)
    if n_servers is not None:
        changes["n_servers"] = int(n_servers)
    if engine is not None:
        changes["engine"] = str(engine)
    if tau is not None:
        changes["tau"] = float(tau)
    return replace(budget, **changes) if changes else budget


def budget_as_dict(budget: SimBudget) -> Dict[str, Any]:
    """JSON-ready form of a budget (for run manifests)."""
    return {
        "n_peers": budget.n_peers,
        "warmup": budget.warmup,
        "duration": budget.duration,
        "seeds": list(budget.seeds),
        "n_servers": budget.n_servers,
        "engine": budget.engine,
        "tau": budget.tau,
    }


def budget_from_dict(payload: Mapping[str, Any]) -> SimBudget:
    """Inverse of :func:`budget_as_dict` (for workers rebuilding a plan).

    ``engine``/``tau`` default when absent so manifests journaled before
    the fast engine existed still resume.
    """
    return SimBudget(
        n_peers=int(payload["n_peers"]),
        warmup=float(payload["warmup"]),
        duration=float(payload["duration"]),
        seeds=tuple(int(seed) for seed in payload["seeds"]),
        n_servers=int(payload["n_servers"]),
        engine=str(payload.get("engine", ENGINE_EVENT)),
        tau=float(payload.get("tau", 0.01)),
    )


@dataclass
class SeriesResult:
    """One figure's worth of reproduced data."""

    name: str
    title: str
    x_name: str
    x_values: List[float]
    series: "Dict[str, List[Optional[float]]]" = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, label: str, values: Sequence[Optional[float]]) -> None:
        """Attach one labelled y-series aligned with the x sweep."""
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points, x-axis has "
                f"{len(self.x_values)}"
            )
        if label in self.series:
            raise ValueError(f"duplicate series label {label!r}")
        self.series[label] = values

    def add_note(self, note: str) -> None:
        """Record a free-form caveat shown under the table."""
        self.notes.append(note)

    def to_table(self, float_fmt: str = "{:.4f}") -> str:
        """Render as an aligned ASCII table (plus notes)."""
        table = render_series(
            self.x_name,
            self.x_values,
            [(label, values) for label, values in self.series.items()],
            title=self.title,
            float_fmt=float_fmt,
        )
        if self.notes:
            table += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return table

    def to_json(self) -> str:
        """Serialize to JSON (NaN-safe: None stays null)."""
        payload = {
            "name": self.name,
            "title": self.title,
            "x_name": self.x_name,
            "x_values": self.x_values,
            "series": {
                label: [
                    None if v is None or (isinstance(v, float) and math.isnan(v))
                    else v
                    for v in values
                ]
                for label, values in self.series.items()
            },
            "notes": self.notes,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SeriesResult":
        """Round-trip counterpart of :meth:`to_json`."""
        payload = json.loads(text)
        result = cls(
            name=payload["name"],
            title=payload["title"],
            x_name=payload["x_name"],
            x_values=payload["x_values"],
        )
        for label, values in payload["series"].items():
            result.add_series(label, values)
        for note in payload.get("notes", []):
            result.add_note(note)
        return result


#: One task's JSON-normalized output.
Payload = Dict[str, Any]


@dataclass(frozen=True)
class SimTask:
    """One independent cell of an experiment's task grid.

    ``task_id`` is a deterministic, human-readable key (e.g.
    ``"c=8:s=20:seed=2"``) — stable across runs, processes, and code that
    merely reorders the grid.  ``thunk`` performs the cell's work and
    returns a JSON-serializable payload.
    """

    task_id: str
    thunk: Callable[[], Mapping[str, Any]]

    def run(self) -> Payload:
        """Execute the cell and return its JSON-normalized payload.

        The round-trip through ``json`` is deliberate: it guarantees the
        merge step consumes byte-identical inputs whether the payload came
        straight from this process or was journaled to disk by a worker
        (``allow_nan=False`` surfaces any non-finite value loudly instead
        of smuggling ``NaN`` through; cells encode "no sample" as null).
        """
        payload = self.thunk()
        normalized: Payload = json.loads(
            json.dumps(payload, sort_keys=True, allow_nan=False)
        )
        return normalized


@dataclass
class ExperimentPlan:
    """A deterministic task grid plus its aggregation rule.

    ``tasks`` is the grid in canonical order; ``merge_payloads`` folds a
    ``{task_id: payload}`` mapping into the experiment's
    :class:`SeriesResult`.  Merge MUST consume payloads keyed by task id
    (never in completion order) so that serial and parallel execution
    produce byte-identical results.
    """

    experiment: str
    tasks: List[SimTask]
    merge_payloads: Callable[[Mapping[str, Payload]], "SeriesResult"]

    def __post_init__(self) -> None:
        seen: Dict[str, int] = {}
        for task in self.tasks:
            if task.task_id in seen:
                raise ValueError(
                    f"plan {self.experiment!r} has duplicate task id "
                    f"{task.task_id!r}"
                )
            seen[task.task_id] = 1

    def task_ids(self) -> List[str]:
        """Task ids in canonical grid order."""
        return [task.task_id for task in self.tasks]

    def task(self, task_id: str) -> SimTask:
        """Look one task up by id (raises ``KeyError`` with context)."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(
            f"plan {self.experiment!r} has no task {task_id!r} "
            f"({len(self.tasks)} tasks in grid)"
        )

    def merge(self, payloads: Mapping[str, Payload]) -> "SeriesResult":
        """Aggregate completed payloads (validates grid completeness)."""
        missing = [
            task.task_id for task in self.tasks if task.task_id not in payloads
        ]
        if missing:
            raise ValueError(
                f"cannot merge {self.experiment!r}: {len(missing)} of "
                f"{len(self.tasks)} task payload(s) missing "
                f"(first: {missing[0]!r})"
            )
        return self.merge_payloads(payloads)

    def run_serial(self) -> "SeriesResult":
        """Execute every task in grid order in-process, then merge."""
        return self.merge({task.task_id: task.run() for task in self.tasks})


def simulate_cell(
    params: Parameters,
    warmup: float,
    duration: float,
    metrics: Sequence[str],
    seed: int,
    workload: Optional[Workload] = None,
) -> Dict[str, Optional[float]]:
    """Run ONE (parameter point, seed) simulation; extract *metrics*.

    The single-cell unit of every task grid.  ``None``/NaN metric values
    (e.g. no delay observations) are encoded as ``None`` so the payload
    survives strict JSON; :func:`seed_mean` drops them on the other side
    exactly as :func:`simulate_metrics` always has.

    ``params.engine`` selects the simulator: the event-exact engine (the
    default) or the vectorized fast engine (abstract mode only; see
    :mod:`repro.fastsim`).
    """
    if params.engine == ENGINE_FAST:
        if workload is not None:
            raise ValueError(
                "workload requires engine='event': the fast engine "
                "simulates the abstract homogeneous-rate model only"
            )
        from repro.fastsim import FastCollectionSystem

        report = FastCollectionSystem(params, seed=seed).run(warmup, duration)
    else:
        system = CollectionSystem(params, seed=seed, workload=workload)
        report = system.run(warmup, duration)
    cell: Dict[str, Optional[float]] = {}
    for name in metrics:
        value = getattr(report, name)
        if value is None or (isinstance(value, float) and math.isnan(value)):
            cell[name] = None
        else:
            cell[name] = float(value)
    return cell


def seed_mean(
    payloads: Mapping[str, Payload],
    cell_prefix: str,
    seeds: Sequence[int],
    metric: str,
) -> float:
    """Mean of *metric* over per-seed cells ``{cell_prefix}:seed={n}``.

    Folds seeds in declared budget order (never completion order) with the
    same drop-``None``/empty-is-NaN semantics as :func:`simulate_metrics`,
    so a merged parallel run reproduces the serial mean bit for bit.
    """
    values: List[float] = []
    for seed in seeds:
        value = payloads[f"{cell_prefix}:seed={seed}"][metric]
        if value is not None:
            values.append(float(value))
    return summarize(values).mean if values else math.nan


def simulate_metrics(
    params: Parameters,
    budget: SimBudget,
    metrics: Sequence[str],
    workload: Optional[Workload] = None,
) -> Dict[str, float]:
    """Run one parameter point over the budget's seeds; mean each metric.

    *metrics* names attributes of :class:`repro.sim.metrics.MetricsReport`.
    ``None``-valued samples (e.g. no delay observations) are dropped; if a
    metric has no valid samples at all its mean is ``nan``.  Implemented on
    the same :func:`simulate_cell` unit the task grids execute, so serial
    and sharded sweeps share one code path.
    """
    cells = [
        simulate_cell(params, budget.warmup, budget.duration, metrics, seed,
                      workload)
        for seed in budget.seeds
    ]
    out: Dict[str, float] = {}
    for name in metrics:
        values = [
            float(cell[name]) for cell in cells if cell[name] is not None
        ]
        out[name] = summarize(values).mean if values else math.nan
    return out
