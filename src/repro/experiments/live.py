"""E-LIVE — sim-vs-live cross-validation of the deployment runtime.

The live runtime (:mod:`repro.live`) claims to execute the *same*
protocol the event engine simulates — same ``Parameters``, same GF(256)
kernels, same fault semantics — just over real TCP sockets instead of an
event queue.  E-LIVE makes the claim falsifiable: for each segment size
at one operating point it runs

- the **event-exact simulator** over the budget's seeds (long windows:
  simulated time is cheap), and
- a **real single-box swarm** — every peer an asyncio task with its own
  listener, every block moved and recoded on the wire, every completed
  segment decode-verified against the source digest — over the same
  seeds (shorter windows: wall-clock time is paid 1:1),

then compares steady-state metrics within the stated tolerance bands
(:mod:`repro.live.crossval`).  The merged result carries one verdict note
per segment size plus the overall PASS/FAIL, so ``results/live.json``
is a self-contained cross-validation artifact.

Expected shape: every compared metric inside its band; hash failures
zero everywhere (end-to-end RLNC decode correctness on the wire).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.params import MODE_RLNC, Parameters
from repro.experiments.base import (
    ExperimentPlan,
    Payload,
    QUALITY_FAST,
    SeriesResult,
    SimBudget,
    SimTask,
    budget_for,
    simulate_cell,
)
from repro.live.crossval import DEFAULT_TOLERANCES, compare_reports
from repro.live.harness import live_cell
from repro.util.summary import summarize

#: The operating point (per-peer rates; the Fig. 3 family's low-load
#: corner, where a live swarm reaches steady state in seconds).
ARRIVAL_RATE = 0.25
GOSSIP_RATE = 1.0
DELETION_RATE = 0.25
CAPACITY = 1.0

#: Real payload bytes per block on the wire.
PAYLOAD_BYTES = 64

#: Segment sizes cross-validated.
SEGMENT_SIZES = (1, 2, 4)

#: Cross-validated metrics: the crossval tolerance table's keys.  Live
#: cells additionally report the end-to-end verification counters
#: (which the simulator, moving no real bytes, cannot produce).
CROSSVAL_METRICS = tuple(DEFAULT_TOLERANCES)
LIVE_METRICS = CROSSVAL_METRICS + ("hash_verified", "hash_failures")

#: Live-swarm shape per quality preset: peers, sim-units of warmup and
#: measurement, and the wall<->sim time scale.  The event-sim twin uses
#: SIM_WARMUP/SIM_DURATION instead — simulated units are cheap, so the
#: sim side buys its estimator variance down with longer windows.
LIVE_SHAPE: Dict[str, Tuple[int, float, float, float]] = {
    "fast": (64, 15.0, 30.0, 2.0),
    # time_scale 0.25: a 1000-peer swarm saturates one event loop at
    # 0.5 sim-units/s — the loop falls behind its Poisson schedules and
    # throughput reads low.  Slowing the clock restores fidelity
    # (worst per-metric deviation drops from ~43% to ~3%).
    "full": (1000, 12.0, 24.0, 0.25),
}

SIM_WARMUP = 40.0
SIM_DURATION = 120.0


def plan_live(
    quality: str = QUALITY_FAST,
    segment_sizes: Sequence[int] = SEGMENT_SIZES,
    budget: Optional[SimBudget] = None,
) -> ExperimentPlan:
    """E-LIVE as a task grid: one cell per (engine, s, seed).

    Live cells run a complete TCP swarm inside the task (via
    ``asyncio.run``), so they are single-process tasks like any other —
    the parallel runner can shard the grid, though live cells saturate
    one box's event loop each.
    """
    budget = budget or budget_for(quality)
    n_peers, live_warmup, live_duration, time_scale = LIVE_SHAPE[
        "full" if quality == "full" else "fast"
    ]
    preset = budget_for(quality)
    if budget.n_peers != preset.n_peers:
        # explicit --n-peers override: cross-validate that population
        n_peers = budget.n_peers
    seeds = budget.seeds

    tasks = []
    grid: List[Tuple[int, Parameters]] = []
    for s in segment_sizes:
        params = Parameters(
            n_peers=n_peers,
            arrival_rate=ARRIVAL_RATE,
            gossip_rate=GOSSIP_RATE,
            deletion_rate=DELETION_RATE,
            normalized_capacity=CAPACITY,
            segment_size=s,
            n_servers=budget.n_servers,
            mode=MODE_RLNC,
            payload_bytes=PAYLOAD_BYTES,
        )
        grid.append((s, params))
        for seed in seeds:
            tasks.append(SimTask(
                task_id=f"sim:s={s}:seed={seed}",
                thunk=partial(
                    simulate_cell, params, SIM_WARMUP, SIM_DURATION,
                    CROSSVAL_METRICS, seed,
                ),
            ))
            tasks.append(SimTask(
                task_id=f"live:s={s}:seed={seed}",
                thunk=partial(
                    live_cell, params, seed, live_warmup, live_duration,
                    time_scale, LIVE_METRICS,
                ),
            ))

    def merge(payloads: Mapping[str, Payload]) -> SeriesResult:
        result = SeriesResult(
            name="live",
            title=(
                "E-LIVE — sim-vs-live cross-validation "
                f"(N={n_peers}, lambda={ARRIVAL_RATE:g}, "
                f"mu={GOSSIP_RATE:g}, gamma={DELETION_RATE:g}, "
                f"c={CAPACITY:g}, payload={PAYLOAD_BYTES}B, "
                f"time_scale={time_scale:g})"
            ),
            x_name="s",
            x_values=[float(s) for s, _ in grid],
        )

        def seed_mean(
            prefix: str, s: int, metric: str
        ) -> Optional[float]:
            samples = [
                float(value)
                for seed in seeds
                for value in [payloads[f"{prefix}:s={s}:seed={seed}"][metric]]
                if value is not None
            ]
            return summarize(samples).mean if samples else None

        verdicts = []
        for s, _ in grid:
            sim_report = {
                metric: seed_mean("sim", s, metric)
                for metric in CROSSVAL_METRICS
            }
            live_report = {
                metric: seed_mean("live", s, metric)
                for metric in CROSSVAL_METRICS
            }
            verdicts.append((s, compare_reports(sim_report, live_report)))

        for metric in DEFAULT_TOLERANCES:
            result.add_series(
                f"sim {metric}",
                [seed_mean("sim", s, metric) for s, _ in grid],
            )
            result.add_series(
                f"live {metric}",
                [seed_mean("live", s, metric) for s, _ in grid],
            )

        for s, report in verdicts:
            worst = report.worst
            if worst is None or worst.deviation is None:
                detail = "no compared metric produced samples on both sides"
            else:
                detail = (
                    f"worst {worst.metric}: "
                    f"dev {worst.deviation:.1%} vs tol {worst.tolerance:.0%}"
                )
            result.add_note(
                f"s={s}: {'agrees' if report.agrees else 'DISAGREES'} "
                f"({detail})"
            )
        failures = sum(
            int(value)
            for s, _ in grid
            for seed in seeds
            for value in [payloads[f"live:s={s}:seed={seed}"]["hash_failures"]]
            if value is not None
        )
        verified = sum(
            int(value)
            for s, _ in grid
            for seed in seeds
            for value in [payloads[f"live:s={s}:seed={seed}"]["hash_verified"]]
            if value is not None
        )
        result.add_note(
            f"end-to-end decode verification: {verified} segment(s) "
            f"hash-verified on the wire, {failures} failure(s)"
        )
        if all(report.agrees for _, report in verdicts) and failures == 0:
            result.add_note("CROSS-VALIDATION PASSED")
        else:
            result.add_note("CROSS-VALIDATION FAILED")
        return result

    return ExperimentPlan("live", tasks, merge)


def run_live(
    quality: str = QUALITY_FAST,
    segment_sizes: Sequence[int] = SEGMENT_SIZES,
    budget: Optional[SimBudget] = None,
) -> SeriesResult:
    """Run E-LIVE serially; returns the table-ready result."""
    return plan_live(quality, segment_sizes, budget).run_serial()


def main(quality: str = QUALITY_FAST) -> SeriesResult:
    """CLI entry: run and print the table."""
    result = run_live(quality)
    print(result.to_table())
    return result


if __name__ == "__main__":
    main()
