"""Declarative fault configuration: what goes wrong, how often, how badly.

A :class:`FaultPlan` is a frozen bundle of adversarial-condition knobs that
the collection system threads into its hot paths through a
:class:`repro.faults.injector.FaultInjector`.  Four orthogonal fault
channels are modelled, each chosen because related measurement work shows
it dominates real deployments (see docs/PROTOCOL.md, "Fault model &
degradation"):

- **lossy links** — every gossip transfer and every server pull is dropped
  i.i.d. with a per-channel probability, the classic unreliable-link model
  gossip protocols are built against;
- **block pollution** — a fraction of peer slots emit corrupted coded
  blocks (invalid coefficient headers); servers detect and discard them,
  peers cannot, so junk occupies buffer space and wastes transmissions;
- **server outages** — windows of downtime during which the pull clock
  pauses entirely, either scheduled deterministically or drawn from a
  renewal process, with a bounded catch-up burst on recovery;
- **correlated churn bursts** — Poisson-timed events that kill a random
  fraction of peer slots *simultaneously*: flash departures, the dual of
  the flash crowds the paper's buffering analysis absorbs.

All knobs default to "off"; a default-constructed plan is *null* and the
injector built from it is bitwise-neutral — it draws no randomness and
schedules no events, so a run with a null plan is event-for-event
identical to a run with no plan at all (the neutrality regression test
asserts exactly this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.util.validation import (
    require_nonnegative,
    require_nonnegative_int,
    require_probability,
    require_rate,
)


@dataclass(frozen=True)
class FaultPlan:
    """Complete fault configuration for one collection session."""

    #: i.i.d. probability that an in-flight gossip transfer is lost.
    gossip_loss_rate: float = 0.0
    #: i.i.d. probability that a server pull's block transfer is lost.
    pull_loss_rate: float = 0.0
    #: fraction of peer slots that emit corrupted (polluted) coded blocks.
    pollution_fraction: float = 0.0
    #: extra pull attempts a server may spend after discarding a polluted
    #: block within the same pull trial (the "discard + re-pull" response).
    pollution_repull_budget: int = 1
    #: deterministic downtime windows as (start, end) absolute-time pairs;
    #: mutually exclusive with the renewal-process knobs below.
    outage_windows: Tuple[Tuple[float, float], ...] = ()
    #: renewal process: rate of outage onsets while the servers are up.
    outage_rate: float = 0.0
    #: renewal process: fixed downtime length of each outage.
    outage_duration: float = 0.0
    #: cap on the immediate catch-up pulls *per server* fired at recovery
    #: (bounds the burst a real recovering server would rate-limit).
    catchup_limit: int = 8
    #: Poisson rate of correlated mass-departure events.
    burst_rate: float = 0.0
    #: fraction of peer slots killed simultaneously by each burst event.
    burst_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_probability("gossip_loss_rate", self.gossip_loss_rate)
        require_probability("pull_loss_rate", self.pull_loss_rate)
        require_probability("pollution_fraction", self.pollution_fraction)
        require_probability("burst_fraction", self.burst_fraction)
        require_nonnegative_int(
            "pollution_repull_budget", self.pollution_repull_budget
        )
        require_nonnegative_int("catchup_limit", self.catchup_limit)
        require_nonnegative("outage_rate", self.outage_rate)
        require_nonnegative("outage_duration", self.outage_duration)
        require_nonnegative("burst_rate", self.burst_rate)
        if self.outage_rate > 0 and self.outage_duration <= 0:
            raise ValueError(
                "renewal outages need outage_duration > 0 when outage_rate > 0"
            )
        if self.burst_rate > 0 and self.burst_fraction <= 0:
            raise ValueError(
                "churn bursts need burst_fraction > 0 when burst_rate > 0"
            )
        normalized: List[Tuple[float, float]] = []
        for index, pair in enumerate(self.outage_windows):
            try:
                raw_start, raw_end = pair
            except (TypeError, ValueError):
                raise ValueError(
                    f"outage_windows[{index}] must be a (start, end) pair, "
                    f"got {pair!r}"
                ) from None
            try:
                normalized.append((float(raw_start), float(raw_end)))
            except (TypeError, ValueError):
                raise ValueError(
                    f"outage_windows[{index}] must be a pair of numbers, "
                    f"got {pair!r}"
                ) from None
        windows = tuple(normalized)
        object.__setattr__(self, "outage_windows", windows)
        previous_end = 0.0
        for index, (start, end) in enumerate(windows):
            if not (math.isfinite(start) and math.isfinite(end)):
                raise ValueError(
                    f"outage_windows[{index}] = ({start}, {end}) must be finite"
                )
            if start < 0 or end <= start:
                raise ValueError(
                    f"outage_windows[{index}] = ({start}, {end}) needs "
                    f"0 <= start < end"
                )
            if start < previous_end:
                raise ValueError(
                    f"outage windows must be sorted and non-overlapping: "
                    f"window {index} ({start:g}, {end:g}) starts before "
                    f"window {index - 1} ends at {previous_end:g}"
                )
            previous_end = end
        if windows and self.outage_rate > 0:
            raise ValueError(
                "choose deterministic outage_windows or the renewal process "
                "(outage_rate/outage_duration), not both"
            )

    # -- derived ---------------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when every fault channel is disabled."""
        return (
            self.gossip_loss_rate == 0.0
            and self.pull_loss_rate == 0.0
            and self.pollution_fraction == 0.0
            and not self.outage_windows
            and self.outage_rate == 0.0
            and self.burst_rate == 0.0
        )

    @property
    def has_outages(self) -> bool:
        """True when any downtime is configured."""
        return bool(self.outage_windows) or self.outage_rate > 0.0

    @property
    def outage_duty_cycle(self) -> float:
        """Long-run fraction of time the servers are down (renewal mode).

        For deterministic windows the notion depends on the horizon, so this
        returns NaN; use the windows directly.
        """
        if self.outage_windows:
            return math.nan
        if self.outage_rate <= 0.0:
            return 0.0
        mean_up = 1.0 / self.outage_rate
        return self.outage_duration / (self.outage_duration + mean_up)

    @staticmethod
    def renewal_outages(
        duty_cycle: float, duration: float, **changes: Any
    ) -> "FaultPlan":
        """Build a renewal-outage plan targeting a long-run *duty_cycle*.

        ``duty_cycle`` is the fraction of time down; ``duration`` the fixed
        length of each outage.  Extra keyword knobs pass through.
        """
        require_probability("duty_cycle", duty_cycle)
        if duty_cycle >= 1.0:
            raise ValueError("duty_cycle must be < 1 (servers must come back)")
        if duty_cycle == 0.0:
            return FaultPlan(**changes)
        require_rate("duration", duration)
        mean_up = duration * (1.0 - duty_cycle) / duty_cycle
        return FaultPlan(
            outage_rate=1.0 / mean_up, outage_duration=duration, **changes
        )

    def describe(self) -> str:
        """One-line human-readable summary of the active fault channels."""
        parts: List[str] = []
        if self.gossip_loss_rate or self.pull_loss_rate:
            parts.append(
                f"loss(gossip={self.gossip_loss_rate:g},"
                f"pull={self.pull_loss_rate:g})"
            )
        if self.pollution_fraction:
            parts.append(f"pollution={self.pollution_fraction:g}")
        if self.outage_windows:
            parts.append(f"outages={len(self.outage_windows)}w")
        elif self.outage_rate:
            parts.append(f"outage_duty={self.outage_duty_cycle:.2f}")
        if self.burst_rate:
            parts.append(
                f"bursts(rate={self.burst_rate:g},kill={self.burst_fraction:g})"
            )
        return " ".join(parts) if parts else "no faults"
