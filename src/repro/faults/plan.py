"""Declarative fault configuration: what goes wrong, how often, how badly.

A :class:`FaultPlan` is a frozen bundle of adversarial-condition knobs that
the collection system threads into its hot paths through a
:class:`repro.faults.injector.FaultInjector`.  Four orthogonal fault
channels are modelled, each chosen because related measurement work shows
it dominates real deployments (see docs/PROTOCOL.md, "Fault model &
degradation"):

- **lossy links** — every gossip transfer and every server pull is dropped
  i.i.d. with a per-channel probability, the classic unreliable-link model
  gossip protocols are built against;
- **block pollution** — a fraction of peer slots emit corrupted coded
  blocks (invalid coefficient headers); servers detect and discard them,
  peers cannot, so junk occupies buffer space and wastes transmissions;
- **server outages** — windows of downtime during which the pull clock
  pauses entirely, either scheduled deterministically or drawn from a
  renewal process, with a bounded catch-up burst on recovery;
- **correlated churn bursts** — Poisson-timed events that kill a random
  fraction of peer slots *simultaneously*: flash departures, the dual of
  the flash crowds the paper's buffering analysis absorbs;
- **process faults** — scheduled hard process death and freezes
  (SIGKILL/SIGSTOP of a live server or a peer-process cohort).  In the
  simulator a server kill maps onto an outage window whose length is the
  supervised restart latency, and a peer-cohort kill onto a scheduled
  churn burst; the live supervisor (:mod:`repro.live.supervisor`)
  delivers the real signals at the same simulated instants.

All knobs default to "off"; a default-constructed plan is *null* and the
injector built from it is bitwise-neutral — it draws no randomness and
schedules no events, so a run with a null plan is event-for-event
identical to a run with no plan at all (the neutrality regression test
asserts exactly this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.util.validation import (
    require_nonnegative,
    require_nonnegative_int,
    require_probability,
    require_rate,
)

# -- process-fault kinds ----------------------------------------------------
#: SIGKILL the logging-server process; it restarts (from its checkpoint)
#: after ``process_restart_latency`` simulated units.
PROC_KILL_SERVER = "kill-server"
#: SIGSTOP the logging-server process for the event's duration.
PROC_STOP_SERVER = "stop-server"
#: SIGKILL a fraction of the peer processes (a correlated crash cohort).
PROC_KILL_PEERS = "kill-peers"
#: SIGSTOP a fraction of the peer processes for the event's duration
#: (live-only: a frozen-but-alive peer has no simulator analogue, so the
#: sim treats it as a no-op and E-LIVE-CHAOS does not cross-validate it).
PROC_STOP_PEERS = "stop-peers"

PROCESS_FAULT_KINDS = (
    PROC_KILL_SERVER, PROC_STOP_SERVER, PROC_KILL_PEERS, PROC_STOP_PEERS,
)

#: Process-fault kinds that take the logging servers down.
_SERVER_KINDS = (PROC_KILL_SERVER, PROC_STOP_SERVER)


@dataclass(frozen=True)
class FaultPlan:
    """Complete fault configuration for one collection session."""

    #: i.i.d. probability that an in-flight gossip transfer is lost.
    gossip_loss_rate: float = 0.0
    #: i.i.d. probability that a server pull's block transfer is lost.
    pull_loss_rate: float = 0.0
    #: fraction of peer slots that emit corrupted (polluted) coded blocks.
    pollution_fraction: float = 0.0
    #: extra pull attempts a server may spend after discarding a polluted
    #: block within the same pull trial (the "discard + re-pull" response).
    pollution_repull_budget: int = 1
    #: deterministic downtime windows as (start, end) absolute-time pairs;
    #: mutually exclusive with the renewal-process knobs below.
    outage_windows: Tuple[Tuple[float, float], ...] = ()
    #: renewal process: rate of outage onsets while the servers are up.
    outage_rate: float = 0.0
    #: renewal process: fixed downtime length of each outage.
    outage_duration: float = 0.0
    #: cap on the immediate catch-up pulls *per server* fired at recovery
    #: (bounds the burst a real recovering server would rate-limit).
    catchup_limit: int = 8
    #: Poisson rate of correlated mass-departure events.
    burst_rate: float = 0.0
    #: fraction of peer slots killed simultaneously by each burst event.
    burst_fraction: float = 0.0
    #: scheduled process faults as ``(kind, at, duration, fraction)``
    #: entries (see the ``PROC_*`` kinds above): *at* is the simulated
    #: onset time, *duration* the SIGSTOP hold (0 for kills), *fraction*
    #: the peer-process cohort share (0 for server kinds).
    process_faults: Tuple[Tuple[str, float, float, float], ...] = ()
    #: simulated downtime a ``kill-server`` fault costs: the time the
    #: supervisor needs to detect death, back off, respawn, and reload the
    #: checkpoint.  The simulator models the kill as an outage window of
    #: exactly this length.
    process_restart_latency: float = 1.0

    def __post_init__(self) -> None:
        require_probability("gossip_loss_rate", self.gossip_loss_rate)
        require_probability("pull_loss_rate", self.pull_loss_rate)
        require_probability("pollution_fraction", self.pollution_fraction)
        require_probability("burst_fraction", self.burst_fraction)
        require_nonnegative_int(
            "pollution_repull_budget", self.pollution_repull_budget
        )
        require_nonnegative_int("catchup_limit", self.catchup_limit)
        require_nonnegative("outage_rate", self.outage_rate)
        require_nonnegative("outage_duration", self.outage_duration)
        require_nonnegative("burst_rate", self.burst_rate)
        if self.outage_rate > 0 and self.outage_duration <= 0:
            raise ValueError(
                "renewal outages need outage_duration > 0 when outage_rate > 0"
            )
        if self.burst_rate > 0 and self.burst_fraction <= 0:
            raise ValueError(
                "churn bursts need burst_fraction > 0 when burst_rate > 0"
            )
        normalized: List[Tuple[float, float]] = []
        for index, pair in enumerate(self.outage_windows):
            try:
                raw_start, raw_end = pair
            except (TypeError, ValueError):
                raise ValueError(
                    f"outage_windows[{index}] must be a (start, end) pair, "
                    f"got {pair!r}"
                ) from None
            try:
                normalized.append((float(raw_start), float(raw_end)))
            except (TypeError, ValueError):
                raise ValueError(
                    f"outage_windows[{index}] must be a pair of numbers, "
                    f"got {pair!r}"
                ) from None
        windows = tuple(normalized)
        object.__setattr__(self, "outage_windows", windows)
        previous_end = 0.0
        for index, (start, end) in enumerate(windows):
            if not (math.isfinite(start) and math.isfinite(end)):
                raise ValueError(
                    f"outage_windows[{index}] = ({start}, {end}) must be finite"
                )
            if start < 0 or end <= start:
                raise ValueError(
                    f"outage_windows[{index}] = ({start}, {end}) needs "
                    f"0 <= start < end"
                )
            if start < previous_end:
                raise ValueError(
                    f"outage windows must be sorted and non-overlapping: "
                    f"window {index} ({start:g}, {end:g}) starts before "
                    f"window {index - 1} ends at {previous_end:g}"
                )
            previous_end = end
        if windows and self.outage_rate > 0:
            raise ValueError(
                "choose deterministic outage_windows or the renewal process "
                "(outage_rate/outage_duration), not both"
            )
        require_nonnegative(
            "process_restart_latency", self.process_restart_latency
        )
        if not math.isfinite(self.process_restart_latency):
            raise ValueError("process_restart_latency must be finite")
        events: List[Tuple[str, float, float, float]] = []
        for index, entry in enumerate(self.process_faults):
            try:
                raw_kind, raw_at, raw_duration, raw_fraction = entry
            except (TypeError, ValueError):
                raise ValueError(
                    f"process_faults[{index}] must be a "
                    f"(kind, at, duration, fraction) tuple, got {entry!r}"
                ) from None
            try:
                event = (
                    str(raw_kind), float(raw_at), float(raw_duration),
                    float(raw_fraction),
                )
            except (TypeError, ValueError):
                raise ValueError(
                    f"process_faults[{index}] has non-numeric timing/fraction "
                    f"fields: {entry!r}"
                ) from None
            events.append(event)
        events.sort(key=lambda event: event[1])
        object.__setattr__(self, "process_faults", tuple(events))
        for index, (kind, at, duration, fraction) in enumerate(events):
            label = f"process_faults[{index}]"
            if kind not in PROCESS_FAULT_KINDS:
                raise ValueError(
                    f"{label} kind {kind!r} is not one of "
                    f"{PROCESS_FAULT_KINDS}"
                )
            if not (math.isfinite(at) and at >= 0):
                raise ValueError(f"{label} onset must be finite and >= 0")
            if not (math.isfinite(duration) and duration >= 0):
                raise ValueError(f"{label} duration must be finite and >= 0")
            if kind in (PROC_STOP_SERVER, PROC_STOP_PEERS) and duration <= 0:
                raise ValueError(f"{label} ({kind}) needs duration > 0")
            if kind in (PROC_KILL_PEERS, PROC_STOP_PEERS):
                if not (0.0 < fraction <= 1.0):
                    raise ValueError(
                        f"{label} ({kind}) needs fraction in (0, 1]"
                    )
            elif fraction != 0.0:
                raise ValueError(
                    f"{label} ({kind}) must leave fraction at 0"
                )
            if kind == PROC_KILL_SERVER:
                if duration + self.process_restart_latency <= 0:
                    raise ValueError(
                        f"{label} (kill-server) needs "
                        "process_restart_latency > 0 to model the downtime"
                    )
        server_windows = self._server_fault_windows(tuple(events))
        if server_windows and self.outage_rate > 0:
            raise ValueError(
                "server process faults and renewal outages cannot be "
                "combined (their downtimes would overlap nondeterministically)"
            )
        merged = sorted(windows + server_windows)
        previous_end = 0.0
        for start, end in merged:
            if start < previous_end:
                raise ValueError(
                    "server process-fault downtime windows must not overlap "
                    "each other or the deterministic outage_windows: "
                    f"({start:g}, {end:g}) starts before {previous_end:g}"
                )
            previous_end = end

    def _server_fault_windows(
        self, events: Tuple[Tuple[str, float, float, float], ...]
    ) -> Tuple[Tuple[float, float], ...]:
        """Downtime windows implied by the server-kind process faults."""
        windows: List[Tuple[float, float]] = []
        for kind, at, duration, _fraction in events:
            if kind == PROC_KILL_SERVER:
                windows.append(
                    (at, at + duration + self.process_restart_latency)
                )
            elif kind == PROC_STOP_SERVER:
                windows.append((at, at + duration))
        return tuple(windows)

    @property
    def server_process_windows(self) -> Tuple[Tuple[float, float], ...]:
        """Server downtime windows implied by kill/stop-server faults."""
        return self._server_fault_windows(self.process_faults)

    # -- derived ---------------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when every fault channel is disabled."""
        return (
            self.gossip_loss_rate == 0.0
            and self.pull_loss_rate == 0.0
            and self.pollution_fraction == 0.0
            and not self.outage_windows
            and self.outage_rate == 0.0
            and self.burst_rate == 0.0
            and not self.process_faults
        )

    @property
    def has_outages(self) -> bool:
        """True when any downtime is configured."""
        return (
            bool(self.outage_windows)
            or self.outage_rate > 0.0
            or bool(self.server_process_windows)
        )

    @property
    def has_process_faults(self) -> bool:
        """True when any scheduled process fault is configured."""
        return bool(self.process_faults)

    @property
    def outage_duty_cycle(self) -> float:
        """Long-run fraction of time the servers are down (renewal mode).

        For deterministic windows the notion depends on the horizon, so this
        returns NaN; use the windows directly.
        """
        if self.outage_windows:
            return math.nan
        if self.outage_rate <= 0.0:
            return 0.0
        mean_up = 1.0 / self.outage_rate
        return self.outage_duration / (self.outage_duration + mean_up)

    @staticmethod
    def renewal_outages(
        duty_cycle: float, duration: float, **changes: Any
    ) -> "FaultPlan":
        """Build a renewal-outage plan targeting a long-run *duty_cycle*.

        ``duty_cycle`` is the fraction of time down; ``duration`` the fixed
        length of each outage.  Extra keyword knobs pass through.
        """
        require_probability("duty_cycle", duty_cycle)
        if duty_cycle >= 1.0:
            raise ValueError("duty_cycle must be < 1 (servers must come back)")
        if duty_cycle == 0.0:
            return FaultPlan(**changes)
        require_rate("duration", duration)
        mean_up = duration * (1.0 - duty_cycle) / duty_cycle
        return FaultPlan(
            outage_rate=1.0 / mean_up, outage_duration=duration, **changes
        )

    def describe(self) -> str:
        """One-line human-readable summary of the active fault channels."""
        parts: List[str] = []
        if self.gossip_loss_rate or self.pull_loss_rate:
            parts.append(
                f"loss(gossip={self.gossip_loss_rate:g},"
                f"pull={self.pull_loss_rate:g})"
            )
        if self.pollution_fraction:
            parts.append(f"pollution={self.pollution_fraction:g}")
        if self.outage_windows:
            parts.append(f"outages={len(self.outage_windows)}w")
        elif self.outage_rate:
            parts.append(f"outage_duty={self.outage_duty_cycle:.2f}")
        if self.burst_rate:
            parts.append(
                f"bursts(rate={self.burst_rate:g},kill={self.burst_fraction:g})"
            )
        if self.process_faults:
            kinds = ",".join(kind for kind, *_ in self.process_faults)
            parts.append(f"proc[{kinds}]")
        return " ".join(parts) if parts else "no faults"
