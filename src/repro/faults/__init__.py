"""Composable fault injection for collection simulations.

This package models the adversarial conditions the paper's robustness
story implies but never simulates: lossy links, block pollution, server
outages, and correlated churn bursts.  :class:`FaultPlan` declares what
goes wrong; :class:`FaultInjector` executes it against a running system.
A default-constructed plan is bitwise-neutral — see ``plan.py``.
"""

from repro.faults.injector import FaultInjector, PollutableHolding, corrupt_block
from repro.faults.plan import FaultPlan

__all__ = ["FaultPlan", "FaultInjector", "PollutableHolding", "corrupt_block"]
