"""Runtime fault injection: the machinery behind a :class:`FaultPlan`.

The :class:`FaultInjector` is the single object the collection system
consults on its hot paths (gossip delivery, server pulls) and the owner of
the fault *event* clocks (outage onsets/recoveries, correlated churn
bursts).  Design rules:

- **Own randomness.**  The injector draws only from its dedicated
  ``"faults"`` RNG substream, so enabling a fault channel never perturbs
  the draws of injection, gossip, server, TTL or churn clocks.
- **Bitwise neutrality at zero.**  Every query short-circuits before
  touching the RNG when its knob is off, and ``start()`` schedules nothing
  for a null plan — a system built with ``FaultPlan()`` replays the exact
  event sequence of a system built with no plan at all.
- **Hooks, not references.**  The injector manipulates the system through
  three injected callbacks (pause servers, resume servers, kill slots), so
  it is testable standalone and the system stays the owner of its state.
"""

from __future__ import annotations

import random
from typing import Callable, FrozenSet, List, Optional, Protocol, Sequence

from repro.coding.block import CodedBlock
from repro.faults.plan import PROC_KILL_PEERS, FaultPlan
from repro.sim.engine import EventHandle, Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.rng import exponential
from repro.sim.trace import KIND_OUTAGE, KIND_RECOVER, Tracer


def corrupt_block(block: CodedBlock) -> CodedBlock:
    """Mark *block* as polluted, invalidating its coefficient header.

    In RLNC mode the coefficient vector is zeroed — a detectably invalid
    header that GF(2^8) rank arithmetic can never count as innovative, so
    the server-side decoder rejects the block for free.  In abstract mode
    the ``polluted`` tag alone carries the information (the tagged-block
    approximation of the same detection).  Returns the block for chaining.
    """
    block.polluted = True
    if block.coefficients is not None:
        block.coefficients.fill(0)
    return block


class PollutableHolding(Protocol):
    """What the pollution channel needs to know about a peer's holding."""

    @property
    def polluted_count(self) -> int:
        """Number of polluted blocks currently in the holding."""
        ...


class FaultInjector:
    """Executes one :class:`FaultPlan` against a running simulation.

    Args:
        plan: The fault configuration.
        sim: The simulation engine (fault events are scheduled on it).
        rng: Dedicated ``random.Random`` substream for all fault draws.
        n_slots: Number of peer slots (polluter sampling, burst sizing).
        metrics: Collector for degradation accounting (``servers_down``).
        tracer: Optional tracer for outage/recovery events.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sim: Simulator,
        rng: random.Random,
        n_slots: int,
        metrics: MetricsCollector,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.plan = plan
        self._sim = sim
        self._rng = rng
        self._n_slots = n_slots
        self._metrics = metrics
        self._tracer = tracer
        self.polluters: FrozenSet[int] = self._sample_polluters()
        self._down = False
        self._down_since = 0.0
        self._handles: List[EventHandle] = []
        self._started = False
        # hooks bound by the system before start()
        self._pause_servers: Optional[Callable[[], None]] = None
        self._resume_servers: Optional[Callable[[float], None]] = None
        self._kill_slots: Optional[Callable[[Sequence[int]], None]] = None
        #: lifetime fault-event tallies (diagnostics; metrics hold the
        #: windowed counterparts)
        self.outages_started = 0
        self.bursts_fired = 0

    def _sample_polluters(self) -> FrozenSet[int]:
        fraction = self.plan.pollution_fraction
        if fraction <= 0.0:
            return frozenset()
        count = min(self._n_slots, max(1, round(fraction * self._n_slots)))
        return frozenset(self._rng.sample(range(self._n_slots), count))

    # -- lifecycle -------------------------------------------------------------

    def bind(
        self,
        pause_servers: Callable[[], None],
        resume_servers: Callable[[float], None],
        kill_slots: Callable[[Sequence[int]], None],
    ) -> None:
        """Attach the system hooks the fault events act through."""
        self._pause_servers = pause_servers
        self._resume_servers = resume_servers
        self._kill_slots = kill_slots

    def start(self) -> None:
        """Arm the outage and burst clocks (no-op channels schedule nothing)."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        plan = self.plan
        if plan.has_outages and self._pause_servers is None:
            raise RuntimeError("bind() must be called before start()")
        if plan.burst_rate > 0 and self._kill_slots is None:
            raise RuntimeError("bind() must be called before start()")
        if plan.has_process_faults and any(
            kind == PROC_KILL_PEERS for kind, *_ in plan.process_faults
        ) and self._kill_slots is None:
            raise RuntimeError("bind() must be called before start()")
        for start, end in plan.outage_windows:
            self._handles.append(
                self._sim.schedule_at(start, self._begin_outage)
            )
            self._handles.append(self._sim.schedule_at(end, self._end_outage))
        # Server process faults are downtime windows of the supervised
        # restart latency (kill) or the SIGSTOP hold (stop); a peer-process
        # kill is a scheduled correlated burst.  stop-peers has no
        # simulator analogue (a frozen peer still holds TCP state) and is
        # deliberately a no-op here.
        for start, end in plan.server_process_windows:
            self._handles.append(
                self._sim.schedule_at(start, self._begin_outage)
            )
            self._handles.append(self._sim.schedule_at(end, self._end_outage))
        for kind, at, _duration, fraction in plan.process_faults:
            if kind == PROC_KILL_PEERS:
                self._handles.append(
                    self._sim.schedule_at(
                        at, self._make_process_burst(fraction)
                    )
                )
        if plan.outage_rate > 0:
            self._arm_next_outage()
        if plan.burst_rate > 0:
            self._arm_next_burst()

    def stop(self) -> None:
        """Cancel every pending fault event (teardown for repeated runs)."""
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    # -- hot-path queries (zero-knob cases must not touch the RNG) --------------

    def drop_gossip(self) -> bool:
        """Decide whether one in-flight gossip transfer is lost."""
        p = self.plan.gossip_loss_rate
        return p > 0.0 and self._rng.random() < p

    def drop_pull(self) -> bool:
        """Decide whether one server pull's block transfer is lost."""
        p = self.plan.pull_loss_rate
        return p > 0.0 and self._rng.random() < p

    def is_polluter(self, slot: int) -> bool:
        """True when the peer slot is a configured polluter."""
        return slot in self.polluters

    def pollutes(self, slot: int, holding: PollutableHolding) -> bool:
        """True when an emission from *holding* at *slot* is corrupted.

        A block is polluted if its emitter is a polluter slot, or if the
        holding it is re-encoded from already contains polluted blocks —
        any linear combination touching junk is junk, which is what makes
        pollution spread and why end-to-end detection matters.
        """
        if not self.polluters:
            return False
        return slot in self.polluters or holding.polluted_count > 0

    def maybe_pollute(
        self, slot: int, holding: PollutableHolding, block: CodedBlock
    ) -> bool:
        """Corrupt *block* in place when its emission is polluted.

        Returns True when the block was corrupted.  Zero-knob runs take the
        ``not self.polluters`` short-circuit inside :meth:`pollutes` and do
        no work at all.
        """
        if self.pollutes(slot, holding):
            corrupt_block(block)
            return True
        return False

    @property
    def servers_down(self) -> bool:
        """True while an outage window is in effect."""
        return self._down

    # -- outage machinery --------------------------------------------------------

    def _arm_next_outage(self) -> None:
        gap = exponential(self._rng, self.plan.outage_rate)
        self._handles.append(self._sim.schedule(gap, self._begin_outage))

    def _begin_outage(self) -> None:
        if self._down:
            return
        now = self._sim.now
        self._down = True
        self._down_since = now
        self.outages_started += 1
        self._metrics.servers_down.update(now, 1.0)
        if self._tracer is not None:
            self._tracer.record(now, KIND_OUTAGE)
        assert self._pause_servers is not None  # start() enforces bind()
        self._pause_servers()
        if self.plan.outage_rate > 0:
            self._handles.append(
                self._sim.schedule(self.plan.outage_duration, self._end_outage)
            )

    def _end_outage(self) -> None:
        if not self._down:
            return
        now = self._sim.now
        self._down = False
        elapsed = now - self._down_since
        self._metrics.servers_down.update(now, 0.0)
        if self._tracer is not None:
            self._tracer.record(now, KIND_RECOVER, downtime=elapsed)
        assert self._resume_servers is not None  # start() enforces bind()
        self._resume_servers(elapsed)
        if self.plan.outage_rate > 0:
            self._arm_next_outage()

    # -- correlated churn bursts ---------------------------------------------------

    def burst_size(self) -> int:
        """Slots killed per burst event (at least one, at most all)."""
        return min(
            self._n_slots,
            max(1, round(self.plan.burst_fraction * self._n_slots)),
        )

    def _arm_next_burst(self) -> None:
        gap = exponential(self._rng, self.plan.burst_rate)
        self._handles.append(self._sim.schedule(gap, self._fire_burst))

    def _fire_burst(self) -> None:
        slots = self._rng.sample(range(self._n_slots), self.burst_size())
        self.bursts_fired += 1
        assert self._kill_slots is not None  # start() enforces bind()
        self._kill_slots(slots)
        self._arm_next_burst()

    # -- process faults ----------------------------------------------------------

    def _make_process_burst(self, fraction: float) -> Callable[[], None]:
        """One scheduled kill-peers event as a correlated departure burst."""

        def fire() -> None:
            count = min(
                self._n_slots, max(1, round(fraction * self._n_slots))
            )
            slots = self._rng.sample(range(self._n_slots), count)
            self.bursts_fired += 1
            assert self._kill_slots is not None  # start() enforces bind()
            self._kill_slots(slots)

        return fire
