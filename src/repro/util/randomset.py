"""A set supporting O(1) insertion, removal, and uniform random sampling.

The simulator must repeatedly draw a uniformly random member from dynamic
populations — "a peer u.a.r. from among all the peers with non-null buffers",
"a segment u.a.r. from all the segments adjacent to peer *d*" — while members
join and leave at high rates.  A plain ``set`` cannot be sampled in O(1) and a
plain ``list`` cannot be removed from in O(1), so this module provides the
classic array-plus-index-map structure used by event-driven simulators.
"""

from __future__ import annotations

import random
from typing import Dict, Generic, Iterator, List, Optional, TypeVar, Union

import numpy as np

T = TypeVar("T")

#: Anything this module can sample with: stdlib ``Random`` (``randrange``)
#: or a numpy ``Generator`` (``integers``).
SamplingRng = Union[random.Random, np.random.Generator]


class RandomizedSet(Generic[T]):
    """Container with O(1) ``add``, ``discard``, ``__contains__`` and ``sample``.

    Members must be hashable.  Iteration order is arbitrary (it reflects the
    internal array layout, which is perturbed by removals).

    Example::

        population = RandomizedSet([1, 2, 3])
        population.add(4)
        population.discard(2)
        peer = population.sample(rng)   # uniform over {1, 3, 4}
    """

    __slots__ = ("_items", "_index")

    def __init__(self, items: Optional[List[T]] = None) -> None:
        self._items: List[T] = []
        self._index: Dict[T, int] = {}
        if items is not None:
            for item in items:
                self.add(item)

    def add(self, item: T) -> bool:
        """Insert *item*; return ``True`` if it was not already present."""
        if item in self._index:
            return False
        self._index[item] = len(self._items)
        self._items.append(item)
        return True

    def discard(self, item: T) -> bool:
        """Remove *item* if present; return ``True`` if it was removed.

        Removal swaps the victim with the last array slot so the array stays
        dense, preserving O(1) uniform sampling.
        """
        pos = self._index.pop(item, None)
        if pos is None:
            return False
        last = self._items.pop()
        if pos < len(self._items):
            # The victim was not in the final slot: move the (former) last
            # element into the hole so the array stays dense.
            self._items[pos] = last
            self._index[last] = pos
        return True

    def remove(self, item: T) -> None:
        """Remove *item*; raise :class:`KeyError` if absent."""
        if not self.discard(item):
            raise KeyError(item)

    def sample(self, rng: SamplingRng) -> T:
        """Return a uniformly random member using *rng* (``random.Random`` or
        ``numpy.random.Generator`` — anything with ``randrange`` or
        ``integers``).  Raises :class:`IndexError` when empty."""
        if not self._items:
            raise IndexError("sample from an empty RandomizedSet")
        if hasattr(rng, "randrange"):
            pos = rng.randrange(len(self._items))
        else:
            pos = int(rng.integers(len(self._items)))
        return self._items[pos]

    def sample_excluding(
        self, rng: SamplingRng, excluded: T, max_tries: int = 64
    ) -> Optional[T]:
        """Return a uniformly random member different from *excluded*.

        Uses rejection sampling, which is O(1) in expectation whenever the set
        has at least two members.  Returns ``None`` if the only member is
        *excluded* or the set is empty.
        """
        size = len(self._items)
        if size == 0:
            return None
        if size == 1:
            only = self._items[0]
            return None if only == excluded else only
        for _ in range(max_tries):
            candidate = self.sample(rng)
            if candidate != excluded:
                return candidate
        # Fall back to an exact (O(n)) draw; reachable only with adversarial
        # duplicates of `excluded`, which a set cannot contain, or vanishing
        # probability ~2^-64.
        others = [item for item in self._items if item != excluded]
        if not others:
            return None
        return others[rng.randrange(len(others)) if hasattr(rng, "randrange") else int(rng.integers(len(others)))]

    def __contains__(self, item: object) -> bool:
        return item in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:
        preview = ", ".join(repr(item) for item in self._items[:8])
        suffix = ", ..." if len(self._items) > 8 else ""
        return f"RandomizedSet({{{preview}{suffix}}})"
