"""Small summary-statistics helpers for experiment reporting.

Simulation experiments repeat each configuration over several seeds; the
harness reports the sample mean together with a normal-approximation
confidence interval so shape comparisons against the paper are made on
stable numbers rather than single noisy runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class Summary:
    """Sample summary of a repeated scalar measurement."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean (0 for a single sample)."""
        if self.n <= 1:
            return 0.0
        return self.std / math.sqrt(self.n)

    def ci95(self) -> float:
        """Half-width of the ~95% normal-approximation confidence interval."""
        return 1.96 * self.stderr

    def __str__(self) -> str:
        return f"{self.mean:.4f} +/- {self.ci95():.4f} (n={self.n})"


def summarize(samples: Sequence[float]) -> Summary:
    """Summarize *samples*; raises :class:`ValueError` when empty."""
    values = [float(v) for v in samples]
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return Summary(
        n=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
    )


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; raises :class:`ValueError` when empty."""
    values = list(samples)
    if not values:
        raise ValueError("cannot take the mean of an empty sample")
    return sum(float(v) for v in values) / len(values)


def merge_by_key(rows: Iterable[Dict[str, float]]) -> Dict[str, Summary]:
    """Summarize a list of homogeneous metric dicts key by key.

    Useful for aggregating the metric dictionaries produced by repeated
    simulation runs: ``merge_by_key(run() for _ in range(5))``.
    """
    collected: Dict[str, List[float]] = {}
    for row in rows:
        for key, value in row.items():
            collected.setdefault(key, []).append(float(value))
    return {key: summarize(values) for key, values in collected.items()}


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of *values*, q in [0, 100].

    Sorts a copy; for pre-sorted hot paths use numpy instead.  Raises
    :class:`ValueError` on empty input or q outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must lie in [0, 100], got {q}")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    position = (len(data) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return data[low]
    weight = position - low
    return data[low] * (1 - weight) + data[high] * weight


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|`` with a 0/0 -> 0 convention."""
    if reference == 0.0:
        return 0.0 if measured == 0.0 else math.inf
    return abs(measured - reference) / abs(reference)
