"""Parameter validation helpers shared across the library.

Configuration mistakes in a simulator fail late and confusingly (a negative
rate quietly reverses time ordering in the event heap, for example), so every
public entry point validates its numeric inputs eagerly through these helpers
and raises :class:`ValueError` with a field name the user can act on.
"""

from __future__ import annotations

import math
from typing import Optional


def require_positive(name: str, value: float) -> float:
    """Return *value* if it is a finite number > 0, else raise ValueError."""
    _require_real(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def require_nonnegative(name: str, value: float) -> float:
    """Return *value* if it is a finite number >= 0, else raise ValueError."""
    _require_real(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def require_positive_int(name: str, value: int) -> int:
    """Return *value* if it is an integer >= 1, else raise ValueError."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return value


def require_nonnegative_int(name: str, value: int) -> int:
    """Return *value* if it is an integer >= 0, else raise ValueError."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(name: str, value: float) -> float:
    """Return *value* if it is a finite number in [0, 1], else raise ValueError."""
    _require_real(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def require_rate(name: str, value: float, allow_zero: bool = False) -> float:
    """Validate a Poisson rate parameter (events per unit time)."""
    if allow_zero:
        return require_nonnegative(name, value)
    return require_positive(name, value)


def require_in_range(
    name: str,
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> float:
    """Return *value* if it lies in the closed range [low, high]."""
    _require_real(name, value)
    if low is not None and value < low:
        raise ValueError(f"{name} must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise ValueError(f"{name} must be <= {high}, got {value!r}")
    return float(value)


def _require_real(name: str, value: float) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a real number, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
