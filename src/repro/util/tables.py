"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper's figures plot.
No plotting dependency is assumed, so results are rendered as aligned ASCII
tables that read well in a terminal and diff cleanly in CI logs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, float_fmt: str = "{:.4f}") -> str:
    """Render one table cell: floats via *float_fmt*, ``None`` as ``-``."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table.

    Every row must have the same number of cells as there are headers; a
    mismatched row raises :class:`ValueError` rather than silently
    misaligning the report.
    """
    header_cells = [str(h) for h in headers]
    body: List[List[str]] = []
    for row in rows:
        cells = [format_cell(cell, float_fmt) for cell in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(header_cells)} columns: {cells!r}"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(fmt_row(header_cells))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(cells) for cells in body)
    return "\n".join(lines)


def render_series(
    x_name: str,
    x_values: Sequence[Cell],
    series: Sequence[Tuple[str, Sequence[Cell]]],
    title: Optional[str] = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render several y-series against a shared x-axis.

    *series* is a sequence of ``(label, values)`` pairs, each ``values``
    aligned with *x_values*.  This is the shape of every figure in the paper:
    one x sweep, several parameterized curves.
    """
    headers = [x_name] + [label for label, _ in series]
    for label, values in series:
        if len(values) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points but x-axis has {len(x_values)}"
            )
    rows = [
        [x_values[i]] + [values[i] for _, values in series]
        for i in range(len(x_values))
    ]
    return render_table(headers, rows, title=title, float_fmt=float_fmt)
