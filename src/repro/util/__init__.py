"""Shared utilities: randomized sets, validation, tables, summary statistics."""

from repro.util.randomset import RandomizedSet
from repro.util.summary import Summary, mean, merge_by_key, relative_error, summarize
from repro.util.tables import format_cell, render_series, render_table
from repro.util.validation import (
    require_in_range,
    require_nonnegative,
    require_nonnegative_int,
    require_positive,
    require_positive_int,
    require_probability,
    require_rate,
)

__all__ = [
    "RandomizedSet",
    "Summary",
    "mean",
    "merge_by_key",
    "relative_error",
    "summarize",
    "format_cell",
    "render_series",
    "render_table",
    "require_in_range",
    "require_nonnegative",
    "require_nonnegative_int",
    "require_positive",
    "require_positive_int",
    "require_probability",
    "require_rate",
]
